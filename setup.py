"""Setuptools shim so `pip install -e .` works without network access.

The environment has no `wheel` package and no PyPI connectivity, so the
PEP 517 editable-install path (which builds a wheel) is unavailable; this
legacy setup.py lets pip fall back to `setup.py develop`.
"""

from setuptools import setup

setup()
