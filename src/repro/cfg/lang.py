"""A small structured imperative *task language*.

GameTime (paper Section 3) analyses terminating embedded tasks whose
control-flow graph can be unrolled into a DAG.  The paper's front end was
C via CIL; this reproduction defines a compact language with the features
the analysis needs — fixed-width unsigned integer variables, arithmetic and
bitwise expressions, conditionals, and loops with static bounds — plus a
reference interpreter that defines the functional semantics used to
validate the compiler and the platform simulator.

The same language doubles as the source form of the deobfuscation
benchmarks in Section 4 (the obfuscated programs of Figure 8 are expressed
in it), so a single front end serves both applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence, Union

from repro.core.exceptions import CompilationError

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

#: Binary operators supported by the language (C-like semantics on
#: fixed-width unsigned integers; comparisons yield 0/1).
BINARY_OPERATORS = {
    "+", "-", "*", "&", "|", "^", "<<", ">>",
    "==", "!=", "<", "<=", ">", ">=",
}

#: Unary operators.
UNARY_OPERATORS = {"~", "-", "!"}


class Expression:
    """Base class of expression AST nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Expression):
    """An integer literal."""

    value: int

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var(Expression):
    """A reference to a program variable."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp(Expression):
    """A binary operation ``left op right``."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPERATORS:
            raise CompilationError(f"unsupported binary operator {self.op!r}")

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class UnOp(Expression):
    """A unary operation ``op operand``."""

    op: str
    operand: Expression

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPERATORS:
            raise CompilationError(f"unsupported unary operator {self.op!r}")

    def __repr__(self) -> str:
        return f"({self.op}{self.operand!r})"


def const(value: int) -> Const:
    """Shorthand constructor for :class:`Const`."""
    return Const(value)


def var(name: str) -> Var:
    """Shorthand constructor for :class:`Var`."""
    return Var(name)


def binop(op: str, left: Expression, right: Expression) -> BinOp:
    """Shorthand constructor for :class:`BinOp`."""
    return BinOp(op, left, right)


def expression_variables(expression: Expression) -> set[str]:
    """Return the names of the variables read by ``expression``."""
    if isinstance(expression, Const):
        return set()
    if isinstance(expression, Var):
        return {expression.name}
    if isinstance(expression, BinOp):
        return expression_variables(expression.left) | expression_variables(
            expression.right
        )
    if isinstance(expression, UnOp):
        return expression_variables(expression.operand)
    raise CompilationError(f"unknown expression node {type(expression).__name__}")


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    """Base class of statement AST nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Assign(Statement):
    """An assignment ``target = expression``."""

    target: str
    expression: Expression

    def __repr__(self) -> str:
        return f"{self.target} = {self.expression!r}"


@dataclass(frozen=True)
class Skip(Statement):
    """The empty statement."""

    def __repr__(self) -> str:
        return "skip"


@dataclass(frozen=True)
class Block(Statement):
    """A sequence of statements."""

    statements: tuple[Statement, ...]

    def __repr__(self) -> str:
        return "{ " + "; ".join(map(repr, self.statements)) + " }"


@dataclass(frozen=True)
class If(Statement):
    """A conditional ``if (condition) then_branch else else_branch``."""

    condition: Expression
    then_branch: Statement
    else_branch: Statement = Skip()

    def __repr__(self) -> str:
        return f"if ({self.condition!r}) {self.then_branch!r} else {self.else_branch!r}"


@dataclass(frozen=True)
class While(Statement):
    """A loop with a statically-known iteration bound.

    GameTime requires loops to be unrolled to a maximum iteration count
    (paper Fig. 5, "Unroll Loops"); ``bound`` supplies that count.  The
    reference interpreter enforces the bound as well, so the language has
    no unbounded behaviour.
    """

    condition: Expression
    body: Statement
    bound: int

    def __post_init__(self) -> None:
        if self.bound < 0:
            raise CompilationError("loop bound must be non-negative")

    def __repr__(self) -> str:
        return f"while[{self.bound}] ({self.condition!r}) {self.body!r}"


@dataclass(frozen=True)
class Call(Statement):
    """A call to another :class:`Program`, inlined during CFG construction.

    Arguments are expressions bound to the callee's parameters; the
    callee's return variables are copied back into ``results`` afterwards.
    """

    callee: "Program"
    arguments: tuple[Expression, ...]
    results: tuple[str, ...] = ()

    def __repr__(self) -> str:
        args = ", ".join(map(repr, self.arguments))
        outs = ", ".join(self.results)
        return f"[{outs}] = {self.callee.name}({args})"


def block(*statements: Statement) -> Block:
    """Build a :class:`Block` from the given statements."""
    return Block(tuple(statements))


def assign(target: str, expression: Expression) -> Assign:
    """Shorthand constructor for :class:`Assign`."""
    return Assign(target, expression)


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


@dataclass
class Program:
    """A task-language program.

    Attributes:
        name: program name (used in reports and compiled symbol names).
        parameters: names of the input variables.
        body: the top-level statement.
        returns: names of the output variables (defaults to all assigned
            variables if empty).
        word_width: bit-width of every variable (unsigned, modular
            arithmetic), default 32.
    """

    name: str
    parameters: tuple[str, ...]
    body: Statement
    returns: tuple[str, ...] = ()
    word_width: int = 32

    def __post_init__(self) -> None:
        if self.word_width <= 0:
            raise CompilationError("word width must be positive")
        if len(set(self.parameters)) != len(self.parameters):
            raise CompilationError("duplicate parameter names")

    # -- introspection -----------------------------------------------------

    def variables(self) -> list[str]:
        """All variable names referenced by the program, in first-use order."""
        seen: dict[str, None] = {name: None for name in self.parameters}

        def walk(statement: Statement) -> None:
            if isinstance(statement, Assign):
                for name in expression_variables(statement.expression):
                    seen.setdefault(name, None)
                seen.setdefault(statement.target, None)
            elif isinstance(statement, Block):
                for child in statement.statements:
                    walk(child)
            elif isinstance(statement, If):
                for name in expression_variables(statement.condition):
                    seen.setdefault(name, None)
                walk(statement.then_branch)
                walk(statement.else_branch)
            elif isinstance(statement, While):
                for name in expression_variables(statement.condition):
                    seen.setdefault(name, None)
                walk(statement.body)
            elif isinstance(statement, Call):
                for argument in statement.arguments:
                    for name in expression_variables(argument):
                        seen.setdefault(name, None)
                for name in statement.results:
                    seen.setdefault(name, None)
            elif isinstance(statement, Skip):
                pass
            else:
                raise CompilationError(
                    f"unknown statement node {type(statement).__name__}"
                )

        walk(self.body)
        return list(seen)

    def output_variables(self) -> tuple[str, ...]:
        """Output variables (``returns`` or every non-parameter variable)."""
        if self.returns:
            return self.returns
        return tuple(
            name for name in self.variables() if name not in self.parameters
        )


# ---------------------------------------------------------------------------
# Reference interpreter
# ---------------------------------------------------------------------------


@dataclass
class ExecutionTrace:
    """Result of interpreting a program.

    Attributes:
        final_state: values of all variables at the end of execution.
        branch_decisions: the sequence of Boolean branch outcomes taken, in
            execution order (used to identify the executed CFG path).
        statements_executed: number of assignments evaluated.
    """

    final_state: dict[str, int]
    branch_decisions: list[bool] = field(default_factory=list)
    statements_executed: int = 0


def _truth(value: int) -> bool:
    return value != 0


def evaluate_expression(
    expression: Expression, state: Mapping[str, int], word_width: int
) -> int:
    """Evaluate ``expression`` in ``state`` with modular semantics."""
    mask = (1 << word_width) - 1
    if isinstance(expression, Const):
        return expression.value & mask
    if isinstance(expression, Var):
        if expression.name not in state:
            raise CompilationError(f"use of undefined variable {expression.name!r}")
        return state[expression.name] & mask
    if isinstance(expression, UnOp):
        operand = evaluate_expression(expression.operand, state, word_width)
        if expression.op == "~":
            return (~operand) & mask
        if expression.op == "-":
            return (-operand) & mask
        return 0 if _truth(operand) else 1  # !
    if isinstance(expression, BinOp):
        left = evaluate_expression(expression.left, state, word_width)
        right = evaluate_expression(expression.right, state, word_width)
        op = expression.op
        if op == "+":
            return (left + right) & mask
        if op == "-":
            return (left - right) & mask
        if op == "*":
            return (left * right) & mask
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<<":
            return 0 if right >= word_width else (left << right) & mask
        if op == ">>":
            return 0 if right >= word_width else left >> right
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "<":
            return int(left < right)
        if op == "<=":
            return int(left <= right)
        if op == ">":
            return int(left > right)
        return int(left >= right)  # >=
    raise CompilationError(f"unknown expression node {type(expression).__name__}")


def interpret(
    program: Program, inputs: Mapping[str, int] | Sequence[int]
) -> ExecutionTrace:
    """Interpret ``program`` on ``inputs`` and return the execution trace.

    Args:
        program: the task program.
        inputs: either a mapping from parameter name to value or a sequence
            of values in parameter order.

    Returns:
        An :class:`ExecutionTrace` with the final state and the branch
        decisions (the latter identify the executed path in the unrolled
        CFG, which the GameTime tests rely on).
    """
    if not isinstance(inputs, Mapping):
        values = list(inputs)
        if len(values) != len(program.parameters):
            raise CompilationError(
                f"{program.name} expects {len(program.parameters)} inputs, "
                f"got {len(values)}"
            )
        inputs = dict(zip(program.parameters, values))
    mask = (1 << program.word_width) - 1
    state: dict[str, int] = {name: 0 for name in program.variables()}
    for name in program.parameters:
        if name not in inputs:
            raise CompilationError(f"missing input for parameter {name!r}")
        state[name] = inputs[name] & mask
    trace = ExecutionTrace(final_state=state)

    def run(statement: Statement) -> None:
        if isinstance(statement, Skip):
            return
        if isinstance(statement, Assign):
            state[statement.target] = evaluate_expression(
                statement.expression, state, program.word_width
            )
            trace.statements_executed += 1
            return
        if isinstance(statement, Block):
            for child in statement.statements:
                run(child)
            return
        if isinstance(statement, If):
            taken = _truth(
                evaluate_expression(statement.condition, state, program.word_width)
            )
            trace.branch_decisions.append(taken)
            run(statement.then_branch if taken else statement.else_branch)
            return
        if isinstance(statement, While):
            iterations = 0
            while True:
                taken = _truth(
                    evaluate_expression(statement.condition, state, program.word_width)
                )
                trace.branch_decisions.append(taken)
                if not taken:
                    return
                if iterations >= statement.bound:
                    raise CompilationError(
                        f"loop exceeded its declared bound of {statement.bound}"
                    )
                run(statement.body)
                iterations += 1
        elif isinstance(statement, Call):
            argument_values = [
                evaluate_expression(arg, state, program.word_width)
                for arg in statement.arguments
            ]
            callee_trace = interpret(statement.callee, argument_values)
            trace.branch_decisions.extend(callee_trace.branch_decisions)
            trace.statements_executed += callee_trace.statements_executed
            outputs = statement.callee.output_variables()
            for target, source in zip(statement.results, outputs):
                state[target] = callee_trace.final_state[source]
        else:
            raise CompilationError(
                f"unknown statement node {type(statement).__name__}"
            )

    run(program.body)
    return trace


def run_program(program: Program, inputs: Mapping[str, int] | Sequence[int]) -> dict[str, int]:
    """Interpret ``program`` and return only the final variable state."""
    return interpret(program, inputs).final_state
