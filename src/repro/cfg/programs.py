"""Ready-made task-language programs used by examples, tests and benchmarks.

The star of the collection is :func:`modular_exponentiation`, the benchmark
behind Figure 6 of the paper (distribution of execution times of a modexp
routine with an 8-bit exponent: 256 paths, 9 basis paths).  A handful of
other control-flow shapes (the paper's Figure 4 toy program, branchy
filters, saturating arithmetic) are provided to exercise the analysis on
more than one workload.
"""

from __future__ import annotations

from repro.cfg.lang import (
    Assign,
    BinOp,
    Block,
    Const,
    If,
    Program,
    Skip,
    Var,
    While,
    assign,
    binop,
    block,
    const,
    var,
)


def figure4_toy(word_width: int = 16) -> Program:
    """The toy program of paper Figure 4.

    ``while (!flag) { flag = 1; (*x)++; } *x += 2;`` — the loop executes at
    most once, so the unrolled CFG is the small DAG shown in Figure 4(b).
    The pointer dereference is modelled as a plain variable ``x``.
    """
    body = block(
        While(
            binop("==", var("flag"), const(0)),
            block(
                assign("flag", const(1)),
                assign("x", binop("+", var("x"), const(1))),
            ),
            bound=1,
        ),
        assign("x", binop("+", var("x"), const(2))),
    )
    return Program(
        name="figure4_toy",
        parameters=("flag", "x"),
        body=body,
        returns=("x",),
        word_width=word_width,
    )


def modular_exponentiation(
    exponent_bits: int = 8, word_width: int = 16
) -> Program:
    """Square-and-multiply modular exponentiation (paper Section 3.3).

    Computes ``base ** exponent`` with arithmetic modulo ``2**word_width``
    (a power-of-two modulus keeps the reduction implicit in the machine
    arithmetic; the control-flow structure — one data-dependent branch per
    exponent bit — is identical to the classic modexp routine used in the
    paper, giving ``2**exponent_bits`` program paths and
    ``exponent_bits + 1`` basis paths).

    Args:
        exponent_bits: number of exponent bits processed (8 in the paper).
        word_width: machine word width for all arithmetic.
    """
    body_statements = [assign("result", const(1))]
    for bit in range(exponent_bits):
        body_statements.append(
            If(
                binop(
                    "!=",
                    binop("&", binop(">>", var("exponent"), const(bit)), const(1)),
                    const(0),
                ),
                assign("result", binop("*", var("result"), var("base"))),
                Skip(),
            )
        )
        body_statements.append(assign("base", binop("*", var("base"), var("base"))))
    return Program(
        name=f"modexp{exponent_bits}",
        parameters=("base", "exponent"),
        body=Block(tuple(body_statements)),
        returns=("result",),
        word_width=word_width,
    )


def conditional_cascade(depth: int = 4, word_width: int = 16) -> Program:
    """A cascade of data-dependent conditionals (``2**depth`` paths).

    Each level either adds a large constant (slow path: extra multiply) or
    a small one, producing a wide spread of execution times; used by the
    ablation benchmarks comparing basis-path testing with random testing.
    """
    statements = [assign("acc", const(0))]
    for level in range(depth):
        statements.append(
            If(
                binop(
                    "!=",
                    binop("&", binop(">>", var("x"), const(level)), const(1)),
                    const(0),
                ),
                block(
                    assign("acc", binop("*", var("acc"), const(3))),
                    assign("acc", binop("+", var("acc"), const(level + 1))),
                ),
                assign("acc", binop("+", var("acc"), const(1))),
            )
        )
    return Program(
        name=f"cascade{depth}",
        parameters=("x",),
        body=Block(tuple(statements)),
        returns=("acc",),
        word_width=word_width,
    )


def saturating_add(word_width: int = 16) -> Program:
    """Saturating addition: ``min(a + b, limit)`` with a guard branch."""
    limit = (1 << (word_width - 1)) - 1
    body = block(
        assign("sum", binop("+", var("a"), var("b"))),
        If(
            binop(">", var("sum"), const(limit)),
            assign("sum", const(limit)),
            Skip(),
        ),
    )
    return Program(
        name="saturating_add",
        parameters=("a", "b"),
        body=body,
        returns=("sum",),
        word_width=word_width,
    )


def absolute_difference(word_width: int = 16) -> Program:
    """``|a - b|`` via a comparison branch (two paths)."""
    body = If(
        binop(">=", var("a"), var("b")),
        assign("diff", binop("-", var("a"), var("b"))),
        assign("diff", binop("-", var("b"), var("a"))),
    )
    return Program(
        name="absolute_difference",
        parameters=("a", "b"),
        body=body,
        returns=("diff",),
        word_width=word_width,
    )


def bounded_linear_search(length: int = 4, word_width: int = 16) -> Program:
    """Linear search over ``length`` candidate slots encoded in a packed word.

    Scans the ``length`` nibbles of ``haystack`` for ``needle`` and records
    the first matching position (or ``length`` when absent); exercises a
    bounded loop whose trip count is data dependent.
    """
    body = block(
        assign("position", const(length)),
        assign("index", const(0)),
        While(
            binop(
                "&",
                binop("<", var("index"), const(length)),
                binop("==", var("position"), const(length)),
            ),
            block(
                If(
                    binop(
                        "==",
                        binop(
                            "&",
                            binop(">>", var("haystack"), binop("*", var("index"), const(4))),
                            const(0xF),
                        ),
                        var("needle"),
                    ),
                    assign("position", var("index")),
                    Skip(),
                ),
                assign("index", binop("+", var("index"), const(1))),
            ),
            bound=length,
        ),
    )
    return Program(
        name=f"linear_search{length}",
        parameters=("haystack", "needle"),
        body=body,
        returns=("position",),
        word_width=word_width,
    )
