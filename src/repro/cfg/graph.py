"""Control-flow graphs (CFGs) over the task language.

GameTime operates on the control-flow graph of the task *after* loop
unrolling and function inlining, which turns it into a directed acyclic
graph with a single source (entry) and a single sink (exit) — paper
Figure 4/5.  This module provides that data structure plus:

* structural queries (successors, predecessors, topological order,
  acyclicity, the basis dimension ``m - n + 2``),
* concrete execution of the CFG on an input valuation, returning both the
  final state and the executed path (used to cross-validate the builder
  against the AST interpreter and to label paths with measurements),
* longest/shortest path computation under edge weights (used by GameTime's
  prediction step).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.core.exceptions import CompilationError
from repro.cfg.lang import Assign, Expression, evaluate_expression


@dataclass
class BasicBlock:
    """A basic block: a straight-line sequence of assignments.

    Attributes:
        index: the block's index in the CFG.
        statements: the assignments executed when the block runs.
        label: optional human-readable label (e.g. ``loop[2].then``).
    """

    index: int
    statements: list[Assign] = field(default_factory=list)
    label: str = ""


@dataclass
class Edge:
    """A CFG edge, optionally guarded by a branch condition.

    Attributes:
        index: the edge's index (position in :attr:`ControlFlowGraph.edges`);
            this is the coordinate used in path vectors.
        source: index of the source block.
        target: index of the target block.
        condition: expression that must evaluate to a non-zero value for
            the edge to be taken; ``None`` for unconditional edges.
    """

    index: int
    source: int
    target: int
    condition: Expression | None = None


@dataclass
class CfgExecution:
    """Result of executing a CFG on concrete inputs.

    Attributes:
        final_state: variable valuation at the exit block.
        edge_sequence: indices of the edges traversed, in order.
        node_sequence: indices of the blocks visited, in order.
    """

    final_state: dict[str, int]
    edge_sequence: list[int]
    node_sequence: list[int]


class ControlFlowGraph:
    """A CFG with a single entry and a single exit block.

    Instances are normally produced by :func:`repro.cfg.builder.build_cfg`;
    they can also be constructed programmatically for tests.
    """

    def __init__(self, name: str, word_width: int, parameters: Sequence[str]):
        self.name = name
        self.word_width = word_width
        self.parameters = tuple(parameters)
        self.blocks: list[BasicBlock] = []
        self.edges: list[Edge] = []
        self._successors: list[list[int]] = []
        self._predecessors: list[list[int]] = []
        self.entry: int | None = None
        self.exit: int | None = None

    # -- construction ------------------------------------------------------

    def new_block(self, label: str = "") -> int:
        """Create a new empty basic block and return its index."""
        index = len(self.blocks)
        self.blocks.append(BasicBlock(index=index, label=label))
        self._successors.append([])
        self._predecessors.append([])
        return index

    def add_statement(self, block_index: int, statement: Assign) -> None:
        """Append an assignment to a block."""
        self.blocks[block_index].statements.append(statement)

    def add_edge(
        self, source: int, target: int, condition: Expression | None = None
    ) -> int:
        """Add an edge and return its index."""
        index = len(self.edges)
        self.edges.append(Edge(index=index, source=source, target=target, condition=condition))
        self._successors[source].append(index)
        self._predecessors[target].append(index)
        return index

    # -- structural queries --------------------------------------------------

    @property
    def num_blocks(self) -> int:
        """Number of basic blocks."""
        return len(self.blocks)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return len(self.edges)

    def successor_edges(self, block_index: int) -> list[Edge]:
        """Edges leaving ``block_index``."""
        return [self.edges[i] for i in self._successors[block_index]]

    def predecessor_edges(self, block_index: int) -> list[Edge]:
        """Edges entering ``block_index``."""
        return [self.edges[i] for i in self._predecessors[block_index]]

    def basis_dimension(self) -> int:
        """Dimension of the path space: ``m - n + 2`` for a connected DAG
        with single source and sink (paper Section 3.2: the number of basis
        paths)."""
        return self.num_edges - self.num_blocks + 2

    def check_single_entry_exit(self) -> None:
        """Raise if the CFG does not have exactly one source and one sink."""
        sources = [b.index for b in self.blocks if not self._predecessors[b.index]]
        sinks = [b.index for b in self.blocks if not self._successors[b.index]]
        if len(sources) != 1 or len(sinks) != 1:
            raise CompilationError(
                f"CFG must have a single source and sink, found {sources} / {sinks}"
            )
        if self.entry is None:
            self.entry = sources[0]
        if self.exit is None:
            self.exit = sinks[0]

    def is_dag(self) -> bool:
        """Return True iff the CFG is acyclic."""
        try:
            self.topological_order()
            return True
        except CompilationError:
            return False

    def topological_order(self) -> list[int]:
        """Return block indices in topological order.

        Raises:
            CompilationError: if the graph contains a cycle.
        """
        in_degree = [len(self._predecessors[i]) for i in range(self.num_blocks)]
        queue = [i for i in range(self.num_blocks) if in_degree[i] == 0]
        order: list[int] = []
        head = 0
        while head < len(queue):
            node = queue[head]
            head += 1
            order.append(node)
            for edge_index in self._successors[node]:
                target = self.edges[edge_index].target
                in_degree[target] -= 1
                if in_degree[target] == 0:
                    queue.append(target)
        if len(order) != self.num_blocks:
            raise CompilationError("CFG contains a cycle (did you forget to unroll?)")
        return order

    def count_paths(self) -> int:
        """Number of source-to-sink paths (exact, by DAG dynamic programming)."""
        self.check_single_entry_exit()
        order = self.topological_order()
        counts = [0] * self.num_blocks
        counts[self.exit] = 1
        for node in reversed(order):
            if node == self.exit:
                continue
            counts[node] = sum(
                counts[edge.target] for edge in self.successor_edges(node)
            )
        return counts[self.entry]

    # -- execution -------------------------------------------------------------

    def execute(self, inputs: Mapping[str, int] | Sequence[int]) -> CfgExecution:
        """Execute the CFG on concrete inputs.

        Branch conditions are evaluated on the current state; exactly one
        outgoing edge of every non-exit block must be enabled (the builder
        guarantees this by pairing each condition with its negation).

        Returns:
            A :class:`CfgExecution` containing the final state and the path.
        """
        self.check_single_entry_exit()
        if not isinstance(inputs, Mapping):
            values = list(inputs)
            if len(values) != len(self.parameters):
                raise CompilationError(
                    f"expected {len(self.parameters)} inputs, got {len(values)}"
                )
            inputs = dict(zip(self.parameters, values))
        mask = (1 << self.word_width) - 1
        state: dict[str, int] = {}
        for name in self.parameters:
            if name not in inputs:
                raise CompilationError(f"missing input {name!r}")
            state[name] = inputs[name] & mask
        node = self.entry
        node_sequence = [node]
        edge_sequence: list[int] = []
        steps = 0
        limit = self.num_blocks + 1
        while node != self.exit:
            steps += 1
            if steps > limit:
                raise CompilationError("CFG execution did not reach the exit (cycle?)")
            for statement in self.blocks[node].statements:
                state[statement.target] = evaluate_expression(
                    statement.expression, state, self.word_width
                )
            taken: Edge | None = None
            for edge in self.successor_edges(node):
                if edge.condition is None:
                    enabled = True
                else:
                    enabled = (
                        evaluate_expression(edge.condition, state, self.word_width) != 0
                    )
                if enabled:
                    taken = edge
                    break
            if taken is None:
                raise CompilationError(
                    f"no enabled outgoing edge from block {node} during execution"
                )
            edge_sequence.append(taken.index)
            node = taken.target
            node_sequence.append(node)
        # Execute the exit block's statements (usually empty).
        for statement in self.blocks[node].statements:
            state[statement.target] = evaluate_expression(
                statement.expression, state, self.word_width
            )
        return CfgExecution(
            final_state=state, edge_sequence=edge_sequence, node_sequence=node_sequence
        )

    # -- weighted path queries ---------------------------------------------------

    def extremal_path(
        self, edge_weights: Sequence[float], longest: bool = True
    ) -> tuple[float, list[int]]:
        """Longest (or shortest) source-to-sink path under edge weights.

        Args:
            edge_weights: one weight per edge (indexed by edge index).
            longest: True for the longest path, False for the shortest.

        Returns:
            ``(total_weight, edge_indices)`` of the extremal path.
        """
        self.check_single_entry_exit()
        if len(edge_weights) != self.num_edges:
            raise CompilationError("one weight per edge is required")
        order = self.topological_order()
        sign = 1.0 if longest else -1.0
        best: list[float] = [float("-inf")] * self.num_blocks
        best_edge: list[int | None] = [None] * self.num_blocks
        best[self.entry] = 0.0
        for node in order:
            if best[node] == float("-inf"):
                continue
            for edge in self.successor_edges(node):
                candidate = best[node] + sign * edge_weights[edge.index]
                if candidate > best[edge.target]:
                    best[edge.target] = candidate
                    best_edge[edge.target] = edge.index
        if best[self.exit] == float("-inf"):
            raise CompilationError("exit unreachable from entry")
        # Reconstruct.
        path: list[int] = []
        node = self.exit
        while node != self.entry:
            edge_index = best_edge[node]
            assert edge_index is not None
            path.append(edge_index)
            node = self.edges[edge_index].source
        path.reverse()
        return sign * best[self.exit], path

    # -- misc -------------------------------------------------------------------

    def edge_description(self, edge_index: int) -> str:
        """Human-readable description of an edge (for reports)."""
        edge = self.edges[edge_index]
        guard = f" [{edge.condition!r}]" if edge.condition is not None else ""
        return f"e{edge.index}: B{edge.source}->B{edge.target}{guard}"

    def __repr__(self) -> str:
        return (
            f"ControlFlowGraph({self.name!r}, blocks={self.num_blocks}, "
            f"edges={self.num_edges})"
        )

    def iter_edges(self) -> Iterator[Edge]:
        """Iterate over all edges."""
        return iter(self.edges)
