"""Construction of unrolled, inlined control-flow graphs.

Mirrors the front-end step of GameTime (paper Figure 5): "Generate
Control-Flow Graph, Unroll Loops, Inline Functions".  Loops carry static
bounds (see :class:`repro.cfg.lang.While`) and are unrolled into nested
conditionals; calls are inlined with parameter renaming, so the resulting
CFG is a DAG with a single source and a single sink.
"""

from __future__ import annotations

import itertools

from repro.core.exceptions import CompilationError
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.lang import (
    Assign,
    BinOp,
    Block,
    Call,
    Const,
    Expression,
    If,
    Program,
    Skip,
    Statement,
    UnOp,
    Var,
    While,
)

_inline_counter = itertools.count()


def negate_condition(condition: Expression) -> Expression:
    """Return the logical negation of a branch condition."""
    return UnOp("!", condition)


def _rename_expression(expression: Expression, mapping: dict[str, str]) -> Expression:
    if isinstance(expression, Const):
        return expression
    if isinstance(expression, Var):
        return Var(mapping.get(expression.name, expression.name))
    if isinstance(expression, UnOp):
        return UnOp(expression.op, _rename_expression(expression.operand, mapping))
    if isinstance(expression, BinOp):
        return BinOp(
            expression.op,
            _rename_expression(expression.left, mapping),
            _rename_expression(expression.right, mapping),
        )
    raise CompilationError(f"unknown expression node {type(expression).__name__}")


def _rename_statement(statement: Statement, mapping: dict[str, str]) -> Statement:
    if isinstance(statement, Skip):
        return statement
    if isinstance(statement, Assign):
        return Assign(
            mapping.get(statement.target, statement.target),
            _rename_expression(statement.expression, mapping),
        )
    if isinstance(statement, Block):
        return Block(tuple(_rename_statement(child, mapping) for child in statement.statements))
    if isinstance(statement, If):
        return If(
            _rename_expression(statement.condition, mapping),
            _rename_statement(statement.then_branch, mapping),
            _rename_statement(statement.else_branch, mapping),
        )
    if isinstance(statement, While):
        return While(
            _rename_expression(statement.condition, mapping),
            _rename_statement(statement.body, mapping),
            statement.bound,
        )
    if isinstance(statement, Call):
        return Call(
            statement.callee,
            tuple(_rename_expression(arg, mapping) for arg in statement.arguments),
            tuple(mapping.get(name, name) for name in statement.results),
        )
    raise CompilationError(f"unknown statement node {type(statement).__name__}")


def inline_calls(statement: Statement) -> Statement:
    """Replace every :class:`Call` with the callee's (renamed) body.

    Callee variables are prefixed with a fresh ``__inlineN_`` marker so
    repeated calls do not clash; arguments become assignments to the
    renamed parameters and results are copied back afterwards.
    """
    if isinstance(statement, (Skip, Assign)):
        return statement
    if isinstance(statement, Block):
        return Block(tuple(inline_calls(child) for child in statement.statements))
    if isinstance(statement, If):
        return If(
            statement.condition,
            inline_calls(statement.then_branch),
            inline_calls(statement.else_branch),
        )
    if isinstance(statement, While):
        return While(statement.condition, inline_calls(statement.body), statement.bound)
    if isinstance(statement, Call):
        callee = statement.callee
        prefix = f"__inline{next(_inline_counter)}_{callee.name}_"
        mapping = {name: prefix + name for name in callee.variables()}
        pieces: list[Statement] = []
        if len(statement.arguments) != len(callee.parameters):
            raise CompilationError(
                f"call to {callee.name} with {len(statement.arguments)} arguments, "
                f"expected {len(callee.parameters)}"
            )
        for parameter, argument in zip(callee.parameters, statement.arguments):
            pieces.append(Assign(mapping[parameter], argument))
        pieces.append(inline_calls(_rename_statement(callee.body, mapping)))
        outputs = callee.output_variables()
        if len(statement.results) > len(outputs):
            raise CompilationError(
                f"call to {callee.name} binds {len(statement.results)} results, "
                f"callee produces {len(outputs)}"
            )
        for target, source in zip(statement.results, outputs):
            pieces.append(Assign(target, Var(mapping[source])))
        return Block(tuple(pieces))
    raise CompilationError(f"unknown statement node {type(statement).__name__}")


def unroll_loops(statement: Statement) -> Statement:
    """Unroll every :class:`While` into nested conditionals.

    A loop with bound ``b`` becomes ``b + 1`` nested tests of the loop
    condition; the innermost then-branch is empty and corresponds to the
    "bound exceeded" case, which is unreachable when the declared bound is
    correct (the reference interpreter raises in that case, so the bound's
    correctness is checked dynamically by the tests).
    """
    if isinstance(statement, (Skip, Assign)):
        return statement
    if isinstance(statement, Block):
        return Block(tuple(unroll_loops(child) for child in statement.statements))
    if isinstance(statement, If):
        return If(
            statement.condition,
            unroll_loops(statement.then_branch),
            unroll_loops(statement.else_branch),
        )
    if isinstance(statement, Call):
        raise CompilationError("calls must be inlined before unrolling")
    if isinstance(statement, While):
        body = unroll_loops(statement.body)
        unrolled: Statement = If(statement.condition, Skip(), Skip())
        for _ in range(statement.bound):
            unrolled = If(statement.condition, Block((body, unrolled)), Skip())
        return unrolled
    raise CompilationError(f"unknown statement node {type(statement).__name__}")


def build_cfg(program: Program) -> ControlFlowGraph:
    """Build the unrolled, inlined CFG of ``program``.

    The result is guaranteed to be a DAG with a single entry and a single
    exit block (dummy blocks are added where needed), matching the form
    GameTime's basis-path extraction expects.
    """
    statement = unroll_loops(inline_calls(program.body))
    cfg = ControlFlowGraph(program.name, program.word_width, program.parameters)
    entry = cfg.new_block(label="entry")
    cfg.entry = entry
    exit_block = cfg.new_block(label="exit")
    cfg.exit = exit_block

    def build(node: Statement, current: int) -> int:
        """Emit ``node`` starting at block ``current``; return the block in
        which control resides afterwards."""
        if isinstance(node, Skip):
            return current
        if isinstance(node, Assign):
            cfg.add_statement(current, node)
            return current
        if isinstance(node, Block):
            for child in node.statements:
                current = build(child, current)
            return current
        if isinstance(node, If):
            then_entry = cfg.new_block(label="then")
            else_entry = cfg.new_block(label="else")
            cfg.add_edge(current, then_entry, node.condition)
            cfg.add_edge(current, else_entry, negate_condition(node.condition))
            then_exit = build(node.then_branch, then_entry)
            else_exit = build(node.else_branch, else_entry)
            join = cfg.new_block(label="join")
            cfg.add_edge(then_exit, join)
            cfg.add_edge(else_exit, join)
            return join
        raise CompilationError(
            f"unexpected statement {type(node).__name__} after unrolling/inlining"
        )

    last = build(statement, entry)
    cfg.add_edge(last, exit_block)
    cfg.check_single_entry_exit()
    if not cfg.is_dag():
        raise CompilationError("internal error: built CFG is not acyclic")
    return cfg
