"""Extraction of feasible basis paths (paper Section 3.2, Figure 5).

The set of source-to-sink path vectors of a DAG CFG with ``n`` nodes and
``m`` edges spans a subspace of dimension ``b = m - n + 2``.  GameTime
measures only ``b`` *basis paths* and predicts every other path's timing
from its expansion in that basis, so extracting a set of feasible,
linearly-independent paths is the critical front-end step.

The extractor enumerates paths lazily (depth-first) and greedily keeps
those that (a) increase the rank of the collected path-vector matrix and
(b) are feasible according to the SMT-based
:class:`~repro.cfg.ssa.PathConstraintBuilder`.  For each selected path the
SMT model provides the test case that drives execution down it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import CompilationError
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.paths import Path, RationalRankTracker, enumerate_paths
from repro.cfg.ssa import FeasiblePath, PathConstraintBuilder


@dataclass
class BasisExtractionResult:
    """Outcome of basis-path extraction.

    Attributes:
        basis: the selected feasible basis paths with their test cases.
        dimension: the target dimension ``m - n + 2``.
        achieved_rank: rank actually achieved (may be lower than
            ``dimension`` when infeasible paths make parts of the path
            space unreachable).
        paths_considered: number of candidate paths examined.
        infeasible_skipped: number of candidates rejected as infeasible.
    """

    basis: list[FeasiblePath] = field(default_factory=list)
    dimension: int = 0
    achieved_rank: int = 0
    paths_considered: int = 0
    infeasible_skipped: int = 0

    @property
    def complete(self) -> bool:
        """True iff a full-rank basis of feasible paths was found."""
        return self.achieved_rank == self.dimension

    def vectors(self, num_edges: int) -> list[np.ndarray]:
        """Indicator vectors of the basis paths."""
        return [item.path.vector(num_edges) for item in self.basis]

    def test_cases(self) -> list[dict[str, int]]:
        """Test cases (one per basis path)."""
        return [item.test_case for item in self.basis]


def extract_basis_paths(
    cfg: ControlFlowGraph,
    constraint_builder: PathConstraintBuilder | None = None,
    check_feasibility: bool = True,
    max_candidates: int | None = None,
) -> BasisExtractionResult:
    """Extract a maximal set of feasible, linearly-independent paths.

    Args:
        cfg: the unrolled CFG (must be a DAG with single entry/exit).
        constraint_builder: SMT path-constraint builder; a default one is
            created when omitted.
        check_feasibility: when False, paths are selected on linear
            independence alone (useful for structural tests and for CFGs
            whose paths are all feasible by construction).
        max_candidates: optional cap on the number of candidate paths
            examined (a safety valve for CFGs with very many paths).

    Returns:
        A :class:`BasisExtractionResult`; its ``basis`` list holds at most
        ``m - n + 2`` paths and each carries a satisfying test case (or an
        empty one when ``check_feasibility`` is False).
    """
    cfg.check_single_entry_exit()
    if not cfg.is_dag():
        raise CompilationError("basis extraction requires an acyclic CFG")
    if constraint_builder is None and check_feasibility:
        constraint_builder = PathConstraintBuilder(cfg)
    dimension = cfg.basis_dimension()
    tracker = RationalRankTracker(cfg.num_edges)
    result = BasisExtractionResult(dimension=dimension)

    for path in enumerate_paths(cfg, limit=max_candidates):
        if result.achieved_rank >= dimension:
            break
        result.paths_considered += 1
        vector = path.vector(cfg.num_edges)
        if not tracker.would_increase_rank(vector):
            continue
        if check_feasibility:
            assert constraint_builder is not None
            feasible = constraint_builder.feasibility(path)
            if feasible is None:
                result.infeasible_skipped += 1
                continue
        else:
            feasible = FeasiblePath(path=path, test_case={})
        tracker.add(vector)
        result.basis.append(feasible)
        result.achieved_rank = tracker.rank
    return result


def basis_matrix(result: BasisExtractionResult, num_edges: int) -> np.ndarray:
    """Stack the basis path vectors into a ``(b, m)`` matrix."""
    if not result.basis:
        raise CompilationError("no basis paths were extracted")
    return np.stack(result.vectors(num_edges), axis=0)
