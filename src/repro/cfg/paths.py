"""Program paths as edge-indicator vectors.

GameTime's central object is the vector representation of a source-to-sink
path in the unrolled CFG: a path is a 0/1 vector ``x`` in ``R^m`` (one
coordinate per edge), and the set of such vectors spans a subspace of
dimension ``m - n + 2``.  Basis paths (:mod:`repro.cfg.basis`) are a basis
of that subspace; any path's predicted execution time is obtained from its
coordinates in that basis (paper Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Sequence

import numpy as np

from repro.core.exceptions import CompilationError
from repro.cfg.graph import ControlFlowGraph


@dataclass(frozen=True)
class Path:
    """A source-to-sink path of a CFG.

    Attributes:
        edges: the edge indices traversed, in order.
        nodes: the block indices visited, in order.
    """

    edges: tuple[int, ...]
    nodes: tuple[int, ...]

    def vector(self, num_edges: int) -> np.ndarray:
        """Return the 0/1 indicator vector of the path in ``R^num_edges``."""
        result = np.zeros(num_edges, dtype=float)
        for edge in self.edges:
            result[edge] = 1.0
        return result

    def __len__(self) -> int:
        return len(self.edges)

    def __contains__(self, edge_index: int) -> bool:
        return edge_index in self.edges


def path_from_edges(cfg: ControlFlowGraph, edges: Sequence[int]) -> Path:
    """Build a :class:`Path` from an edge-index sequence, validating it."""
    cfg.check_single_entry_exit()
    if not edges:
        raise CompilationError("a path must contain at least one edge")
    nodes = [cfg.edges[edges[0]].source]
    for edge_index in edges:
        edge = cfg.edges[edge_index]
        if edge.source != nodes[-1]:
            raise CompilationError(
                f"edge {edge_index} does not continue the path at block {nodes[-1]}"
            )
        nodes.append(edge.target)
    if nodes[0] != cfg.entry or nodes[-1] != cfg.exit:
        raise CompilationError("path must run from the entry block to the exit block")
    return Path(tuple(edges), tuple(nodes))


def enumerate_paths(cfg: ControlFlowGraph, limit: int | None = None) -> Iterator[Path]:
    """Lazily enumerate all source-to-sink paths of a DAG CFG.

    Paths are produced in depth-first order.  ``limit`` optionally caps the
    number of paths yielded (the total count can be exponential in the CFG
    size; use :meth:`ControlFlowGraph.count_paths` to check first).
    """
    cfg.check_single_entry_exit()
    if not cfg.is_dag():
        raise CompilationError("path enumeration requires an acyclic CFG")
    produced = 0
    stack_nodes = [cfg.entry]
    stack_edges: list[int] = []

    def dfs(node: int) -> Iterator[Path]:
        nonlocal produced
        if node == cfg.exit:
            if limit is None or produced < limit:
                produced += 1
                yield Path(tuple(stack_edges), tuple(stack_nodes))
            return
        for edge in cfg.successor_edges(node):
            if limit is not None and produced >= limit:
                return
            stack_edges.append(edge.index)
            stack_nodes.append(edge.target)
            yield from dfs(edge.target)
            stack_edges.pop()
            stack_nodes.pop()

    yield from dfs(cfg.entry)


def execution_path(cfg: ControlFlowGraph, inputs) -> Path:
    """Return the path taken by executing ``cfg`` on concrete ``inputs``."""
    execution = cfg.execute(inputs)
    return Path(tuple(execution.edge_sequence), tuple(execution.node_sequence))


class RationalRankTracker:
    """Incremental exact rank computation over the rationals.

    Used by the basis-path extractor: path vectors are integral, so exact
    Gaussian elimination over :class:`fractions.Fraction` avoids the
    numerical-tolerance pitfalls of floating-point rank tests.
    """

    def __init__(self, dimension: int):
        self.dimension = dimension
        self._rows: list[list[Fraction]] = []
        self._pivot_columns: list[int] = []

    @property
    def rank(self) -> int:
        """Current rank of the tracked set of vectors."""
        return len(self._rows)

    def _reduce(self, vector: Sequence[float]) -> list[Fraction]:
        row = [Fraction(value).limit_denominator(10**9) for value in vector]
        for pivot_row, pivot_column in zip(self._rows, self._pivot_columns):
            if row[pivot_column] != 0:
                factor = row[pivot_column] / pivot_row[pivot_column]
                row = [a - factor * b for a, b in zip(row, pivot_row)]
        return row

    def would_increase_rank(self, vector: Sequence[float]) -> bool:
        """Return True iff adding ``vector`` would increase the rank."""
        return any(value != 0 for value in self._reduce(vector))

    def add(self, vector: Sequence[float]) -> bool:
        """Add ``vector`` if it is independent of the tracked set.

        Returns:
            True if the vector was added (rank increased), False otherwise.
        """
        row = self._reduce(vector)
        for column, value in enumerate(row):
            if value != 0:
                self._rows.append(row)
                self._pivot_columns.append(column)
                return True
        return False


def expansion_coefficients(
    basis_vectors: Sequence[np.ndarray], target: np.ndarray
) -> np.ndarray:
    """Coefficients expressing ``target`` in terms of ``basis_vectors``.

    The basis paths span the path subspace, so every feasible path vector
    has an exact expansion; coefficients are computed by least squares and
    the residual is checked to guard against an incomplete basis.

    Raises:
        CompilationError: if ``target`` lies outside the span (residual not
            numerically zero), which indicates the basis is incomplete.
    """
    matrix = np.stack(basis_vectors, axis=1)
    coefficients, _, _, _ = np.linalg.lstsq(matrix, target, rcond=None)
    residual = np.linalg.norm(matrix @ coefficients - target)
    if residual > 1e-6:
        raise CompilationError(
            f"path vector lies outside the basis span (residual {residual:.3g})"
        )
    return coefficients
