"""SMT encoding of CFG paths (path feasibility and test generation).

The deductive engine of GameTime is "SMT solving for basis path
generation" (paper Table 1): for each candidate basis path an SMT formula
is built that is satisfiable iff the path is feasible, and a satisfying
model yields a test case driving execution down that path (paper
Section 3.2, Figure 5).

The encoding is a straightforward single-static-assignment (SSA) pass over
the statements and branch conditions along the path, over fixed-width
bit-vectors.  Two refinements keep the queries small:

* *condition slicing* — only assignments that (transitively) feed a branch
  condition along the path are encoded; assignments to dead-for-control
  variables (e.g. the accumulating product in modular exponentiation) are
  skipped, which keeps multiplication out of the SAT encoding entirely;
* constants are folded by the term constructors.
"""

from __future__ import annotations

import hashlib

from dataclasses import dataclass

from repro.core.exceptions import BudgetExceededError, CompilationError
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.lang import Assign, BinOp, Const, Expression, UnOp, Var, expression_variables
from repro.cfg.paths import Path
from repro.smt.solver import SmtResult, SmtSolver, SmtStatistics
from repro.smt.terms import (
    BitVecTerm,
    BoolTerm,
    BvVar,
    bool_and,
    bool_not,
    bv_const,
    bv_ite,
    bv_lshr,
    bv_shl,
    bv_var,
)


@dataclass
class PathEncoding:
    """The SMT encoding of one CFG path.

    Attributes:
        constraints: the list of Boolean constraints (conjunction =
            path-feasibility formula).
        input_variables: term-level variables for the program parameters
            (initial SSA versions), keyed by parameter name.
    """

    constraints: list[BoolTerm]
    input_variables: dict[str, BvVar]

    def formula(self) -> BoolTerm:
        """The conjunction of all path constraints."""
        return bool_and(*self.constraints)


@dataclass
class FeasiblePath:
    """A path together with a witness test case proving its feasibility."""

    path: Path
    test_case: dict[str, int]


class PathConstraintBuilder:
    """Builds SSA path constraints for a CFG and answers feasibility queries.

    All feasibility queries for one CFG share a single incremental
    :class:`~repro.smt.solver.SmtSolver`: each path's constraints are
    asserted inside a push/pop scope (realised with activation literals by
    the solver), so the bit-blasted encodings of shared path prefixes and
    the SAT solver's learned clauses are reused across the whole
    feasibility sweep instead of being rebuilt per path.

    Args:
        cfg: the control-flow graph to encode.
        slice_to_conditions: when True, only assignments feeding branch
            conditions are encoded (see module docstring).
        reencode_each_check: forwarded to :class:`SmtSolver`; when True the
            solver re-bit-blasts every query (the pre-incremental
            behaviour, kept benchmarkable).  *Deprecated*: prefer
            ``config``.
        solver_options: extra keyword arguments forwarded to the shared
            :class:`SmtSolver` (the perf-suite ablation knobs:
            ``simplify_terms``, ``polarity_aware``, ``gc_dead_clauses``).
            *Deprecated*: prefer ``config``.
        config: an :class:`~repro.api.config.EngineConfig` carrying all
            solver flags in one place (takes precedence over the legacy
            kwargs above).
        solver: an externally owned :class:`SmtSolver` to run the
            feasibility queries on — typically a pooled session leased by
            :class:`~repro.api.pool.SolverPool`.  When provided, the
            builder's statistics are per-builder deltas against the
            solver's state at hand-over, not the solver's lifetime
            totals.
        solver_factory: a solver factory — typically the
            :class:`~repro.api.pool.SolverLease` itself.  When the
            factory offers the ``base_session`` / ``seal_base`` protocol,
            the builder opens a *fingerprinted per-CFG base scope* on the
            leased session, exactly like the OGIS encoder's skeleton
            scope: at lease release the pool rolls the session back to
            the scope's variable frontier (shedding every per-path SSA
            encoding wholesale), and a later job on the same CFG finds
            the scope — and therefore the session's memoized feasibility
            verdicts — still valid, so a repeated timing-analysis sweep
            answers its path queries without re-running the SAT search.
            Takes precedence over ``solver``.
    """

    def __init__(
        self,
        cfg: ControlFlowGraph,
        slice_to_conditions: bool = True,
        reencode_each_check: bool = False,
        solver_options: dict | None = None,
        config=None,
        solver: SmtSolver | None = None,
        solver_factory=None,
    ):
        self.cfg = cfg
        self.slice_to_conditions = slice_to_conditions
        #: Whether this builder found its base scope already sealed by an
        #: earlier same-CFG tenant (telemetry for tests/benchmarks).
        self.base_scope_reused = False
        #: Paths verdict-checked / found feasible by :meth:`sweep`
        #: (builder-local mirror of the lease's intra-job counters).
        self.sweep_tasks = 0
        self.sweep_feasible = 0
        self._solver_factory = solver_factory
        if solver_factory is not None:
            base_session = getattr(solver_factory, "base_session", None)
            if base_session is not None:
                self._solver, self.base_scope_reused = base_session(
                    self.fingerprint()
                )
                if not self.base_scope_reused:
                    # The SSA encoding has no job-independent constraints
                    # to assert (every path formula is query-local), so
                    # the base scope is sealed empty: its value is the
                    # frontier watermark — release-time rollback — and
                    # the check-memo epoch it keeps alive across jobs.
                    solver_factory.seal_base()
            else:
                self._solver = solver_factory()
            solver = self._solver
        elif solver is not None:
            self._solver = solver
        else:
            if config is None:
                from repro.api.config import EngineConfig

                config = EngineConfig.from_legacy(reencode_each_check, solver_options)
            self._solver = SmtSolver(**config.solver_options())
        self._config = config
        self._statistics_base = (
            self._solver.statistics.snapshot() if solver is not None else SmtStatistics()
        )
        self.queries = 0

    def fingerprint(self) -> str:
        """Stable identity of this builder's base scope.

        Two builders share a fingerprint exactly when they produce the
        same encodings: same CFG structure (blocks, statements, edge
        conditions, parameters, word width) and the same slicing flag.
        """
        blocks = ";".join(
            ",".join(repr(statement) for statement in block.statements)
            for block in self.cfg.blocks
        )
        edges = ";".join(
            f"{edge.source}>{edge.target}:{edge.condition!r}"
            for edge in self.cfg.edges
        )
        raw = (
            f"{self.cfg.word_width}|{','.join(self.cfg.parameters)}"
            f"|{int(self.slice_to_conditions)}|{blocks}|{edges}"
        )
        return "cfg/" + hashlib.sha1(raw.encode("utf-8")).hexdigest()

    @property
    def solver(self) -> SmtSolver:
        """The shared per-CFG incremental solver (telemetry / benchmarks)."""
        return self._solver

    @property
    def smt_statistics(self) -> SmtStatistics:
        """SMT work counters charged to this builder.

        With an injected (pooled) solver this is the delta since the
        solver was handed over, so sharing a session across jobs does not
        inflate any one job's numbers.
        """
        return self._solver.statistics.delta_since(self._statistics_base)

    # -- expression translation ------------------------------------------------

    def _translate(
        self, expression: Expression, versions: dict[str, BitVecTerm]
    ) -> BitVecTerm:
        width = self.cfg.word_width
        if isinstance(expression, Const):
            return bv_const(expression.value, width)
        if isinstance(expression, Var):
            if expression.name not in versions:
                # Uninitialised non-parameter variables read as zero, matching
                # the reference interpreter.
                versions[expression.name] = bv_const(0, width)
            return versions[expression.name]
        if isinstance(expression, UnOp):
            operand = self._translate(expression.operand, versions)
            if expression.op == "~":
                return ~operand
            if expression.op == "-":
                return -operand
            # Logical not: 1 if operand == 0 else 0.
            return bv_ite(
                operand.eq(bv_const(0, width)), bv_const(1, width), bv_const(0, width)
            )
        if isinstance(expression, BinOp):
            left = self._translate(expression.left, versions)
            right = self._translate(expression.right, versions)
            op = expression.op
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "&":
                return left & right
            if op == "|":
                return left | right
            if op == "^":
                return left ^ right
            if op == "<<":
                return bv_shl(left, right)
            if op == ">>":
                return bv_lshr(left, right)
            # Comparisons produce 0/1 words.
            comparisons = {
                "==": left.eq(right),
                "!=": left.ne(right),
                "<": left.ult(right),
                "<=": left.ule(right),
                ">": left.ugt(right),
                ">=": left.uge(right),
            }
            return bv_ite(comparisons[op], bv_const(1, width), bv_const(0, width))
        raise CompilationError(f"unknown expression node {type(expression).__name__}")

    def _condition(self, expression: Expression, versions: dict[str, BitVecTerm]) -> BoolTerm:
        """Translate a branch condition to a Boolean term (truthiness)."""
        width = self.cfg.word_width
        # Peel top-level logical negation so `!c` does not round-trip
        # through a 0/1 word.
        if isinstance(expression, UnOp) and expression.op == "!":
            return bool_not(self._condition(expression.operand, versions))
        if isinstance(expression, BinOp) and expression.op in {
            "==", "!=", "<", "<=", ">", ">=",
        }:
            left = self._translate(expression.left, versions)
            right = self._translate(expression.right, versions)
            return {
                "==": left.eq(right),
                "!=": left.ne(right),
                "<": left.ult(right),
                "<=": left.ule(right),
                ">": left.ugt(right),
                ">=": left.uge(right),
            }[expression.op]
        term = self._translate(expression, versions)
        return term.ne(bv_const(0, width))

    # -- slicing -----------------------------------------------------------------

    def _relevant_variables(self, path: Path) -> set[str]:
        """Variables that (transitively) influence a branch condition on the path."""
        relevant: set[str] = set()
        for edge_index in path.edges:
            condition = self.cfg.edges[edge_index].condition
            if condition is not None:
                relevant |= expression_variables(condition)
        # Walk the path backwards, adding the sources of assignments whose
        # target is already relevant.
        statements: list[Assign] = []
        for node in path.nodes:
            statements.extend(self.cfg.blocks[node].statements)
        changed = True
        while changed:
            changed = False
            for statement in reversed(statements):
                if statement.target in relevant:
                    sources = expression_variables(statement.expression)
                    if not sources <= relevant:
                        relevant |= sources
                        changed = True
        return relevant

    # -- encoding ------------------------------------------------------------------

    def encode(self, path: Path) -> PathEncoding:
        """Build the SSA path constraints for ``path``."""
        width = self.cfg.word_width
        relevant = self._relevant_variables(path) if self.slice_to_conditions else None
        versions: dict[str, BitVecTerm] = {}
        input_variables: dict[str, BvVar] = {}
        for parameter in self.cfg.parameters:
            variable = bv_var(f"{parameter}__0", width)
            versions[parameter] = variable
            input_variables[parameter] = variable
        counters: dict[str, int] = {name: 0 for name in self.cfg.parameters}
        constraints: list[BoolTerm] = []

        def define(target: str, value: BitVecTerm) -> None:
            counters[target] = counters.get(target, 0) + 1
            fresh = bv_var(f"{target}__{counters[target]}", width)
            versions[target] = fresh
            constraints.append(fresh.eq(value))

        position = 0
        for node in path.nodes:
            for statement in self.cfg.blocks[node].statements:
                if relevant is not None and statement.target not in relevant:
                    continue
                define(statement.target, self._translate(statement.expression, versions))
            if position < len(path.edges):
                edge = self.cfg.edges[path.edges[position]]
                position += 1
                if edge.condition is not None:
                    constraints.append(self._condition(edge.condition, versions))
        return PathEncoding(constraints=constraints, input_variables=input_variables)

    # -- queries ---------------------------------------------------------------------

    def feasibility(self, path: Path) -> FeasiblePath | None:
        """Check feasibility of ``path``.

        Returns:
            A :class:`FeasiblePath` with a satisfying test case, or ``None``
            when the path is infeasible.

        Raises:
            BudgetExceededError: when the solver's conflict budget or
                deadline expires before feasibility is decided (an
                undecided path must not be silently reported infeasible).
        """
        self.queries += 1
        encoding = self.encode(path)
        solver = self._solver
        solver.push()
        try:
            solver.add(*encoding.constraints)
            verdict = solver.check()
            if verdict is SmtResult.UNKNOWN:
                raise BudgetExceededError(
                    "path feasibility undecided: solver budget or deadline exhausted"
                )
            if verdict is not SmtResult.SAT:
                return None
            # Resolve just the input variables: the shared blaster knows
            # the SSA variables of every path encoded so far, so full
            # model extraction would grow with the sweep length.
            test_case = {
                name: int(value) if (value := solver.model_value(variable.name)) is not None else 0
                for name, variable in encoding.input_variables.items()
            }
        finally:
            solver.pop()
        return FeasiblePath(path=path, test_case=test_case)

    def is_feasible(self, path: Path) -> bool:
        """Boolean feasibility check (no test case extraction)."""
        return self.feasibility(path) is not None

    def sweep(self, paths) -> list[FeasiblePath | None]:
        """Feasibility-check many independent paths, in parallel lanes.

        The per-path queries are independent given the sealed base scope,
        so their SAT/UNSAT *verdicts* — which are semantic facts about
        the formulas, not about any particular session — are fanned
        round-robin across replica sessions leased from the pool
        (:meth:`~repro.api.pool.SolverLease.replica`), one thread lane
        per replica.  Witness extraction then re-runs
        :meth:`feasibility` for the feasible paths *on the primary
        session, in path order*: the primary session's committed query
        sequence is a pure function of which paths are feasible, never
        of thread timing or lane count, which is what keeps results,
        certificates and per-job statistics deltas byte-identical for
        every ``intra_job_workers`` setting (see ``docs/PARALLELISM.md``).

        The replica structure is used for *every* lane count, including
        one (fan-out threads only appear beyond one lane), so the
        primary session's statistics are lane-invariant by construction.
        Without a pool-backed ``solver_factory`` (standalone builders)
        the sweep degrades to the plain sequential feasibility loop.

        Returns:
            One entry per input path, in path order: a
            :class:`FeasiblePath` witness or ``None`` when infeasible.

        Raises:
            BudgetExceededError: when any path's verdict (or witness
                re-extraction) exhausts the solver budget; the earliest
                undecided path index wins, deterministically.
        """
        paths = list(paths)
        if not paths:
            return []
        factory = self._solver_factory
        if (
            factory is None
            or self._config is None
            or getattr(factory, "replica", None) is None
            or getattr(factory, "base_session", None) is None
        ):
            return [self.feasibility(path) for path in paths]
        from repro.api.intra import partition, resolve_lanes, run_lanes

        lanes = min(
            len(paths),
            resolve_lanes(self._config.intra_job_workers, self._config.pool_size),
        )
        # Encode on the coordinating thread: term construction attributes
        # interned keys to the current (primary job) intern scope, and
        # the encodings are shared read-only by the lanes.
        encodings = [self.encode(path) for path in paths]
        self.queries += len(paths)
        verdicts: list[SmtResult | None] = [None] * len(paths)
        buckets = partition(len(paths), lanes)
        replicas: list[tuple[object, SmtSolver]] = []
        try:
            # Replica leases are acquired — and their base scopes sealed —
            # on the coordinating thread, before any fan-out, so pool and
            # intern-scope bookkeeping never runs concurrently.
            for _ in buckets:
                replica = factory.replica()
                solver, base_ready = replica.base_session(self.fingerprint())
                if not base_ready:
                    replica.seal_base()
                replicas.append((replica, solver))

            def make_worker(bucket: list[int], solver: SmtSolver):
                def worker() -> None:
                    for index in bucket:
                        solver.push()
                        try:
                            solver.add(*encodings[index].constraints)
                            verdicts[index] = solver.check()
                        finally:
                            solver.pop()

                return worker

            run_lanes(
                [
                    make_worker(bucket, solver)
                    for bucket, (_replica, solver) in zip(buckets, replicas)
                ]
            )
        finally:
            # LIFO: replicas were acquired after the primary lease, so
            # they must be released (newest first) before it.
            for replica, _solver in reversed(replicas):
                factory.release_replica(replica)
        for verdict in verdicts:
            if verdict is SmtResult.UNKNOWN:
                raise BudgetExceededError(
                    "path feasibility undecided: solver budget or deadline exhausted"
                )
        results: list[FeasiblePath | None] = []
        feasible = 0
        for index, path in enumerate(paths):
            if verdicts[index] is not SmtResult.SAT:
                results.append(None)
                continue
            witness = self.feasibility(path)
            results.append(witness)
            if witness is not None:
                feasible += 1
        self.sweep_tasks += len(paths)
        self.sweep_feasible += feasible
        count_intra = getattr(factory, "count_intra", None)
        if count_intra is not None:
            count_intra("sweep_tasks", len(paths))
            count_intra("sweep_feasible", feasible)
        return results
