"""Sciduction as a long-lived HTTP service.

The :mod:`repro.api` engine made the three paper applications one
library call; this package makes them one *service*: a stdlib-only HTTP
front end (``http.server``, no new dependencies) over a persistent
:class:`~repro.api.engine.SciductionEngine` with a thread-safe job
queue.  Problems arrive as the same JSON wire-form specs the engine
already speaks, results leave as the same wire-form results — running a
job over HTTP and running it in process produce byte-identical wire
forms (the service-smoke CI job asserts exactly that).

Crash safety (PR 7): configured with a data directory, the service
journals every job lifecycle transition to a checksummed write-ahead log
(:mod:`repro.service.journal`) before acknowledging it and persists
completed results in a content-hashed certificate store
(:mod:`repro.service.certstore`) — a ``kill -9`` loses no accepted job,
and a re-submitted identical spec is answered from disk without an
engine call.  ``max_pending`` bounds admission (429 + ``Retry-After``),
and SIGTERM drains gracefully.

Endpoints (see :mod:`repro.service.server`)::

    POST   /jobs             submit {"problem": {...}, "timeout": ..., ...}
                             (429 + Retry-After when the queue is full,
                              503 while draining or journal-broken)
    GET    /jobs             list job summaries
    GET    /jobs/<id>        job state record; ?wait=<seconds> long-polls
                             until the job is terminal
    GET    /jobs/<id>/result wire-form result (409 while the job is open)
    DELETE /jobs/<id>        cancel a queued job (structured 409 when it
                             is already running or finished)
    GET    /stats            engine + queue + certstore + client counters
    GET    /problems         registered problem kinds
    GET    /healthz          liveness probe (503 when the journal broke)

Run it::

    python -m repro.service --port 8080
    python -m repro.service --port 0 --port-file port.txt   # ephemeral
    python -m repro.service --data-dir state/               # crash-safe
"""

from repro.service.certstore import CertStore, submission_fingerprint
from repro.service.journal import (
    JobJournal,
    JournalError,
    JournalReplay,
    ReplayedJob,
    recover,
)
from repro.service.queue import (
    JobQueue,
    QueueFullError,
    ServiceJob,
    ServiceUnavailableError,
)
from repro.service.server import SciductionService
from repro.service.wire import WireError, parse_job_request

__all__ = [
    "CertStore",
    "JobJournal",
    "JobQueue",
    "JournalError",
    "JournalReplay",
    "QueueFullError",
    "ReplayedJob",
    "SciductionService",
    "ServiceJob",
    "ServiceUnavailableError",
    "WireError",
    "parse_job_request",
    "recover",
    "submission_fingerprint",
]
