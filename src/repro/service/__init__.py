"""Sciduction as a long-lived HTTP service.

The :mod:`repro.api` engine made the three paper applications one
library call; this package makes them one *service*: a stdlib-only HTTP
front end (``http.server``, no new dependencies) over a persistent
:class:`~repro.api.engine.SciductionEngine` with a thread-safe job
queue.  Problems arrive as the same JSON wire-form specs the engine
already speaks, results leave as the same wire-form results — running a
job over HTTP and running it in process produce byte-identical wire
forms (the service-smoke CI job asserts exactly that).

Endpoints (see :mod:`repro.service.server`)::

    POST   /jobs             submit {"problem": {...}, "timeout": ..., ...}
    GET    /jobs             list job summaries
    GET    /jobs/<id>        job state record
    GET    /jobs/<id>/result wire-form result (409 while the job is open)
    DELETE /jobs/<id>        cancel a queued job
    GET    /stats            engine + queue + shared-memo counters
    GET    /problems         registered problem kinds
    GET    /healthz          liveness probe

Run it::

    python -m repro.service --port 8080
    python -m repro.service --port 0 --port-file port.txt   # ephemeral
"""

from repro.service.queue import JobQueue, ServiceJob
from repro.service.server import SciductionService
from repro.service.wire import WireError, parse_job_request

__all__ = [
    "JobQueue",
    "SciductionService",
    "ServiceJob",
    "WireError",
    "parse_job_request",
]
