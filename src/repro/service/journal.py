"""Write-ahead job journal: crash durability for the HTTP service.

Until now a crashed service lost every queued and in-flight job — the
queue was pure memory.  This module closes that hole with the classic
write-ahead shape: every job lifecycle transition is appended to an
fsync'd, checksummed log *before* the service acknowledges it, and a
restarted service replays the log to rebuild its state — finished jobs
come back with their exact wire-form results, accepted-but-unfinished
jobs are re-enqueued and run again.

Record format (one record per line, text)::

    W1 <crc32-hex8> <compact-json-payload>\n

The payload is one of four events (written by
:class:`~repro.service.queue.JobQueue`):

``accepted``   ``{"event": "accepted", "job": id, "request": {...}}``
``started``    ``{"event": "started", "job": id}``
``finished``   ``{"event": "finished", "job": id, "state": ...,
               "result": {...}, "error": ..., "elapsed": ...}``
``shutdown``   ``{"event": "shutdown"}`` — the clean-shutdown marker; a
               replay that ends on it re-enqueues nothing.

Records carry no timestamps — replay must be deterministic, and the
service layer is a clock-free zone (lint rule ``WC01``).

Torn and corrupt tails are expected, not fatal: a ``kill -9`` can land
mid-``write``, so :func:`recover` accepts every record up to the first
unparsable/checksum-failing one, *truncates the file there*, and
discards the rest — the next append continues from a clean boundary.
A record that was never fully fsync'd was never acknowledged to a
client, so truncating it loses nothing that was promised.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.annotations import guarded_by
from repro.core.exceptions import ReproError
from repro.testing.faults import fault_point

#: Record-format magic; bump on any incompatible layout change.
MAGIC = "W1"

#: Lifecycle event names (the queue writes them, :func:`recover` folds them).
EVENT_ACCEPTED = "accepted"
EVENT_STARTED = "started"
EVENT_FINISHED = "finished"
EVENT_SHUTDOWN = "shutdown"


class JournalError(ReproError):
    """The journal could not be written (the service degrades to 503)."""


def encode_record(payload: dict) -> bytes:
    """One serialized journal record (line form, checksum included)."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    raw = body.encode("utf-8")
    return f"{MAGIC} {zlib.crc32(raw):08x} ".encode("ascii") + raw + b"\n"


def decode_record(line: bytes) -> dict | None:
    """Parse one journal line; None when torn or corrupt."""
    if not line.endswith(b"\n"):
        return None  # torn tail: the write never completed
    parts = line[:-1].split(b" ", 2)
    if len(parts) != 3 or parts[0] != MAGIC.encode("ascii"):
        return None
    try:
        checksum = int(parts[1], 16)
    except ValueError:
        return None
    if zlib.crc32(parts[2]) != checksum:
        return None
    try:
        payload = json.loads(parts[2])
    except json.JSONDecodeError:
        return None
    return payload if isinstance(payload, dict) else None


@dataclass
class ReplayedJob:
    """One job reconstructed from the journal."""

    job_id: int
    request: dict
    #: Terminal state name, or None when the job never finished.
    state: str | None = None
    result: dict | None = None
    error: str | None = None
    elapsed: float = 0.0

    @property
    def finished(self) -> bool:
        return self.state is not None


@dataclass
class JournalReplay:
    """Everything :func:`recover` reconstructed from a journal file."""

    #: Jobs with a journaled terminal outcome, by ascending job id.
    finished: list[ReplayedJob] = field(default_factory=list)
    #: Accepted-but-unfinished jobs to re-enqueue, by ascending job id.
    unfinished: list[ReplayedJob] = field(default_factory=list)
    #: First job id a restarted service may hand out.
    next_job_id: int = 1
    #: Whether the journal ends on a clean-shutdown marker.
    clean_shutdown: bool = False
    #: Valid records accepted during replay.
    records: int = 0
    #: Bytes cut off the tail (torn/corrupt records).
    truncated_bytes: int = 0


def recover(path: Path) -> JournalReplay:
    """Replay a journal file, truncating any torn/corrupt tail in place.

    Safe on a missing or empty file (returns an empty replay).  After
    this returns, the file ends on a valid record boundary, so a
    :class:`JobJournal` opened for append continues cleanly.
    """
    replay = JournalReplay()
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return replay
    jobs: dict[int, ReplayedJob] = {}
    good_end = 0
    offset = 0
    clean = False
    while offset < len(data):
        newline = data.find(b"\n", offset)
        line = data[offset:] if newline < 0 else data[offset : newline + 1]
        payload = decode_record(line)
        if payload is None:
            break  # first bad record starts the discarded tail
        offset += len(line)
        good_end = offset
        replay.records += 1
        clean = payload.get("event") == EVENT_SHUTDOWN
        _fold_event(payload, jobs)
    replay.truncated_bytes = len(data) - good_end
    if replay.truncated_bytes:
        with open(path, "r+b") as handle:
            handle.truncate(good_end)
            handle.flush()
            os.fsync(handle.fileno())
    replay.clean_shutdown = clean
    for job_id in sorted(jobs):
        job = jobs[job_id]
        (replay.finished if job.finished else replay.unfinished).append(job)
        replay.next_job_id = max(replay.next_job_id, job_id + 1)
    return replay


def _fold_event(payload: dict, jobs: dict[int, ReplayedJob]) -> None:
    """Fold one valid record into the per-job reconstruction."""
    event = payload.get("event")
    job_id = payload.get("job")
    if not isinstance(job_id, int):
        return  # shutdown marker or unknown record shape
    if event == EVENT_ACCEPTED and isinstance(payload.get("request"), dict):
        jobs[job_id] = ReplayedJob(job_id=job_id, request=payload["request"])
        return
    job = jobs.get(job_id)
    if job is None:
        return  # finished/started for a job whose acceptance was truncated
    if event == EVENT_FINISHED:
        job.state = str(payload.get("state", "failed"))
        result = payload.get("result")
        job.result = result if isinstance(result, dict) else None
        error = payload.get("error")
        job.error = None if error is None else str(error)
        elapsed = payload.get("elapsed", 0.0)
        job.elapsed = float(elapsed) if isinstance(elapsed, (int, float)) else 0.0


@guarded_by("_lock", "_handle", "_broken", "_unsynced", "_appended")
class JobJournal:
    """Append side of the write-ahead journal.

    Args:
        path: journal file (parent directories are created).  Run
            :func:`recover` on the same path *first* — it truncates any
            corrupt tail, so appends land on a record boundary.
        sync_every: fsync cadence in records.  The default of 1 makes
            every acknowledged record durable before the caller
            proceeds; a larger value trades the crash-durability window
            (reported as :meth:`lag`, surfaced by ``/healthz``) for
            fewer fsyncs.

    A failed write or fsync marks the journal *broken*: every later
    append raises immediately, :meth:`writable` turns False, and the
    service degrades (503 on submissions and ``/healthz``) instead of
    silently accepting jobs it cannot make durable.
    """

    def __init__(self, path: Path, sync_every: int = 1) -> None:
        if sync_every < 1:
            raise ValueError("sync_every must be at least 1")
        self.path = Path(path)
        self.sync_every = sync_every
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "ab")
        self._broken: str | None = None
        self._unsynced = 0
        self._appended = 0

    def append(self, payload: dict) -> None:
        """Append one record; durable on return (at ``sync_every=1``).

        Raises:
            JournalError: when the journal is or becomes unwritable.
        """
        record = encode_record(payload)
        with self._lock:
            if self._broken is not None:
                raise JournalError(f"journal is broken: {self._broken}")
            try:
                fault_point("journal.write")
                self._handle.write(record)
                self._handle.flush()
                self._unsynced += 1
                if self._unsynced >= self.sync_every:
                    os.fsync(self._handle.fileno())  # analysis: allow[BLK01] WAL ordering: the ack-before-release contract requires the sync inside the append lock
                    self._unsynced = 0
            except OSError as error:
                self._broken = str(error)
                raise JournalError(
                    f"journal append failed: {error}"
                ) from error
            self._appended += 1

    def sync(self) -> None:
        """Force any batched records to disk now."""
        with self._lock:
            if self._broken is not None or self._unsynced == 0:
                return
            try:
                os.fsync(self._handle.fileno())  # analysis: allow[BLK01] WAL ordering: sync() must not race a concurrent append's write
                self._unsynced = 0
            except OSError as error:
                self._broken = str(error)
                raise JournalError(f"journal fsync failed: {error}") from error

    def lag(self) -> int:
        """Appended-but-unsynced records (0 under ``sync_every=1``)."""
        with self._lock:
            return self._unsynced

    def writable(self) -> bool:
        """Whether appends can still succeed."""
        with self._lock:
            return self._broken is None

    def broken_reason(self) -> str | None:
        """Why the journal degraded, or None while healthy."""
        with self._lock:
            return self._broken

    def appended(self) -> int:
        """Records appended by this handle (not counting replayed ones)."""
        with self._lock:
            return self._appended

    def close(self) -> None:
        """Flush, sync and close the append handle (idempotent)."""
        with self._lock:
            if self._handle.closed:
                return
            try:
                self._handle.flush()
                if self._unsynced:
                    os.fsync(self._handle.fileno())  # analysis: allow[BLK01] WAL ordering: the closing sync must exclude concurrent appends
                    self._unsynced = 0
            except OSError as error:  # pragma: no cover — close best-effort
                self._broken = str(error)
            finally:
                self._handle.close()
