"""Thread-safe job queue + the engine runner thread.

The HTTP handler threads (one per connection under
``ThreadingHTTPServer``) only ever touch the :class:`JobQueue`; a single
:class:`_Runner` thread owns the :class:`~repro.api.engine.SciductionEngine`
and drains the queue into ``run_batch`` calls.  Draining everything
pending into one batch is what hands the engine real batches to
schedule: with ``workers > 1`` the work-stealing scheduler fans a burst
of submissions out over the worker fleet exactly as a library
``run_batch`` would.

Durability (both optional, wired in by
:class:`~repro.service.server.SciductionService` when a data directory
is configured):

* every lifecycle transition is journaled to a write-ahead
  :class:`~repro.service.journal.JobJournal` *before* it is
  acknowledged — acceptance is journaled before the 202 reply, so a
  ``kill -9`` can never lose an accepted job; :meth:`restore` replays a
  recovered journal into the queue on boot;
* completed results are persisted to a content-hashed
  :class:`~repro.service.certstore.CertStore`; a submission whose
  canonical wire form hashes to a stored certificate is answered from
  disk without ever reaching the engine.

Admission control: ``max_pending`` bounds the queue depth — a submission
past the bound is rejected with :class:`QueueFullError` carrying a
``Retry-After`` estimate derived from the observed per-kind latency
histograms, and :meth:`begin_drain` (SIGTERM) flips the queue into
reject-new/finish-in-flight mode.

Cancellation composes the two layers: a job still in the service queue
is cancelled locally; a job already drained into the engine is forwarded
to :meth:`SciductionEngine.cancel`, which can still cancel anything the
scheduler has not dispatched to a worker.
"""

from __future__ import annotations

import itertools
import threading
import time

from dataclasses import dataclass, field

from repro.analysis.annotations import guarded_by, holds
from repro.api.engine import Job, JobState, SciductionEngine
from repro.api.results import result_to_dict
from repro.core.exceptions import ReproError
from repro.core.procedure import SciductionResult
from repro.service.certstore import CertStore, submission_fingerprint
from repro.service.journal import (
    EVENT_ACCEPTED,
    EVENT_FINISHED,
    EVENT_SHUTDOWN,
    EVENT_STARTED,
    JobJournal,
    JournalError,
    JournalReplay,
)
from repro.service.stats import DEPTH_BOUNDS, LATENCY_BOUNDS, Histogram

#: Engine job states surfaced verbatim; PENDING is reported as "queued".
_STATE_NAMES = {
    JobState.PENDING: "queued",
    JobState.RUNNING: "running",
    JobState.COMPLETED: "completed",
    JobState.FAILED: "failed",
    JobState.TIMED_OUT: "timed-out",
    JobState.BUDGET_EXHAUSTED: "budget-exhausted",
    JobState.CANCELLED: "cancelled",
}

#: States in which a job has a result to serve.
_TERMINAL = {"completed", "failed", "timed-out", "budget-exhausted", "cancelled"}

#: Fallback Retry-After (seconds) before any latency data exists.
_DEFAULT_RETRY_AFTER = 5

#: Long-poll wakeup slice: waiters re-check doneness at least this often
#: even without a notification (engine jobs finish inside a batch, which
#: only notifies at harvest time).
_WAIT_SLICE = 0.05


class QueueFullError(ReproError):
    """The pending queue is at ``max_pending``; retry after a backoff."""

    def __init__(self, depth: int, retry_after: int) -> None:
        super().__init__(
            f"queue is full ({depth} jobs pending); retry in ~{retry_after}s"
        )
        self.retry_after = retry_after


class ServiceUnavailableError(ReproError):
    """The service cannot accept jobs (draining, or the journal broke)."""


def _cancelled_wire() -> dict:
    """The wire form the engine produces for a cancelled job (kept
    identical for jobs cancelled before they ever reach the engine)."""
    return result_to_dict(
        SciductionResult(success=False, details={"outcome": "cancelled"})
    )


@dataclass
class ServiceJob:
    """One submitted job as the HTTP surface sees it."""

    job_id: int
    problem: dict
    max_conflicts: int | None = None
    timeout: float | None = None
    label: str | None = None
    client: str | None = None
    #: Cert-store key of the canonical submission (None with no store).
    fingerprint: str | None = field(default=None, repr=False)
    #: Local state ("queued"/"cancelled" before the drain, the final
    #: state after :meth:`_finalize`); while the job lives in the engine,
    #: the engine job is authoritative.
    _local_state: str = field(default="queued", repr=False)
    _local_result: dict | None = field(default=None, repr=False)
    _local_error: str | None = field(default=None, repr=False)
    _local_elapsed: float = field(default=0.0, repr=False)
    _engine_job: Job | None = field(default=None, repr=False)
    #: Guards against double journaling/accounting of the terminal
    #: transition (a cancel can finalize before the batch harvest does).
    _finish_recorded: bool = field(default=False, repr=False)
    #: Whether the result was answered from the certificate store.
    from_certificate: bool = field(default=False, repr=False)

    @property
    def state(self) -> str:
        if self._engine_job is not None:
            return _STATE_NAMES[self._engine_job.state]
        return self._local_state

    @property
    def done(self) -> bool:
        return self.result is not None

    @property
    def result(self) -> dict | None:
        """The wire-form result, or None while the job is open."""
        if self._engine_job is not None:
            if self.state in _TERMINAL:
                # result_wire() may momentarily be None while the runner
                # thread is still folding the outcome; served as not-done.
                return self._engine_job.result_wire()
            return None
        return self._local_result

    @property
    def error(self) -> str | None:
        if self._engine_job is not None:
            return self._engine_job.error
        return self._local_error

    @property
    def elapsed(self) -> float:
        if self._engine_job is not None:
            return self._engine_job.elapsed
        return self._local_elapsed

    def _finalize(self) -> None:
        """Copy the engine job's outcome locally and release the handle.

        Detaching lets the engine :meth:`~SciductionEngine.prune` its
        history — without this, a long-lived service would pin every
        result ever produced in two places.
        """
        engine_job = self._engine_job
        if engine_job is None or not engine_job.done:
            return
        self._local_state = _STATE_NAMES[engine_job.state]
        self._local_result = engine_job.result_wire()
        self._local_error = engine_job.error
        self._local_elapsed = engine_job.elapsed
        self._engine_job = None


@guarded_by(
    "_lock",
    "_jobs", "_pending", "_stopped", "_draining", "_rejected", "_clients",
    "_ids",
    aliases=("_wakeup", "_done"),
)
class JobQueue:
    """Registry + FIFO of service jobs, drained by the runner thread.

    Args:
        engine: the owning engine (driven only by the runner thread).
        max_history: finished jobs retained for ``GET /jobs/<id>`` —
            the oldest finished records are evicted past the bound, so a
            service that runs forever holds bounded memory.  Open jobs
            are never evicted.
        journal: write-ahead journal for lifecycle durability (optional).
        certstore: content-hashed result store (optional).
        max_pending: admission bound on queued-not-yet-drained jobs;
            ``None`` keeps the queue unbounded (the pre-PR-7 behavior).
    """

    def __init__(
        self,
        engine: SciductionEngine,
        max_history: int = 10_000,
        journal: JobJournal | None = None,
        certstore: CertStore | None = None,
        max_pending: int | None = None,
    ) -> None:
        self.engine = engine
        self.max_history = max_history
        self.journal = journal
        self.certstore = certstore
        self.max_pending = max_pending
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        #: Notified whenever any job reaches a terminal state (harvest,
        #: cancellation, cert-store hit); long-polls wait on it.
        self._done = threading.Condition(self._lock)
        self._jobs: dict[int, ServiceJob] = {}
        self._pending: list[ServiceJob] = []
        self._ids = itertools.count(1)
        self._stopped = False
        self._draining = False
        self._rejected = 0
        #: Per-client counters: client → {"submitted"/"completed"/"rejected"}.
        self._clients: dict[str, dict[str, int]] = {}
        #: Queue depth observed at each submission (how far behind the
        #: runner is when work arrives), and per-problem-kind job
        #: latencies harvested from finished batches.  Both are only
        #: touched under ``_lock``.
        self._depth_histogram = Histogram(DEPTH_BOUNDS)
        self._latency_histograms: dict[str, Histogram] = {}
        self._runner = _Runner(self)

    # -- durability plumbing -----------------------------------------------

    def _journal_soft(self, payload: dict) -> None:
        """Append a record, degrading instead of raising.

        Used on the paths that must make progress even with a broken
        journal (harvest, cancellation): the journal marks itself broken
        on the first failure, ``/healthz`` degrades to 503, and new
        submissions are refused — but jobs already accepted still run to
        completion and serve their results from memory.
        """
        if self.journal is None:
            return
        try:
            self.journal.append(payload)
        except JournalError:
            pass

    @holds("_lock")
    def _record_finish(self, job: ServiceJob) -> None:
        """Journal + persist + account one terminal transition (locked).

        Idempotent per job: the first caller (batch harvest or an
        in-engine cancellation) wins.
        """
        if job._finish_recorded:
            return
        job._finish_recorded = True
        state = job.state
        self._journal_soft(
            {
                "event": EVENT_FINISHED,
                "job": job.job_id,
                "state": state,
                "result": job.result,
                "error": job.error,
                "elapsed": job.elapsed,
            }
        )
        if (
            self.certstore is not None
            and job.fingerprint is not None
            and state == "completed"
            and not job.from_certificate
            and job.result is not None
        ):
            self.certstore.put(
                job.fingerprint,
                {
                    "fingerprint": job.fingerprint,
                    "request": {
                        "problem": job.problem,
                        "max_conflicts": job.max_conflicts,
                        "timeout": job.timeout,
                        "label": job.label,
                    },
                    "state": state,
                    "result": job.result,
                    "elapsed": job.elapsed,
                },
            )
        if job.client is not None:
            self._client_counters(job.client)["completed"] += 1
        self._done.notify_all()

    @holds("_lock")
    def _client_counters(self, client: str) -> dict[str, int]:
        counters = self._clients.get(client)
        if counters is None:
            counters = self._clients[client] = {
                "submitted": 0,
                "completed": 0,
                "rejected": 0,
            }
        return counters

    def restore(self, replay: JournalReplay) -> None:
        """Rebuild queue state from a journal replay (call before start).

        Finished jobs come back exactly as journaled — same ids, same
        wire-form results.  Accepted-but-unfinished jobs are re-enqueued
        for the runner in id order; after a *clean* shutdown there are
        none and the replay is a no-op beyond restoring history.
        """
        with self._wakeup:
            self._ids = itertools.count(replay.next_job_id)
            for replayed in replay.finished:
                job = self._job_from_request(replayed.job_id, replayed.request)
                job._local_state = (
                    replayed.state if replayed.state in _TERMINAL else "failed"
                )
                job._local_result = replayed.result
                job._local_error = replayed.error
                job._local_elapsed = replayed.elapsed
                job._finish_recorded = True
                self._jobs[job.job_id] = job
            for replayed in replay.unfinished:
                job = self._job_from_request(replayed.job_id, replayed.request)
                self._jobs[job.job_id] = job
                self._pending.append(job)
            if self._pending:
                self._wakeup.notify_all()

    def _job_from_request(self, job_id: int, request: dict) -> ServiceJob:
        return ServiceJob(
            job_id=job_id,
            problem=request.get("problem", {}),
            max_conflicts=request.get("max_conflicts"),
            timeout=request.get("timeout"),
            label=request.get("label"),
            client=request.get("client"),
            fingerprint=(
                submission_fingerprint(request)
                if self.certstore is not None
                else None
            ),
        )

    # -- HTTP-side API -----------------------------------------------------

    def submit(self, request: dict) -> ServiceJob:
        """Enqueue a validated job request (see
        :func:`repro.service.wire.parse_job_request`).

        Raises:
            ServiceUnavailableError: shutting down, draining, or the
                journal can no longer make acceptance durable (503).
            QueueFullError: the pending queue is at ``max_pending``
                (429, with a Retry-After estimate).
        """
        with self._wakeup:
            if self._stopped or self._draining:
                raise ServiceUnavailableError("service is shutting down")
            if self.journal is not None and not self.journal.writable():
                raise ServiceUnavailableError(
                    "job journal is unwritable; refusing new work"
                )
            client = request.get("client")
            if (
                self.max_pending is not None
                and len(self._pending) >= self.max_pending
            ):
                self._rejected += 1
                if client is not None:
                    self._client_counters(client)["rejected"] += 1
                raise QueueFullError(
                    len(self._pending), self._retry_after_estimate()
                )
            job = ServiceJob(
                job_id=next(self._ids),
                problem=request["problem"],
                max_conflicts=request["max_conflicts"],
                timeout=request["timeout"],
                label=request["label"],
                client=client,
            )
            cert: dict | None = None
            if self.certstore is not None:
                job.fingerprint = submission_fingerprint(request)
                cert = self.certstore.get(job.fingerprint)
            # Durability barrier: acceptance reaches the disk before the
            # job is registered (and before the HTTP 202 goes out).  A
            # failed append raises — the client gets a 503, and no
            # un-journaled job can exist.
            if self.journal is not None:
                try:
                    self.journal.append(
                        {
                            "event": EVENT_ACCEPTED,
                            "job": job.job_id,
                            "request": {
                                "problem": job.problem,
                                "max_conflicts": job.max_conflicts,
                                "timeout": job.timeout,
                                "label": job.label,
                                "client": job.client,
                            },
                        }
                    )
                except JournalError as error:
                    raise ServiceUnavailableError(
                        f"cannot make acceptance durable: {error}"
                    ) from error
            self._jobs[job.job_id] = job
            if client is not None:
                self._client_counters(client)["submitted"] += 1
            if cert is not None:
                # Served from the certificate store: terminal on arrival,
                # the engine never sees it.  The journal still records a
                # finish so a restart replays it as history, not work.
                job.from_certificate = True
                job._local_state = str(cert.get("state", "completed"))
                result = cert.get("result")
                job._local_result = result if isinstance(result, dict) else None
                job._local_elapsed = 0.0
                self._record_finish(job)
                return job
            self._pending.append(job)
            self._depth_histogram.observe(len(self._pending))
            self._wakeup.notify_all()
            return job

    def get(self, job_id: int) -> ServiceJob | None:
        with self._lock:
            return self._jobs.get(job_id)

    def wait_for_done(
        self, job_id: int, timeout: float
    ) -> ServiceJob | None:
        """Long-poll: block until the job is terminal or ``timeout`` passes.

        Returns the job either way (the caller inspects ``done``); None
        for an unknown id.  Waiters are notified on harvest,
        cancellation and cert-store hits, and additionally re-check at a
        small slice so completions inside a still-running batch are
        observed promptly.
        """
        deadline = time.monotonic() + timeout  # analysis: allow[WC01] long-poll deadline anchor; bounds one HTTP request, never a solver input
        with self._done:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            while not job.done:
                remaining = deadline - time.monotonic()  # analysis: allow[WC01] long-poll deadline probe; bounds one HTTP request, never a solver input
                if remaining <= 0:
                    break
                self._done.wait(min(remaining, _WAIT_SLICE))
            return job

    def jobs(self) -> list[ServiceJob]:
        with self._lock:
            return [self._jobs[job_id] for job_id in sorted(self._jobs)]

    def cancel(self, job_id: int) -> str | None:
        """Cancel a job, reporting what actually happened.

        Returns ``"cancelled"`` when the cancellation took *now*,
        ``"running"`` when the job is already executing,
        ``"finished:<state>"`` when the job was already terminal (a
        structured 409 — nothing is journaled, the recorded outcome
        stands), or None for an unknown id.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            state = job.state
            if state in _TERMINAL:
                return f"finished:{state}"
            if job._engine_job is not None:
                if self.engine.cancel(job._engine_job):
                    # The engine marked it cancelled synchronously; fold
                    # the outcome now so the journal and long-pollers see
                    # it without waiting for the batch harvest.
                    job._finalize()
                    self._record_finish(job)
                    return "cancelled"
                if job._engine_job is not None and job._engine_job.done:
                    return f"finished:{job.state}"
                return "running"
            if state != "queued":  # pragma: no cover — defensive
                return state
            job._local_state = "cancelled"
            job._local_result = _cancelled_wire()
            try:
                self._pending.remove(job)
            except ValueError:  # pragma: no cover — drained concurrently
                pass
            self._record_finish(job)
            return "cancelled"

    def counts(self) -> dict:
        """Per-state job counts (for ``/stats``)."""
        with self._lock:
            jobs = list(self._jobs.values())
        counts: dict[str, int] = {}
        for job in jobs:
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def histograms(self) -> dict:
        """Queue-depth and per-kind latency histograms (for ``/stats``)."""
        with self._lock:
            return {
                "queue_depth": self._depth_histogram.as_dict(),
                "job_latency": {
                    kind: histogram.as_dict()
                    for kind, histogram in sorted(
                        self._latency_histograms.items()
                    )
                },
            }

    def admission(self) -> dict:
        """Admission-control state (for ``/stats``)."""
        with self._lock:
            return {
                "max_pending": self.max_pending,
                "pending": len(self._pending),
                "rejected": self._rejected,
                "draining": self._draining,
                "retry_after_estimate": self._retry_after_estimate(),
            }

    def clients(self) -> dict:
        """Per-client accounting snapshot (for ``/stats``)."""
        with self._lock:
            return {
                client: dict(counters)
                for client, counters in sorted(self._clients.items())
            }

    def _retry_after_estimate(self) -> int:
        """Seconds a rejected client should wait, from observed latency.

        Mean harvested job latency times the current backlog, clamped to
        [1, 120]; before any job finished, a small fixed default.  Callers
        hold ``_lock``.
        """
        total_count = 0
        total_sum = 0.0
        for kind in sorted(self._latency_histograms):
            histogram = self._latency_histograms[kind]
            total_count += histogram.count
            total_sum += histogram.total
        if total_count == 0:
            return _DEFAULT_RETRY_AFTER
        mean = total_sum / total_count
        estimate = mean * max(1, len(self._pending))
        return max(1, min(120, int(estimate) + 1))

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._runner.start()

    def begin_drain(self) -> None:
        """Stop accepting new jobs; everything queued still runs."""
        with self._wakeup:
            self._draining = True
            self._wakeup.notify_all()

    def stop(self, timeout: float | None = 10.0) -> None:
        """Stop the runner thread (pending jobs are finished first).

        The runner loop keeps draining until the pending queue is empty,
        so a stop is a graceful drain of everything already accepted.
        Once the runner is down with nothing left, a clean-shutdown
        marker is journaled — a replay of this journal re-enqueues
        nothing.
        """
        with self._wakeup:
            self._stopped = True
            self._wakeup.notify_all()
        if self._runner.is_alive():
            self._runner.join(timeout=timeout)
        with self._lock:
            all_done = not self._pending and not self._runner.is_alive()
        if all_done:
            self._journal_soft({"event": EVENT_SHUTDOWN})

    # -- runner side -------------------------------------------------------

    def _drain(self) -> list[ServiceJob]:
        """Move every pending job into the engine (runner thread only).

        Blocks until at least one job is pending or the queue stops.
        """
        with self._wakeup:
            while not self._pending and not self._stopped:
                self._wakeup.wait()  # analysis: allow[BLK01] parked runner: wait() releases the lock while blocked; submit()/stop() notify_all
            drained = self._pending[:]
            self._pending.clear()
            for job in drained:
                job._engine_job = self.engine.submit(
                    job.problem,
                    max_conflicts=job.max_conflicts,
                    timeout=job.timeout,
                    label=job.label,
                )
                self._journal_soft(
                    {"event": EVENT_STARTED, "job": job.job_id}
                )
            return drained

    def _harvest(self, drained: list[ServiceJob]) -> None:
        """Fold a finished batch back and bound retained memory
        (runner thread only): finished jobs keep a local copy of their
        wire-form outcome, the engine forgets its handles, terminal
        transitions are journaled and completed results persisted to the
        cert store, and the oldest finished service records past
        ``max_history`` are evicted."""
        with self._lock:
            for job in drained:
                job._finalize()
                kind = str(job.problem.get("kind", "unknown"))
                histogram = self._latency_histograms.get(kind)
                if histogram is None:
                    histogram = self._latency_histograms[kind] = Histogram(
                        LATENCY_BOUNDS
                    )
                histogram.observe(job.elapsed)
                self._record_finish(job)
            self.engine.prune()
            if len(self._jobs) > self.max_history:
                for job_id in sorted(self._jobs):
                    if len(self._jobs) <= self.max_history:
                        break
                    if self._jobs[job_id]._engine_job is None and self._jobs[
                        job_id
                    ].state != "queued":
                        del self._jobs[job_id]


class _Runner(threading.Thread):
    """The single thread that owns the engine and runs the batches."""

    def __init__(self, queue: JobQueue) -> None:
        super().__init__(name="sciduction-runner", daemon=True)
        self._queue = queue

    def run(self) -> None:
        while True:
            drained = self._queue._drain()
            if drained:
                self._queue.engine.run_batch()
                self._queue._harvest(drained)
            elif self._queue._stopped:
                return
