"""Thread-safe job queue + the engine runner thread.

The HTTP handler threads (one per connection under
``ThreadingHTTPServer``) only ever touch the :class:`JobQueue`; a single
:class:`_Runner` thread owns the :class:`~repro.api.engine.SciductionEngine`
and drains the queue into ``run_batch`` calls.  Draining everything
pending into one batch is what hands the engine real batches to
schedule: with ``workers > 1`` the work-stealing scheduler fans a burst
of submissions out over the worker fleet exactly as a library
``run_batch`` would.

Cancellation composes the two layers: a job still in the service queue
is cancelled locally; a job already drained into the engine is forwarded
to :meth:`SciductionEngine.cancel`, which can still cancel anything the
scheduler has not dispatched to a worker.
"""

from __future__ import annotations

import itertools
import threading

from dataclasses import dataclass, field

from repro.analysis.annotations import guarded_by
from repro.api.engine import Job, JobState, SciductionEngine
from repro.api.results import result_to_dict
from repro.core.procedure import SciductionResult
from repro.service.stats import DEPTH_BOUNDS, LATENCY_BOUNDS, Histogram

#: Engine job states surfaced verbatim; PENDING is reported as "queued".
_STATE_NAMES = {
    JobState.PENDING: "queued",
    JobState.RUNNING: "running",
    JobState.COMPLETED: "completed",
    JobState.FAILED: "failed",
    JobState.TIMED_OUT: "timed-out",
    JobState.BUDGET_EXHAUSTED: "budget-exhausted",
    JobState.CANCELLED: "cancelled",
}

#: States in which a job has a result to serve.
_TERMINAL = {"completed", "failed", "timed-out", "budget-exhausted", "cancelled"}


def _cancelled_wire() -> dict:
    """The wire form the engine produces for a cancelled job (kept
    identical for jobs cancelled before they ever reach the engine)."""
    return result_to_dict(
        SciductionResult(success=False, details={"outcome": "cancelled"})
    )


@dataclass
class ServiceJob:
    """One submitted job as the HTTP surface sees it."""

    job_id: int
    problem: dict
    max_conflicts: int | None = None
    timeout: float | None = None
    label: str | None = None
    #: Local state ("queued"/"cancelled" before the drain, the final
    #: state after :meth:`_finalize`); while the job lives in the engine,
    #: the engine job is authoritative.
    _local_state: str = field(default="queued", repr=False)
    _local_result: dict | None = field(default=None, repr=False)
    _local_error: str | None = field(default=None, repr=False)
    _local_elapsed: float = field(default=0.0, repr=False)
    _engine_job: Job | None = field(default=None, repr=False)

    @property
    def state(self) -> str:
        if self._engine_job is not None:
            return _STATE_NAMES[self._engine_job.state]
        return self._local_state

    @property
    def done(self) -> bool:
        return self.result is not None

    @property
    def result(self) -> dict | None:
        """The wire-form result, or None while the job is open."""
        if self._engine_job is not None:
            if self.state in _TERMINAL:
                # result_wire() may momentarily be None while the runner
                # thread is still folding the outcome; served as not-done.
                return self._engine_job.result_wire()
            return None
        return self._local_result

    @property
    def error(self) -> str | None:
        if self._engine_job is not None:
            return self._engine_job.error
        return self._local_error

    @property
    def elapsed(self) -> float:
        if self._engine_job is not None:
            return self._engine_job.elapsed
        return self._local_elapsed

    def _finalize(self) -> None:
        """Copy the engine job's outcome locally and release the handle.

        Detaching lets the engine :meth:`~SciductionEngine.prune` its
        history — without this, a long-lived service would pin every
        result ever produced in two places.
        """
        engine_job = self._engine_job
        if engine_job is None or not engine_job.done:
            return
        self._local_state = _STATE_NAMES[engine_job.state]
        self._local_result = engine_job.result_wire()
        self._local_error = engine_job.error
        self._local_elapsed = engine_job.elapsed
        self._engine_job = None


@guarded_by("_lock", "_jobs", "_pending", "_stopped", aliases=("_wakeup",))
class JobQueue:
    """Registry + FIFO of service jobs, drained by the runner thread.

    Args:
        engine: the owning engine (driven only by the runner thread).
        max_history: finished jobs retained for ``GET /jobs/<id>`` —
            the oldest finished records are evicted past the bound, so a
            service that runs forever holds bounded memory.  Open jobs
            are never evicted.
    """

    def __init__(self, engine: SciductionEngine, max_history: int = 10_000) -> None:
        self.engine = engine
        self.max_history = max_history
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._jobs: dict[int, ServiceJob] = {}
        self._pending: list[ServiceJob] = []
        self._ids = itertools.count(1)
        self._stopped = False
        #: Queue depth observed at each submission (how far behind the
        #: runner is when work arrives), and per-problem-kind job
        #: latencies harvested from finished batches.  Both are only
        #: touched under ``_lock``.
        self._depth_histogram = Histogram(DEPTH_BOUNDS)
        self._latency_histograms: dict[str, Histogram] = {}
        self._runner = _Runner(self)

    # -- HTTP-side API -----------------------------------------------------

    def submit(self, request: dict) -> ServiceJob:
        """Enqueue a validated job request (see
        :func:`repro.service.wire.parse_job_request`)."""
        with self._wakeup:
            if self._stopped:
                raise RuntimeError("service is shutting down")
            job = ServiceJob(
                job_id=next(self._ids),
                problem=request["problem"],
                max_conflicts=request["max_conflicts"],
                timeout=request["timeout"],
                label=request["label"],
            )
            self._jobs[job.job_id] = job
            self._pending.append(job)
            self._depth_histogram.observe(len(self._pending))
            self._wakeup.notify_all()
            return job

    def get(self, job_id: int) -> ServiceJob | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[ServiceJob]:
        with self._lock:
            return [self._jobs[job_id] for job_id in sorted(self._jobs)]

    def cancel(self, job_id: int) -> bool | None:
        """Cancel a queued job.

        Returns True when the cancellation took, False when the job is
        already running or finished, None for an unknown id.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job._engine_job is not None:
                return self.engine.cancel(job._engine_job)
            if job._local_state != "queued":
                return False
            job._local_state = "cancelled"
            job._local_result = _cancelled_wire()
            try:
                self._pending.remove(job)
            except ValueError:  # pragma: no cover — drained concurrently
                pass
            return True

    def counts(self) -> dict:
        """Per-state job counts (for ``/stats``)."""
        with self._lock:
            jobs = list(self._jobs.values())
        counts: dict[str, int] = {}
        for job in jobs:
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def histograms(self) -> dict:
        """Queue-depth and per-kind latency histograms (for ``/stats``)."""
        with self._lock:
            return {
                "queue_depth": self._depth_histogram.as_dict(),
                "job_latency": {
                    kind: histogram.as_dict()
                    for kind, histogram in sorted(
                        self._latency_histograms.items()
                    )
                },
            }

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._runner.start()

    def stop(self, timeout: float | None = 10.0) -> None:
        """Stop the runner thread (the in-flight batch is finished first)."""
        with self._wakeup:
            self._stopped = True
            self._wakeup.notify_all()
        if self._runner.is_alive():
            self._runner.join(timeout=timeout)

    # -- runner side -------------------------------------------------------

    def _drain(self) -> list[ServiceJob]:
        """Move every pending job into the engine (runner thread only).

        Blocks until at least one job is pending or the queue stops.
        """
        with self._wakeup:
            while not self._pending and not self._stopped:
                self._wakeup.wait()
            drained = self._pending[:]
            self._pending.clear()
            for job in drained:
                job._engine_job = self.engine.submit(
                    job.problem,
                    max_conflicts=job.max_conflicts,
                    timeout=job.timeout,
                    label=job.label,
                )
            return drained

    def _harvest(self, drained: list[ServiceJob]) -> None:
        """Fold a finished batch back and bound retained memory
        (runner thread only): finished jobs keep a local copy of their
        wire-form outcome, the engine forgets its handles, and the
        oldest finished service records past ``max_history`` are
        evicted."""
        with self._lock:
            for job in drained:
                job._finalize()
                kind = str(job.problem.get("kind", "unknown"))
                histogram = self._latency_histograms.get(kind)
                if histogram is None:
                    histogram = self._latency_histograms[kind] = Histogram(
                        LATENCY_BOUNDS
                    )
                histogram.observe(job.elapsed)
            self.engine.prune()
            if len(self._jobs) > self.max_history:
                for job_id in sorted(self._jobs):
                    if len(self._jobs) <= self.max_history:
                        break
                    if self._jobs[job_id]._engine_job is None and self._jobs[
                        job_id
                    ].state != "queued":
                        del self._jobs[job_id]


class _Runner(threading.Thread):
    """The single thread that owns the engine and runs the batches."""

    def __init__(self, queue: JobQueue) -> None:
        super().__init__(name="sciduction-runner", daemon=True)
        self._queue = queue

    def run(self) -> None:
        while True:
            drained = self._queue._drain()
            if drained:
                self._queue.engine.run_batch()
                self._queue._harvest(drained)
            elif self._queue._stopped:
                return
