"""The HTTP front end: stdlib ``ThreadingHTTPServer`` over the engine.

No frameworks, no new dependencies: request routing is a handful of
regular expressions, bodies are ``json`` both ways, concurrency is one
handler thread per connection (the handlers only touch the thread-safe
:class:`~repro.service.queue.JobQueue`; the engine itself is driven by
the queue's single runner thread).

Crash safety (PR 7): pass ``data_dir`` and the service opens a
write-ahead :class:`~repro.service.journal.JobJournal` plus a
content-hashed :class:`~repro.service.certstore.CertStore` under it,
replaying any existing journal *before* serving — accepted jobs survive
``kill -9``.  ``max_pending`` adds admission control (429 with
``Retry-After``), ``GET /jobs/<id>?wait=N`` long-polls, and
``/healthz`` degrades to 503 when the journal can no longer accept
writes.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import TYPE_CHECKING, Any
from urllib.parse import parse_qs

if TYPE_CHECKING:  # type-only: the cluster layer imports this module
    from repro.cluster.auth import TokenSet

from repro.api.config import EngineConfig
from repro.api.engine import SciductionEngine
from repro.api.problems import problem_types
from repro.service.certstore import CertStore
from repro.service.journal import JobJournal, JournalReplay, recover
from repro.service.queue import (
    JobQueue,
    QueueFullError,
    ServiceJob,
    ServiceUnavailableError,
)
from repro.service.wire import (
    WireError,
    error_wire,
    job_record_wire,
    job_summary_wire,
    parse_job_request,
)

_JOB_PATH = re.compile(r"^/jobs/(\d+)$")
_RESULT_PATH = re.compile(r"^/jobs/(\d+)/result$")

#: Request bodies above this size are rejected (the wire forms the
#: service accepts are small; this bounds memory per connection).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Upper bound on one ``?wait=`` long-poll, seconds.  Clients wanting
#: longer just re-issue the request — bounding one hold keeps handler
#: threads from pinning forever on abandoned connections.
MAX_WAIT_SECONDS = 60.0


class _Handler(BaseHTTPRequestHandler):
    """Routes one HTTP request to the owning :class:`SciductionService`."""

    #: Injected by :meth:`SciductionService._handler_class`.
    service: "SciductionService"

    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def _body_length(self) -> int:
        raw = self.headers.get("Content-Length")
        if raw is None:
            return 0
        try:
            length = int(raw)
        except ValueError:
            # A client protocol error, not a server fault — and the body
            # size is unknowable, so the connection cannot be reused.
            self.close_connection = True
            raise WireError(f"invalid Content-Length header {raw!r}") from None
        return max(0, length)

    def _drain_body(self) -> None:
        """Discard an unread request body before replying.

        Under HTTP/1.1 keep-alive the connection is reused for the next
        request; replying without consuming the body would leave it in
        the stream, where it gets parsed as the next request line.
        Oversized bodies are not worth draining — the connection is
        closed instead.
        """
        try:
            remaining = self._body_length()
        except WireError:
            return  # close_connection already set
        if not remaining:
            return
        if remaining > MAX_BODY_BYTES:
            self.close_connection = True
            return
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 65536))
            if not chunk:
                break
            remaining -= len(chunk)

    def _reply(
        self,
        status: int,
        payload: dict | list,
        headers: dict[str, str] | None = None,
    ) -> None:
        if not self._body_consumed:
            self._drain_body()
            self._body_consumed = True
        # Canonical key order: a result served from the engine, the
        # certificate store and a journal replay must be byte-identical
        # on the wire, and the stores round-trip through sorted JSON.
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _fail(self, status: int, message: str) -> None:
        self._reply(status, error_wire(message, status))

    def _read_json(self) -> Any:
        length = self._body_length()
        self._body_consumed = True
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            raise WireError("request body too large", status=413)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise WireError("request body required")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise WireError(f"invalid JSON body: {error}") from error

    def handle_one_request(self) -> None:  # noqa: D102 — http.server API
        self._body_consumed = False
        super().handle_one_request()

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.service.quiet:
            super().log_message(format, *args)

    def _authenticate(self, route: str) -> tuple[bool, str | None]:
        """Bearer-token gate: ``(allowed, authenticated identity)``.

        With no token set configured every caller is allowed and
        anonymous.  With one configured, every route except ``/healthz``
        (load balancers probe it unauthenticated) requires
        ``Authorization: Bearer <token>``; a missing or wrong token is
        answered here with a structured 401 + ``WWW-Authenticate``.
        """
        tokens = self.service.auth
        if tokens is None or not tokens.required() or route == "/healthz":
            return True, None
        header = self.headers.get("Authorization", "")
        presented = header[7:] if header.startswith("Bearer ") else None
        identity = tokens.identify(presented)
        if identity is None:
            self._reply(
                401,
                error_wire("authentication required", 401),
                headers={"WWW-Authenticate": 'Bearer realm="sciduction"'},
            )
            return False, None
        return True, identity

    def _job_or_404(self, job_id: str) -> "ServiceJob | None":
        job = self.service.queue.get(int(job_id))
        if job is None:
            self._fail(404, f"unknown job id {job_id}")
        return job

    @staticmethod
    def _split_query(path: str) -> tuple[str, dict[str, list[str]]]:
        route, _, query = path.partition("?")
        return route, parse_qs(query) if query else {}

    @staticmethod
    def _wait_seconds(query: dict[str, list[str]]) -> float:
        """Parse ``?wait=`` into a clamped number of seconds (0 = no wait)."""
        values = query.get("wait")
        if not values:
            return 0.0
        try:
            wait = float(values[-1])
        except ValueError:
            raise WireError(f"'wait' must be a number, got {values[-1]!r}") from None
        if wait < 0:
            raise WireError(f"'wait' must be non-negative, got {wait}")
        return min(wait, MAX_WAIT_SECONDS)

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        try:
            route, query = self._split_query(self.path)
            allowed, _identity = self._authenticate(route)
            if not allowed:
                return
            if route == "/healthz":
                status, payload = self.service.health()
                self._reply(status, payload)
                return
            if route == "/stats":
                self._reply(200, self.service.stats())
                return
            if route == "/problems":
                self._reply(200, {"kinds": sorted(problem_types())})
                return
            if route == "/jobs":
                self._reply(
                    200,
                    {"jobs": [job_summary_wire(job) for job in self.service.queue.jobs()]},
                )
                return
            match = _JOB_PATH.match(route)
            if match:
                wait = self._wait_seconds(query)
                if wait > 0:
                    job = self.service.queue.wait_for_done(
                        int(match.group(1)), wait
                    )
                    if job is None:
                        self._fail(404, f"unknown job id {match.group(1)}")
                    else:
                        self._reply(200, job_record_wire(job))
                    return
                job = self._job_or_404(match.group(1))
                if job is not None:
                    self._reply(200, job_record_wire(job))
                return
            match = _RESULT_PATH.match(route)
            if match:
                job = self._job_or_404(match.group(1))
                if job is None:
                    return
                result = job.result
                if result is None:
                    self._fail(409, f"job {job.job_id} is {job.state}; no result yet")
                    return
                self._reply(200, result)
                return
            self._fail(404, f"unknown path {self.path}")
        except WireError as error:
            self._fail(error.status, str(error))
        except Exception as error:  # noqa: BLE001 — a handler must answer
            self._fail(500, f"internal error: {error}")

    def do_POST(self) -> None:  # noqa: N802
        try:
            allowed, identity = self._authenticate(self.path)
            if not allowed:
                return
            if self.path != "/jobs":
                self._fail(404, f"unknown path {self.path}")
                return
            request = parse_job_request(self._read_json())
            if identity is not None:
                # Per-client accounting keys on who *authenticated*, not
                # on whatever tag the request body claims.
                request["client"] = identity
            job = self.service.queue.submit(request)
            self._reply(
                202,
                {
                    "job_id": job.job_id,
                    "state": job.state,
                    "location": f"/jobs/{job.job_id}",
                    "from_certificate": job.from_certificate,
                },
            )
        except QueueFullError as error:
            self._reply(
                429,
                error_wire(str(error), 429, retry_after=error.retry_after),
                headers={"Retry-After": str(error.retry_after)},
            )
        except ServiceUnavailableError as error:
            self._fail(503, str(error))
        except WireError as error:
            self._fail(error.status, str(error))
        except Exception as error:  # noqa: BLE001
            self._fail(500, f"internal error: {error}")

    def do_DELETE(self) -> None:  # noqa: N802
        try:
            allowed, _identity = self._authenticate(self.path)
            if not allowed:
                return
            match = _JOB_PATH.match(self.path)
            if not match:
                self._fail(404, f"unknown path {self.path}")
                return
            outcome = self.service.queue.cancel(int(match.group(1)))
            if outcome is None:
                self._fail(404, f"unknown job id {match.group(1)}")
                return
            if outcome == "cancelled":
                self._reply(200, {"cancelled": True})
                return
            if outcome == "running":
                self._reply(
                    409,
                    error_wire(
                        "job is already running and cannot be cancelled",
                        409,
                        state=outcome,
                        cancelled=False,
                    ),
                )
                return
            # Terminal state: cancellation is meaningless, nothing is
            # journaled, and the client learns what actually happened.
            state = outcome.partition(":")[2]
            self._reply(
                409,
                error_wire(
                    f"job already finished as {state!r}",
                    409,
                    state=state,
                    cancelled=False,
                ),
            )
        except Exception as error:  # noqa: BLE001
            self._fail(500, f"internal error: {error}")


class SciductionService:
    """Engine + queue + HTTP server, composed for one process.

    Args:
        config: engine configuration (``workers > 1`` fans service
            batches over the parallel scheduler).
        host: bind address (loopback by default — the service speaks
            plaintext HTTP and has no auth story yet; see ROADMAP).
        port: bind port; 0 asks the OS for an ephemeral one (read it
            back from :attr:`port`).
        quiet: silence per-request access logs.
        data_dir: enable durability — the job journal lives at
            ``<data_dir>/journal.wal`` and the certificate store under
            ``<data_dir>/certs``.  Any existing journal is replayed
            before the server binds, restoring finished results and
            re-enqueueing accepted-but-unfinished jobs (the replay
            summary is exposed as :attr:`replay`).  ``None`` (default)
            keeps the pre-PR-7 in-memory behavior.
        max_pending: admission bound forwarded to the queue (429 past it).
        journal_sync_every: fsync cadence forwarded to the journal.
        engine: inject a pre-built engine (the cluster coordinator hands
            in a :class:`~repro.cluster.coordinator.ClusterEngine`);
            ``config`` is ignored when given — the engine's own config
            governs.
        auth: bearer-token set (see :mod:`repro.cluster.auth`); when it
            requires auth, every route except ``/healthz`` answers 401
            to callers without a valid token, and per-client accounting
            keys on the authenticated identity.
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        quiet: bool = False,
        data_dir: Path | str | None = None,
        max_pending: int | None = None,
        journal_sync_every: int = 1,
        engine: SciductionEngine | None = None,
        auth: "TokenSet | None" = None,
    ) -> None:
        self.engine = engine if engine is not None else SciductionEngine(config)
        self.auth = auth
        self.journal: JobJournal | None = None
        self.certstore: CertStore | None = None
        self.replay: JournalReplay | None = None
        if data_dir is not None:
            root = Path(data_dir)
            journal_path = root / "journal.wal"
            # Replay first: recover() truncates any torn tail in place,
            # so the append handle opens onto a clean record boundary.
            self.replay = recover(journal_path)
            self.journal = JobJournal(journal_path, sync_every=journal_sync_every)
            self.certstore = CertStore(root / "certs")
        self.queue = JobQueue(
            self.engine,
            journal=self.journal,
            certstore=self.certstore,
            max_pending=max_pending,
        )
        if self.replay is not None:
            self.queue.restore(self.replay)
        self.quiet = quiet
        handler = type("BoundHandler", (_Handler,), {"service": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._server_thread: threading.Thread | None = None
        self._serving = False
        self._shutdown_lock = threading.Lock()
        self._shutdown_done = False

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The actually bound port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stats(self) -> dict:
        """The ``/stats`` payload: queue counts, depth/latency histograms,
        engine-wide counters, and (PR 7) certificate-store counters,
        per-client accounting and admission-control state.

        ``queue`` stays the flat per-state count mapping (clients key on
        it); the histograms ride along as separate top-level keys:
        ``queue_depth`` (pending depth observed at each submission) and
        ``job_latency`` (per-problem-kind seconds, from harvested jobs).
        """
        payload = {
            "queue": self.queue.counts(),
            "engine": self.engine.statistics(),
            "config": self.engine.config.to_dict(),
            "admission": self.queue.admission(),
            "clients": self.queue.clients(),
            "auth": {
                "required": bool(self.auth is not None and self.auth.required())
            },
        }
        if self.certstore is not None:
            payload["certstore"] = self.certstore.statistics()
        # A cluster engine contributes topology, failover history and
        # memo-service counters (duck-typed so this module stays free of
        # a runtime dependency on the cluster layer).
        cluster_statistics = getattr(self.engine, "cluster_statistics", None)
        if callable(cluster_statistics):
            payload["cluster"] = cluster_statistics()
        payload.update(self.queue.histograms())
        return payload

    def health(self) -> tuple[int, dict]:
        """The ``/healthz`` status code and payload.

        Healthy is 200.  A journal that can no longer accept writes
        means new work cannot be made durable — that is a 503, so load
        balancers stop routing submissions here.  A degraded cert store
        stays 200 (it is an optimization, not a promise) but is
        reported.
        """
        payload: dict = {"status": "ok"}
        status = 200
        if self.journal is not None:
            journal_health = {
                "enabled": True,
                "writable": self.journal.writable(),
                "lag_records": self.journal.lag(),
            }
            reason = self.journal.broken_reason()
            if reason is not None:
                journal_health["reason"] = reason
            payload["journal"] = journal_health
            if not self.journal.writable():
                status = 503
                payload["status"] = "degraded"
        else:
            payload["journal"] = {"enabled": False}
        if self.certstore is not None:
            payload["certstore"] = {
                "enabled": True,
                "available": self.certstore.available(),
            }
            if not self.certstore.available():
                payload["status"] = "degraded"
        else:
            payload["certstore"] = {"enabled": False}
        return status, payload

    def start(self) -> None:
        """Start the runner thread and serve HTTP in the background."""
        # Fork the worker fleet while this process is still
        # single-threaded — forking under live handler threads is unsafe.
        self.engine.prestart_workers()
        self.queue.start()
        self._serving = True
        self._server_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="sciduction-http",
            daemon=True,
        )
        self._server_thread.start()

    def serve_forever(self) -> None:
        """Start the runner thread and serve HTTP on the calling thread."""
        self.engine.prestart_workers()
        self.queue.start()
        self._serving = True
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Graceful drain: refuse new jobs, finish everything accepted,
        journal a clean-shutdown marker, release workers.  Idempotent —
        a SIGTERM racing an atexit call runs the sequence once."""
        with self._shutdown_lock:
            if self._shutdown_done:
                return
            self._shutdown_done = True
        # 1. Stop admitting (503 on POST) while the HTTP server is still
        #    answering status polls for jobs about to finish.
        self.queue.begin_drain()
        # 2. Stop the listener.  httpd.shutdown() handshakes with
        #    serve_forever and would block forever on a service that was
        #    never started (e.g. constructed only to inspect a replay).
        if self._serving:
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._server_thread is not None:
            self._server_thread.join(timeout=10.0)
            self._server_thread = None
        # 3. Drain the queue: the runner keeps batching until nothing is
        #    pending, then the clean-shutdown marker is journaled.
        self.queue.stop(timeout=60.0)
        self.engine.close()
        if self.journal is not None:
            self.journal.close()
