"""The HTTP front end: stdlib ``ThreadingHTTPServer`` over the engine.

No frameworks, no new dependencies: request routing is a handful of
regular expressions, bodies are ``json`` both ways, concurrency is one
handler thread per connection (the handlers only touch the thread-safe
:class:`~repro.service.queue.JobQueue`; the engine itself is driven by
the queue's single runner thread).
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.api.config import EngineConfig
from repro.api.engine import SciductionEngine
from repro.api.problems import problem_types
from repro.service.queue import JobQueue, ServiceJob
from repro.service.wire import (
    WireError,
    error_wire,
    job_record_wire,
    job_summary_wire,
    parse_job_request,
)

_JOB_PATH = re.compile(r"^/jobs/(\d+)$")
_RESULT_PATH = re.compile(r"^/jobs/(\d+)/result$")

#: Request bodies above this size are rejected (the wire forms the
#: service accepts are small; this bounds memory per connection).
MAX_BODY_BYTES = 4 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Routes one HTTP request to the owning :class:`SciductionService`."""

    #: Injected by :meth:`SciductionService._handler_class`.
    service: "SciductionService"

    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def _body_length(self) -> int:
        raw = self.headers.get("Content-Length")
        if raw is None:
            return 0
        try:
            length = int(raw)
        except ValueError:
            # A client protocol error, not a server fault — and the body
            # size is unknowable, so the connection cannot be reused.
            self.close_connection = True
            raise WireError(f"invalid Content-Length header {raw!r}") from None
        return max(0, length)

    def _drain_body(self) -> None:
        """Discard an unread request body before replying.

        Under HTTP/1.1 keep-alive the connection is reused for the next
        request; replying without consuming the body would leave it in
        the stream, where it gets parsed as the next request line.
        Oversized bodies are not worth draining — the connection is
        closed instead.
        """
        try:
            remaining = self._body_length()
        except WireError:
            return  # close_connection already set
        if not remaining:
            return
        if remaining > MAX_BODY_BYTES:
            self.close_connection = True
            return
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 65536))
            if not chunk:
                break
            remaining -= len(chunk)

    def _reply(self, status: int, payload: dict | list) -> None:
        if not self._body_consumed:
            self._drain_body()
            self._body_consumed = True
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _fail(self, status: int, message: str) -> None:
        self._reply(status, error_wire(message, status))

    def _read_json(self) -> Any:
        length = self._body_length()
        self._body_consumed = True
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            raise WireError("request body too large", status=413)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise WireError("request body required")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise WireError(f"invalid JSON body: {error}") from error

    def handle_one_request(self) -> None:  # noqa: D102 — http.server API
        self._body_consumed = False
        super().handle_one_request()

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.service.quiet:
            super().log_message(format, *args)

    def _job_or_404(self, job_id: str) -> "ServiceJob | None":
        job = self.service.queue.get(int(job_id))
        if job is None:
            self._fail(404, f"unknown job id {job_id}")
        return job

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        try:
            if self.path == "/healthz":
                self._reply(200, {"status": "ok"})
                return
            if self.path == "/stats":
                self._reply(200, self.service.stats())
                return
            if self.path == "/problems":
                self._reply(200, {"kinds": sorted(problem_types())})
                return
            if self.path == "/jobs":
                self._reply(
                    200,
                    {"jobs": [job_summary_wire(job) for job in self.service.queue.jobs()]},
                )
                return
            match = _JOB_PATH.match(self.path)
            if match:
                job = self._job_or_404(match.group(1))
                if job is not None:
                    self._reply(200, job_record_wire(job))
                return
            match = _RESULT_PATH.match(self.path)
            if match:
                job = self._job_or_404(match.group(1))
                if job is None:
                    return
                result = job.result
                if result is None:
                    self._fail(409, f"job {job.job_id} is {job.state}; no result yet")
                    return
                self._reply(200, result)
                return
            self._fail(404, f"unknown path {self.path}")
        except Exception as error:  # noqa: BLE001 — a handler must answer
            self._fail(500, f"internal error: {error}")

    def do_POST(self) -> None:  # noqa: N802
        try:
            if self.path != "/jobs":
                self._fail(404, f"unknown path {self.path}")
                return
            request = parse_job_request(self._read_json())
            job = self.service.queue.submit(request)
            self._reply(
                202,
                {
                    "job_id": job.job_id,
                    "state": job.state,
                    "location": f"/jobs/{job.job_id}",
                },
            )
        except WireError as error:
            self._fail(error.status, str(error))
        except Exception as error:  # noqa: BLE001
            self._fail(500, f"internal error: {error}")

    def do_DELETE(self) -> None:  # noqa: N802
        try:
            match = _JOB_PATH.match(self.path)
            if not match:
                self._fail(404, f"unknown path {self.path}")
                return
            cancelled = self.service.queue.cancel(int(match.group(1)))
            if cancelled is None:
                self._fail(404, f"unknown job id {match.group(1)}")
                return
            if not cancelled:
                self._fail(409, "job is already running or finished")
                return
            self._reply(200, {"cancelled": True})
        except Exception as error:  # noqa: BLE001
            self._fail(500, f"internal error: {error}")


class SciductionService:
    """Engine + queue + HTTP server, composed for one process.

    Args:
        config: engine configuration (``workers > 1`` fans service
            batches over the parallel scheduler).
        host: bind address (loopback by default — the service speaks
            plaintext HTTP and has no auth story yet; see ROADMAP).
        port: bind port; 0 asks the OS for an ephemeral one (read it
            back from :attr:`port`).
        quiet: silence per-request access logs.
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        quiet: bool = False,
    ) -> None:
        self.engine = SciductionEngine(config)
        self.queue = JobQueue(self.engine)
        self.quiet = quiet
        handler = type("BoundHandler", (_Handler,), {"service": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._server_thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The actually bound port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stats(self) -> dict:
        """The ``/stats`` payload: queue counts, depth/latency histograms,
        and engine-wide counters.

        ``queue`` stays the flat per-state count mapping (clients key on
        it); the histograms ride along as separate top-level keys:
        ``queue_depth`` (pending depth observed at each submission) and
        ``job_latency`` (per-problem-kind seconds, from harvested jobs).
        """
        payload = {
            "queue": self.queue.counts(),
            "engine": self.engine.statistics(),
            "config": self.engine.config.to_dict(),
        }
        payload.update(self.queue.histograms())
        return payload

    def start(self) -> None:
        """Start the runner thread and serve HTTP in the background."""
        # Fork the worker fleet while this process is still
        # single-threaded — forking under live handler threads is unsafe.
        self.engine.prestart_workers()
        self.queue.start()
        self._server_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="sciduction-http",
            daemon=True,
        )
        self._server_thread.start()

    def serve_forever(self) -> None:
        """Start the runner thread and serve HTTP on the calling thread."""
        self.engine.prestart_workers()
        self.queue.start()
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop accepting requests, finish the in-flight batch, release workers."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._server_thread is not None:
            self._server_thread.join(timeout=10.0)
            self._server_thread = None
        self.queue.stop()
        self.engine.close()
