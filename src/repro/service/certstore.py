"""Content-hashed certificate store: the disk tier below the check memo.

The in-memory :class:`~repro.api.memo.SharedCheckMemo` short-circuits
repeated *checks* within one engine's lifetime; this store
short-circuits repeated *jobs* across restarts.  Every successfully
completed job's wire-form result (including its conditional-soundness
certificate) is persisted keyed by the content hash of its canonical
wire-form submission — problem spec plus the budget knobs that shape the
outcome.  A re-submitted job whose submission hashes the same is
answered straight from disk, with no engine call at all; ``/stats``
counts the hits so the bypass is observable.

Layout (under the store directory)::

    certs/<hh>/<fingerprint>.json

where ``<hh>`` is the first two hex digits of the SHA-256 fingerprint
(fan-out keeps directory listings sane at scale) and the JSON file holds
``{"fingerprint", "request", "state", "result", "elapsed"}``.

Writes are atomic (temp file + ``os.replace``) and fsync'd, so a crash
mid-write can never leave a half cert that a later boot would serve; a
reader that does find a corrupt file treats it as a miss.  Write
failures (e.g. disk full) degrade the store — the job still completes
and is served from memory, the failure is counted, and ``/healthz``
reports the store unavailable until a write succeeds again.

Only ``"completed"`` outcomes are persisted: failures may be
environmental and timeouts depend on wall-clock scheduling, so replaying
either from cache would be wrong.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path

from repro.analysis.annotations import guarded_by
from repro.testing.faults import fault_point


def submission_fingerprint(request: dict) -> str:
    """Content hash of a canonical wire-form submission.

    Covers the problem spec and every knob that influences the result
    bytes: budgets gate outcomes, and the label is echoed into the
    result details, so both are part of the key.
    """
    canonical = {
        "problem": request.get("problem"),
        "max_conflicts": request.get("max_conflicts"),
        "timeout": request.get("timeout"),
        "label": request.get("label"),
    }
    body = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


@guarded_by(
    "_lock", "_available", "_hits", "_misses", "_writes",
    "_write_errors", "_read_errors",
)
class CertStore:
    """Persistent result store keyed by submission fingerprint.

    Args:
        directory: store root (created on first use).
    """

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self._lock = threading.Lock()
        self._available = True
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._write_errors = 0
        self._read_errors = 0

    def _path(self, fingerprint: str) -> Path:
        return self.directory / fingerprint[:2] / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> dict | None:
        """The stored record for ``fingerprint``, or None (counted)."""
        path = self._path(fingerprint)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            with self._lock:
                self._misses += 1
            return None
        except OSError:
            with self._lock:
                self._read_errors += 1
            return None
        try:
            record = json.loads(raw)
        except json.JSONDecodeError:
            # A corrupt cert is a miss, never an error to the client.
            with self._lock:
                self._read_errors += 1
            return None
        if not isinstance(record, dict) or "result" not in record:
            with self._lock:
                self._read_errors += 1
            return None
        with self._lock:
            self._hits += 1
        return record

    def put(self, fingerprint: str, record: dict) -> bool:
        """Persist ``record`` atomically; returns whether it stuck.

        Failure never raises — the store degrades (see
        :meth:`available`) and the caller carries on serving the result
        from memory.
        """
        path = self._path(fingerprint)
        temp = path.with_suffix(f".tmp.{os.getpid()}")
        body = json.dumps(record, sort_keys=True, separators=(",", ":"))
        try:
            fault_point("certstore.write")
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(temp, "wb") as handle:
                handle.write(body.encode("utf-8"))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, path)
        except OSError:
            with self._lock:
                self._write_errors += 1
                self._available = False
            try:
                temp.unlink()
            except OSError:
                pass
            return False
        with self._lock:
            self._writes += 1
            self._available = True
        return True

    def available(self) -> bool:
        """Whether the last write succeeded (True before any write)."""
        with self._lock:
            return self._available

    def statistics(self) -> dict:
        """JSON-ready counters for ``/stats``."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "writes": self._writes,
                "write_errors": self._write_errors,
                "read_errors": self._read_errors,
                "available": self._available,
            }
