"""CLI entry point: ``python -m repro.service``.

Examples::

    python -m repro.service --port 8080
    python -m repro.service --port 0 --port-file port.txt   # ephemeral port
    python -m repro.service --workers 2 --pool-size 8

The bound address is printed on stdout (and written to ``--port-file``
when given) so callers that asked for an ephemeral port can discover it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.api.config import EngineConfig
from repro.service.server import SciductionService


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve the sciduction engine over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--port-file",
        type=Path,
        default=None,
        help="write the bound port here once listening (for --port 0 callers)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for batch execution (1 = in-process)",
    )
    parser.add_argument(
        "--pool-size",
        type=int,
        default=None,
        help="warm solver sessions kept per pool (default: engine default)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-request access logs"
    )
    arguments = parser.parse_args(argv)

    config_kwargs: dict = {"workers": arguments.workers}
    if arguments.pool_size is not None:
        config_kwargs["pool_size"] = arguments.pool_size
    service = SciductionService(
        EngineConfig(**config_kwargs),
        host=arguments.host,
        port=arguments.port,
        quiet=arguments.quiet,
    )
    print(f"sciduction service listening on {service.url}", flush=True)
    if arguments.port_file is not None:
        arguments.port_file.write_text(f"{service.port}\n")
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        service.shutdown()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
