"""CLI entry point: ``python -m repro.service``.

Examples::

    python -m repro.service --port 8080
    python -m repro.service --port 0 --port-file port.txt   # ephemeral port
    python -m repro.service --workers 2 --pool-size 8
    python -m repro.service --data-dir /var/lib/sciduction  # crash-safe

With ``--data-dir`` the service journals every job lifecycle transition
to ``<data-dir>/journal.wal`` before acknowledging it and persists
completed results under ``<data-dir>/certs``; a restart on the same
directory replays the journal — finished results are served from
history, accepted-but-unfinished jobs run again.

SIGTERM triggers a graceful drain: new submissions are refused (503),
everything already accepted finishes, a clean-shutdown marker is
journaled, then the process exits.

The bound address is printed on stdout (and written to ``--port-file``
when given) so callers that asked for an ephemeral port can discover it.

Fault injection (testing only): set ``REPRO_FAULTS`` to a plan like
``journal.write:raise:ENOSPC:3`` before launching — see
:mod:`repro.testing.faults`.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from pathlib import Path
from types import FrameType

from repro.api.config import EngineConfig
from repro.cluster.auth import TokenSet, ensure_bind_allowed
from repro.service.server import SciductionService
from repro.testing import faults


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve the sciduction engine over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--port-file",
        type=Path,
        default=None,
        help="write the bound port here once listening (for --port 0 callers)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for batch execution (1 = in-process)",
    )
    parser.add_argument(
        "--pool-size",
        type=int,
        default=None,
        help="warm solver sessions kept per pool (default: engine default)",
    )
    parser.add_argument(
        "--data-dir",
        type=Path,
        default=None,
        help="journal + certificate-store directory (enables crash safety)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help="admission bound on queued jobs (429 past it; default unbounded)",
    )
    parser.add_argument(
        "--auth-token",
        default=None,
        help=(
            "bearer token(s) required on every route except /healthz; "
            "comma-separated 'secret' or 'identity:secret' entries "
            "(falls back to REPRO_AUTH_TOKEN)"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-request access logs"
    )
    arguments = parser.parse_args(argv)

    # Arm deterministic fault injection when the environment asks for it
    # (a no-op outside the fault-injection test suites).
    faults.install_from_env()

    tokens = TokenSet.from_env(arguments.auth_token)
    ensure_bind_allowed(arguments.host, tokens, "service")

    config_kwargs: dict = {"workers": arguments.workers}
    if arguments.pool_size is not None:
        config_kwargs["pool_size"] = arguments.pool_size
    service = SciductionService(
        EngineConfig(**config_kwargs),
        host=arguments.host,
        port=arguments.port,
        quiet=arguments.quiet,
        data_dir=arguments.data_dir,
        max_pending=arguments.max_pending,
        auth=tokens,
    )
    if service.replay is not None and service.replay.records:
        replay = service.replay
        print(
            "journal replay: "
            f"{len(replay.finished)} finished restored, "
            f"{len(replay.unfinished)} unfinished re-enqueued, "
            f"{replay.truncated_bytes} torn bytes truncated, "
            f"clean_shutdown={replay.clean_shutdown}",
            flush=True,
        )

    def _on_sigterm(signum: int, frame: FrameType | None) -> None:
        # shutdown() joins the runner and HTTP threads, so it must not
        # run on the main thread while serve_forever() holds it — a
        # helper thread drains while serve_forever unblocks below.
        threading.Thread(
            target=service.shutdown, name="sciduction-drain"
        ).start()

    signal.signal(signal.SIGTERM, _on_sigterm)

    print(f"sciduction service listening on {service.url}", flush=True)
    if arguments.port_file is not None:
        arguments.port_file.write_text(f"{service.port}\n")
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        service.shutdown()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
