"""Histogram primitives for the service ``/stats`` surface.

The per-state counts in ``/stats`` say how many jobs are queued *now*;
they say nothing about how deep the queue has been or how long jobs of
each problem kind actually take.  :class:`Histogram` fills that gap with
fixed log-scale buckets — constant memory regardless of traffic, and
JSON-ready via :meth:`Histogram.as_dict`.

Instances are not thread-safe on their own; the :class:`~repro.service.
queue.JobQueue` records observations under its existing state lock.
"""

from __future__ import annotations

from typing import Sequence

#: Default bucket upper bounds for job latency, in seconds.
LATENCY_BOUNDS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: Default bucket upper bounds for queue depth, in jobs.
DEPTH_BOUNDS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class Histogram:
    """Fixed-bucket histogram with cumulative-style upper bounds.

    Each bucket counts observations ``<= bound``; values above the last
    bound land in the implicit overflow bucket reported as ``"inf"``.
    ``count`` / ``sum`` / ``max`` ride along so averages and worst cases
    need no separate counters.
    """

    def __init__(self, bounds: Sequence[float]) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self._bounds = tuple(float(bound) for bound in bounds)
        self._buckets = [0] * (len(self._bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        """Record one observation (caller provides synchronization)."""
        value = float(value)
        self._count += 1
        self._sum += value
        if value > self._max:
            self._max = value
        for index, bound in enumerate(self._bounds):
            if value <= bound:
                self._buckets[index] += 1
                return
        self._buckets[-1] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        """Sum of all observations (feeds the Retry-After estimate)."""
        return self._sum

    def as_dict(self) -> dict:
        """JSON-ready snapshot: count, sum, max and non-empty buckets.

        Bucket keys are rendered deterministically (``"<=0.005"`` …
        ``"inf"``) and empty buckets are omitted so the payload stays
        small for quiet services.
        """
        buckets = {}
        for bound, hits in zip(self._bounds, self._buckets):
            if hits:
                label = f"<={int(bound)}" if bound == int(bound) else f"<={bound}"
                buckets[label] = hits
        if self._buckets[-1]:
            buckets["inf"] = self._buckets[-1]
        return {
            "count": self._count,
            "sum": round(self._sum, 9),
            "max": round(self._max, 9),
            "buckets": buckets,
        }
