"""Request/response wire forms of the HTTP front end.

The service deliberately adds no serialization of its own: problems are
the engine's existing wire-form specs
(:func:`repro.api.problems.problem_from_dict`), results are the engine's
existing wire-form results (:func:`repro.api.results.result_to_dict`).
This module only validates the *envelope* — the job-submission payload
and the job record — and maps malformed input to structured HTTP errors
instead of tracebacks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.api.problems import problem_from_dict
from repro.core.exceptions import ReproError

if TYPE_CHECKING:  # a type-only edge; at runtime queue is a consumer of wire
    from repro.service.queue import ServiceJob


class WireError(ReproError):
    """A malformed request, carrying the HTTP status to answer with."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def _optional_number(payload: dict, key: str, kind: type) -> Any:
    value = payload.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireError(f"{key!r} must be a number, got {type(value).__name__}")
    if value < 0:
        raise WireError(f"{key!r} must be non-negative, got {value}")
    return kind(value)


def parse_job_request(payload: Any) -> dict:
    """Validate a ``POST /jobs`` body.

    Expected shape::

        {"problem": {"kind": "deobfuscation", ...},   # required
         "max_conflicts": 10000,                      # optional
         "timeout": 30.0,                             # optional seconds
         "label": "nightly",                          # optional
         "client": "ci-shard-3"}                      # optional accounting tag

    Returns the normalized submission (the problem is round-tripped
    through the registry, so unknown kinds and unknown fields fail here,
    as a 400, not inside the engine).

    Raises:
        WireError: on any malformed field.
    """
    if not isinstance(payload, dict):
        raise WireError("request body must be a JSON object")
    unknown = set(payload) - {
        "problem", "max_conflicts", "timeout", "label", "client",
    }
    if unknown:
        raise WireError(f"unknown request fields: {sorted(unknown)}")
    problem_wire = payload.get("problem")
    if not isinstance(problem_wire, dict):
        raise WireError("'problem' must be a wire-form problem object")
    try:
        problem = problem_from_dict(problem_wire)
    except ReproError as error:
        raise WireError(str(error)) from error
    label = payload.get("label")
    if label is not None and not isinstance(label, str):
        raise WireError(f"'label' must be a string, got {type(label).__name__}")
    client = payload.get("client")
    if client is not None and not isinstance(client, str):
        raise WireError(
            f"'client' must be a string, got {type(client).__name__}"
        )
    return {
        "problem": problem.to_dict(),
        "max_conflicts": _optional_number(payload, "max_conflicts", int),
        "timeout": _optional_number(payload, "timeout", float),
        "label": label,
        "client": client,
    }


def job_record_wire(job: "ServiceJob") -> dict:
    """The ``GET /jobs/<id>`` record for a :class:`~repro.service.queue.ServiceJob`."""
    return {
        "job_id": job.job_id,
        "state": job.state,
        "done": job.done,
        "problem": job.problem,
        "max_conflicts": job.max_conflicts,
        "timeout": job.timeout,
        "label": job.label,
        "client": job.client,
        "error": job.error,
        "elapsed": job.elapsed,
        "from_certificate": job.from_certificate,
    }


def job_summary_wire(job: "ServiceJob") -> dict:
    """The compact entry used by ``GET /jobs``."""
    return {
        "job_id": job.job_id,
        "state": job.state,
        "kind": job.problem.get("kind"),
        "label": job.label,
    }


def error_wire(message: str, status: int, **extra: Any) -> dict:
    """A structured error body (``extra`` adds fields like ``retry_after``)."""
    body = {"error": message, "status": status}
    body.update(extra)
    return body
