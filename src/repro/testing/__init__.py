"""Test-only instrumentation for the sciduction engine and service.

Nothing in this package runs in a production configuration: the fault
harness (:mod:`repro.testing.faults`) is a table of *disarmed* injection
points until a test (or the ``REPRO_FAULTS`` environment variable) arms
them, and every hook in the engine/service code is a single dictionary
probe when disarmed.
"""

from repro.testing.faults import (
    Fault,
    FaultError,
    fault_point,
    hits,
    injected,
    install,
    install_from_env,
    reset,
)

__all__ = [
    "Fault",
    "FaultError",
    "fault_point",
    "hits",
    "injected",
    "install",
    "install_from_env",
    "reset",
]
