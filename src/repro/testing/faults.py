"""Deterministic fault injection for the engine and service layers.

The robustness machinery (write-ahead journal, certificate store,
crash-retry budgets, admission control) is exactly the code that never
runs on the happy path — so nothing exercised it until something broke
in production.  This module gives tests a way to *drive* those paths
deterministically:

* production code calls :func:`fault_point` at named injection sites
  (``"journal.write"``, ``"certstore.write"``, ``"worker.crash"``,
  ``"engine.crash"``, ``"engine.slow"``, and — in the cluster layer —
  ``"node.crash"`` before each node-side job execution, ``"memod.down"``
  in the memo service's connection loop, and ``"net.partition"`` before
  each coordinator→node job send).  With no plan installed the
  call is one dictionary probe — the sites are free in production;
* tests arm the sites with :func:`injected` (in-process) or via the
  ``REPRO_FAULTS`` environment variable (subprocess services and forked
  worker processes inherit the armed plan);
* triggers are deterministic — a fault fires on an exact hit count, from
  a hit count onwards, or always — never on timers or randomness, so a
  failing fault test replays exactly.

Actions:

``raise``
    Raise :class:`FaultError` (an ``OSError``) at the site; the value
    names an errno (``"ENOSPC"``, ``"EIO"``) or is free-form message
    text.  This is how disk-full and I/O-error paths are simulated.
``exit``
    ``os._exit(value)`` — the process dies with no cleanup, exactly like
    a segfaulted worker.  Only meaningful at sites that run inside
    worker processes.
``sleep``
    ``time.sleep(value)`` seconds — simulates a slow engine without
    slowing the solver code itself.

Example::

    with faults.injected({"journal.write": faults.Fault("raise", "EIO")}):
        ...  # every journal append now fails with EIO

    REPRO_FAULTS="worker.crash:exit:13:1;engine.slow:sleep:0.2" \
        python -m repro.service --port 0
"""

from __future__ import annotations

import errno as errno_module
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping


class FaultError(OSError):
    """An injected I/O failure (an ``OSError`` so real handlers catch it)."""

    def __init__(self, point: str, value: str = "") -> None:
        code = getattr(errno_module, value, 0) if value else 0
        message = f"injected fault at {point!r}" + (f": {value}" if value else "")
        if code:
            super().__init__(code, message)
        else:
            super().__init__(message)
        self.point = point


@dataclass(frozen=True)
class Fault:
    """One armed injection: what to do at a site, and when.

    Attributes:
        action: ``"raise"`` / ``"exit"`` / ``"sleep"`` (see module docs).
        value: errno name or message for ``raise``, exit code for
            ``exit``, seconds for ``sleep``.
        when: ``"*"`` fires on every hit, ``"N"`` on exactly the Nth hit
            (1-based), ``"N+"`` on the Nth hit and every later one.
    """

    action: str
    value: str = ""
    when: str = "*"

    def __post_init__(self) -> None:
        if self.action not in ("raise", "exit", "sleep"):
            raise ValueError(f"unknown fault action {self.action!r}")
        spec = self.when
        if spec != "*":
            digits = spec[:-1] if spec.endswith("+") else spec
            if not digits.isdigit() or int(digits) < 1:
                raise ValueError(f"bad fault trigger {self.when!r}")

    def fires(self, hit: int) -> bool:
        """Whether the fault fires on 1-based hit number ``hit``."""
        if self.when == "*":
            return True
        if self.when.endswith("+"):
            return hit >= int(self.when[:-1])
        return hit == int(self.when)


_LOCK = threading.Lock()
_PLAN: dict[str, Fault] | None = None
_HITS: dict[str, int] = {}


def install(plan: Mapping[str, Fault]) -> None:
    """Arm ``plan`` (point name → fault), replacing any previous plan."""
    global _PLAN
    with _LOCK:
        _PLAN = dict(plan)
        _HITS.clear()


def reset() -> None:
    """Disarm every injection point and clear hit counters."""
    global _PLAN
    with _LOCK:
        _PLAN = None
        _HITS.clear()


def hits(point: str) -> int:
    """How many times an armed ``point`` has been probed."""
    with _LOCK:
        return _HITS.get(point, 0)


@contextmanager
def injected(plan: Mapping[str, Fault]) -> Iterator[None]:
    """Arm ``plan`` for the duration of a ``with`` block, then disarm."""
    install(plan)
    try:
        yield
    finally:
        reset()


def parse_plan(spec: str) -> dict[str, Fault]:
    """Parse a ``REPRO_FAULTS`` specification string.

    Grammar: semicolon-separated ``point:action[:value[:when]]`` entries,
    e.g. ``"journal.write:raise:EIO:2+;engine.slow:sleep:0.2"``.
    """
    plan: dict[str, Fault] = {}
    for entry in spec.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) < 2 or len(parts) > 4:
            raise ValueError(f"bad REPRO_FAULTS entry {entry!r}")
        point, action = parts[0], parts[1]
        value = parts[2] if len(parts) > 2 else ""
        when = parts[3] if len(parts) > 3 else "*"
        plan[point] = Fault(action, value, when)
    return plan


def install_from_env(variable: str = "REPRO_FAULTS") -> bool:
    """Arm the plan named by ``variable`` (no-op when unset).

    Returns whether a plan was installed.  Called by service entry
    points so subprocess tests can arm faults across the process
    boundary; forked worker processes inherit the armed plan (and the
    hit counters as of the fork) automatically.
    """
    spec = os.environ.get(variable)
    if not spec:
        return False
    install(parse_plan(spec))
    return True


def fault_point(point: str) -> None:
    """Probe injection site ``point``; acts only when a plan arms it.

    Raises:
        FaultError: when an armed ``raise`` fault fires here.
    """
    if _PLAN is None:
        return
    with _LOCK:
        plan = _PLAN
        if plan is None:  # pragma: no cover — disarmed between checks
            return
        fault = plan.get(point)
        if fault is None:
            return
        _HITS[point] = hit = _HITS.get(point, 0) + 1
        if not fault.fires(hit):
            return
    if fault.action == "raise":
        raise FaultError(point, fault.value)
    if fault.action == "exit":
        os._exit(int(fault.value or 1))
    time.sleep(float(fault.value or 0.0))
