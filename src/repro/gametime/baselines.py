"""Baseline WCET estimators that GameTime is compared against.

The paper motivates GameTime by contrast with measurement-based approaches
that probe the program with random or exhaustive inputs.  Two baselines
are provided for the ablation benchmarks:

* :class:`RandomTestingEstimator` — draw inputs uniformly at random, run
  them end to end, report the maximum observed time.  With the same
  measurement budget as GameTime it systematically under-estimates the
  WCET on programs whose worst-case path is rare.
* :class:`ExhaustiveEstimator` — enumerate every feasible path, generate a
  test case for each (SMT), and measure them all.  This is the ground
  truth the other estimators are scored against (only viable when the path
  count is small, which is exactly why it is not a practical tool).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.exceptions import ReproError
from repro.cfg.builder import build_cfg
from repro.cfg.lang import Program
from repro.cfg.paths import enumerate_paths
from repro.cfg.ssa import PathConstraintBuilder
from repro.platform.measurement import MeasurementHarness, PerturbationModel
from repro.platform.processor import PlatformConfig


@dataclass
class WcetBaselineResult:
    """Outcome of a baseline WCET estimation.

    Attributes:
        estimated_wcet: the maximum cycle count observed.
        test_case: the input achieving it.
        measurements: number of end-to-end measurements used.
    """

    estimated_wcet: int
    test_case: dict[str, int]
    measurements: int


class RandomTestingEstimator:
    """Estimate the WCET by measuring uniformly random inputs."""

    name = "random-testing"

    def __init__(
        self,
        program: Program,
        platform: PlatformConfig | None = None,
        start_state: str = "cold",
        perturbation: PerturbationModel | None = None,
        seed: int = 0,
    ):
        self.program = program
        self.harness = MeasurementHarness.from_program(
            program,
            platform=platform,
            start_state=start_state,  # type: ignore[arg-type]
            perturbation=perturbation,
        )
        self._rng = random.Random(seed)

    def estimate(self, budget: int) -> WcetBaselineResult:
        """Measure ``budget`` random inputs and return the maximum."""
        if budget <= 0:
            raise ReproError("measurement budget must be positive")
        mask = (1 << self.program.word_width) - 1
        best_cycles = -1
        best_case: dict[str, int] = {}
        for _ in range(budget):
            test_case = {
                name: self._rng.randint(0, mask) for name in self.program.parameters
            }
            cycles = self.harness.measure(test_case)
            if cycles > best_cycles:
                best_cycles = cycles
                best_case = test_case
        return WcetBaselineResult(
            estimated_wcet=best_cycles, test_case=best_case, measurements=budget
        )


class ExhaustiveEstimator:
    """Ground-truth WCET: measure one test case per feasible path."""

    name = "exhaustive-paths"

    def __init__(
        self,
        program: Program,
        platform: PlatformConfig | None = None,
        start_state: str = "cold",
        perturbation: PerturbationModel | None = None,
    ):
        self.program = program
        self.cfg = build_cfg(program)
        self.constraint_builder = PathConstraintBuilder(self.cfg)
        self.harness = MeasurementHarness.from_program(
            program,
            platform=platform,
            start_state=start_state,  # type: ignore[arg-type]
            perturbation=perturbation,
        )

    def estimate(self, max_paths: int = 4096) -> WcetBaselineResult:
        """Measure every feasible path (up to ``max_paths``)."""
        total = self.cfg.count_paths()
        if total > max_paths:
            raise ReproError(
                f"{total} paths exceed the exhaustive enumeration cap of {max_paths}"
            )
        best_cycles = -1
        best_case: dict[str, int] = {}
        measurements = 0
        for path in enumerate_paths(self.cfg):
            feasible = self.constraint_builder.feasibility(path)
            if feasible is None:
                continue
            cycles = self.harness.measure(feasible.test_case)
            measurements += 1
            if cycles > best_cycles:
                best_cycles = cycles
                best_case = feasible.test_case
        if best_cycles < 0:
            raise ReproError("no feasible paths found")
        return WcetBaselineResult(
            estimated_wcet=best_cycles, test_case=best_case, measurements=measurements
        )
