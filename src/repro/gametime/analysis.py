"""GameTime: sciductive timing analysis of software (paper Section 3).

This module ties the pieces together into the procedure depicted in the
paper's Figure 5:

1. build the unrolled CFG of the task (:mod:`repro.cfg`),
2. extract feasible basis paths and their test cases with the SMT solver
   (the deductive engine),
3. compile the task for the platform and measure the basis-path test cases
   end-to-end in a randomised order (the inductive engine's examples),
4. learn the weight–perturbation model ``(w, pi)``,
5. use the model to predict the worst-case path, per-path execution times,
   and the distribution of execution times; answer the timing-analysis
   decision problem ⟨TA⟩ ("is the execution time always at most tau?")
   with a test case when the answer is NO.

The procedure is conditionally, probabilistically sound: if the structure
hypothesis holds (and enough trials are run), the answer to ⟨TA⟩ is
correct with probability at least ``1 - delta`` (paper Section 3.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.exceptions import BudgetExceededError, ReproError
from repro.core.hypothesis import HypothesisValidityEvidence
from repro.core.procedure import SciductionProcedure, SciductionResult
from repro.cfg.basis import BasisExtractionResult, extract_basis_paths
from repro.cfg.builder import build_cfg
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.lang import Program
from repro.cfg.paths import Path, enumerate_paths, path_from_edges
from repro.cfg.ssa import PathConstraintBuilder
from repro.gametime.learner import GameTimeLearner
from repro.gametime.model import WeightPerturbationHypothesis, WeightPerturbationModel
from repro.platform.compiler import compile_program
from repro.platform.measurement import MeasurementHarness, PerturbationModel, TimingOracle
from repro.platform.processor import PlatformConfig


@dataclass
class PathPrediction:
    """Predicted and (optionally) measured time of one program path."""

    path: Path
    predicted: float
    measured: int | None = None
    test_case: dict[str, int] | None = None

    @property
    def error(self) -> float | None:
        """Absolute prediction error, when a measurement is available."""
        if self.measured is None:
            return None
        return abs(self.predicted - self.measured)


@dataclass
class WcetEstimate:
    """Result of worst-case execution time estimation.

    Attributes:
        predicted_cycles: model-predicted time of the predicted WCET path.
        measured_cycles: measured time of that path's test case.
        path: the predicted worst-case path.
        test_case: input valuation driving execution down that path.
    """

    predicted_cycles: float
    measured_cycles: int
    path: Path
    test_case: dict[str, int]


@dataclass
class TimingAnalysisAnswer:
    """Answer to the decision problem ⟨TA⟩ of paper Section 3.1."""

    bound: int
    within_bound: bool
    witness: WcetEstimate


@dataclass
class DistributionReport:
    """Predicted vs. measured execution-time distribution (paper Fig. 6)."""

    predictions: list[PathPrediction] = field(default_factory=list)

    @property
    def max_absolute_error(self) -> float:
        """Largest |predicted - measured| over all paths."""
        errors = [p.error for p in self.predictions if p.error is not None]
        return max(errors) if errors else float("nan")

    @property
    def mean_absolute_error(self) -> float:
        """Mean |predicted - measured| over all paths."""
        errors = [p.error for p in self.predictions if p.error is not None]
        return sum(errors) / len(errors) if errors else float("nan")

    def histogram(self, bin_width: int = 20) -> list[tuple[int, int, int]]:
        """Histogram rows ``(bin_start, predicted_count, measured_count)``.

        This is the tabular form of the paper's Figure 6 bar chart.
        """
        if not self.predictions:
            return []
        values = [p.predicted for p in self.predictions] + [
            float(p.measured) for p in self.predictions if p.measured is not None
        ]
        low = int(math.floor(min(values) / bin_width) * bin_width)
        high = int(math.ceil(max(values) / bin_width) * bin_width)
        rows = []
        for start in range(low, high + 1, bin_width):
            end = start + bin_width
            predicted_count = sum(
                1 for p in self.predictions if start <= p.predicted < end
            )
            measured_count = sum(
                1
                for p in self.predictions
                if p.measured is not None and start <= p.measured < end
            )
            rows.append((start, predicted_count, measured_count))
        return rows


class GameTime(SciductionProcedure[WeightPerturbationModel]):
    """The GameTime timing-analysis procedure ⟨H, I, D⟩.

    Args:
        program: the task to analyse.
        platform: platform configuration (defaults to the package's
            StrongARM-like core).
        start_state: environment starting state for every measurement
            (``"cold"`` by default, as in the paper's experiments).
        perturbation: optional measurement-noise model (exercises the
            perturbation component of the structure hypothesis).
        trials: number of end-to-end measurements used for learning
            (defaults to ``3 * #basis_paths``).
        mu_max: assumed bound on the mean perturbation.
        rho: assumed worst-case-path margin.
        seed: RNG seed for the measurement schedule.
        reencode_each_check: forwarded to the path-constraint builder's
            SMT solver; when True every feasibility query re-bit-blasts
            its encoding instead of riding the shared incremental solver
            (kept as a benchmark baseline).  *Deprecated*: prefer
            ``config``.
        config: an :class:`~repro.api.config.EngineConfig` carrying all
            solver flags; the preferred entry point is
            :class:`repro.api.SciductionEngine` with a
            :class:`~repro.api.problems.TimingAnalysisProblem`.
        solver: externally owned :class:`~repro.smt.solver.SmtSolver` for
            the feasibility queries (a pooled session leased by the
            engine's :class:`~repro.api.pool.SolverPool`).
        solver_factory: a solver factory — preferably the pooled
            :class:`~repro.api.pool.SolverLease` itself, which lets the
            path-constraint builder keep a fingerprinted per-CFG base
            scope alive across jobs (frontier rollback plus memoized
            feasibility verdicts on repeated analyses; see
            :class:`~repro.cfg.ssa.PathConstraintBuilder`).  Takes
            precedence over ``solver``.
    """

    name = "gametime"

    def __init__(
        self,
        program: Program,
        platform: PlatformConfig | None = None,
        start_state: str = "cold",
        perturbation: PerturbationModel | None = None,
        trials: int | None = None,
        mu_max: float = 0.0,
        rho: float = 0.0,
        seed: int = 0,
        reencode_each_check: bool = False,
        config=None,
        solver=None,
        solver_factory=None,
    ):
        self.program = program
        self.cfg: ControlFlowGraph = build_cfg(program)
        self.constraint_builder = PathConstraintBuilder(
            self.cfg,
            reencode_each_check=reencode_each_check,
            config=config,
            solver=solver,
            solver_factory=solver_factory,
        )
        self.binary = compile_program(program)
        self.harness = MeasurementHarness(
            self.binary,
            platform=platform,
            start_state=start_state,  # type: ignore[arg-type]
            perturbation=perturbation,
        )
        self.timing_oracle = TimingOracle(self.harness)
        hypothesis = WeightPerturbationHypothesis(
            num_edges=self.cfg.num_edges, mu_max=mu_max, rho=rho
        )
        self._trials = trials
        self._seed = seed
        self.basis_result: BasisExtractionResult | None = None
        self.model: WeightPerturbationModel | None = None
        self.learner: GameTimeLearner | None = None
        super().__init__(hypothesis=hypothesis, inductive=None, deductive=None)

    # -- soundness ------------------------------------------------------------

    def hypothesis_evidence(self) -> HypothesisValidityEvidence:
        evidence = HypothesisValidityEvidence(
            hypothesis_name=self.hypothesis.name,
            proved=False,
            argument=(
                "platform timing assumed to decompose as x.(w + pi) with "
                "path-independent w and bounded-mean perturbation"
            ),
        )
        if self.model is not None and self.basis_result is not None:
            evidence.checked_instances = len(self.basis_result.basis)
            evidence.add_note(
                "basis-path measurements are reproduced exactly by the fitted w"
            )
        return evidence

    def soundness_argument(self) -> str:
        return (
            "if the (w, pi) hypothesis holds, averaging randomized basis-path "
            "measurements estimates x.w for every path within the perturbation "
            "bound, so the predicted longest path is the true worst case with "
            "probability >= 1 - delta (paper Sec. 3.3)"
        )

    def is_probabilistically_sound(self) -> bool:
        return True

    def confidence(self) -> float | None:
        # The paper's bound: polynomial trials in ln(1/delta); we report the
        # conventional 0.95 used by the experiments when noise is enabled,
        # and 1.0 in the deterministic (mu_max = 0) setting.
        hypothesis = self.hypothesis
        assert isinstance(hypothesis, WeightPerturbationHypothesis)
        return 1.0 if hypothesis.mu_max == 0 else 0.95

    # -- pipeline --------------------------------------------------------------

    def prepare(self) -> WeightPerturbationModel:
        """Run the front end and learn the timing model (idempotent)."""
        if self.model is not None:
            return self.model
        self.basis_result = extract_basis_paths(
            self.cfg, constraint_builder=self.constraint_builder
        )
        if not self.basis_result.basis:
            raise ReproError("no feasible basis paths were found")
        hypothesis = self.hypothesis
        assert isinstance(hypothesis, WeightPerturbationHypothesis)
        self.learner = GameTimeLearner(
            hypothesis=hypothesis,
            basis=self.basis_result.basis,
            num_edges=self.cfg.num_edges,
            timing_oracle=self.timing_oracle,
            trials=self._trials,
            seed=self._seed,
        )
        self.inductive = self.learner
        self.model = self.learner.infer()
        return self.model

    @property
    def num_basis_paths(self) -> int:
        """Number of feasible basis paths used (9 for the paper's modexp)."""
        self.prepare()
        assert self.basis_result is not None
        return len(self.basis_result.basis)

    # -- predictions -------------------------------------------------------------

    def predict_path(self, path: Path, measure: bool = False) -> PathPrediction:
        """Predict (and optionally measure) the execution time of ``path``."""
        model = self.prepare()
        prediction = PathPrediction(path=path, predicted=model.predict_path_time(path))
        if measure:
            feasible = self.constraint_builder.feasibility(path)
            if feasible is not None:
                prediction.test_case = feasible.test_case
                prediction.measured = self.harness.measure(feasible.test_case)
        return prediction

    def estimate_wcet(self) -> WcetEstimate:
        """Predict the worst-case path, confirm it with a measurement."""
        model = self.prepare()
        predicted_time, edges = model.longest_path(self.cfg)
        path = path_from_edges(self.cfg, edges)
        feasible = self.constraint_builder.feasibility(path)
        if feasible is None:
            # The structurally-longest path is infeasible; fall back to the
            # feasible path with the largest predicted time.
            best: PathPrediction | None = None
            for candidate in enumerate_paths(self.cfg):
                witness = self.constraint_builder.feasibility(candidate)
                if witness is None:
                    continue
                predicted = model.predict_path_time(candidate)
                if best is None or predicted > best.predicted:
                    best = PathPrediction(
                        path=candidate, predicted=predicted, test_case=witness.test_case
                    )
            if best is None or best.test_case is None:
                raise ReproError("no feasible path found for WCET estimation")
            path, predicted_time = best.path, best.predicted
            test_case = best.test_case
        else:
            test_case = feasible.test_case
        measured = self.harness.measure(test_case)
        return WcetEstimate(
            predicted_cycles=predicted_time,
            measured_cycles=measured,
            path=path,
            test_case=test_case,
        )

    def answer_timing_query(self, bound: int) -> TimingAnalysisAnswer:
        """Answer problem ⟨TA⟩: is the execution time always at most ``bound``?

        Returns YES (``within_bound=True``) when the measured time of the
        predicted worst-case path is within the bound; otherwise NO,
        together with the witnessing test case (paper Section 3.2).
        """
        estimate = self.estimate_wcet()
        return TimingAnalysisAnswer(
            bound=bound,
            within_bound=estimate.measured_cycles <= bound,
            witness=estimate,
        )

    def predict_distribution(
        self,
        measure: bool = True,
        max_paths: int = 4096,
    ) -> DistributionReport:
        """Predict the execution time of every feasible path (paper Fig. 6).

        Args:
            measure: when True, each path's test case is also executed so
                the predicted and measured distributions can be compared.
            max_paths: safety cap on the number of paths enumerated.

        Raises:
            BudgetExceededError: if the CFG has more than ``max_paths`` paths.
        """
        model = self.prepare()
        total = self.cfg.count_paths()
        if total > max_paths:
            raise BudgetExceededError(
                f"{total} paths exceed the enumeration cap of {max_paths}"
            )
        report = DistributionReport()
        # The per-path feasibility queries are independent, so the sweep
        # fans their verdict checks across `intra_job_workers` replica
        # sessions; witnesses come back in path order off the primary
        # session, so the report is lane-count-invariant.
        paths = list(enumerate_paths(self.cfg))
        for path, feasible in zip(paths, self.constraint_builder.sweep(paths)):
            if feasible is None:
                continue
            prediction = PathPrediction(
                path=path,
                predicted=model.predict_path_time(path),
                test_case=feasible.test_case,
            )
            if measure:
                prediction.measured = self.harness.measure(feasible.test_case)
            report.predictions.append(prediction)
        return report

    # -- SciductionProcedure interface ----------------------------------------------

    def describe(self) -> dict[str, str]:
        return {
            "procedure": self.name,
            "H": self.hypothesis.describe(),
            "I": "game-theoretic online learning over basis paths",
            "D": "SMT (QF_BV) solving for basis-path feasibility / test generation",
        }

    def _run(
        self,
        bound: int | None = None,
        distribution: bool = False,
        max_paths: int = 4096,
        **_: object,
    ) -> SciductionResult[WeightPerturbationModel]:
        model = self.prepare()
        estimate = self.estimate_wcet()
        verdict = None
        if bound is not None:
            verdict = estimate.measured_cycles <= bound
        assert self.basis_result is not None
        details = {
            "wcet_predicted": estimate.predicted_cycles,
            "wcet_measured": estimate.measured_cycles,
            "wcet_test_case": estimate.test_case,
            "num_basis_paths": len(self.basis_result.basis),
            "num_paths": self.cfg.count_paths(),
        }
        if distribution:
            # The sweep-backed all-paths prediction (paper Fig. 6), in
            # deterministic path-enumeration order; this is the "single
            # big job" exercised by the intra-job parallelism benchmark.
            report = self.predict_distribution(measure=True, max_paths=max_paths)
            details["distribution"] = {
                "paths": [
                    {
                        "edges": list(prediction.path.edges),
                        "predicted": prediction.predicted,
                        "measured": prediction.measured,
                        "test_case": prediction.test_case,
                    }
                    for prediction in report.predictions
                ],
                "histogram": [list(row) for row in report.histogram()],
            }
        details["smt_variables_generated"] = (
            self.constraint_builder.smt_statistics.variables_generated
        )
        details["smt_clauses_generated"] = (
            self.constraint_builder.smt_statistics.clauses_generated
        )
        return SciductionResult(
            success=True,
            artifact=model,
            verdict=verdict,
            iterations=1,
            oracle_queries=self.timing_oracle.query_count,
            deductive_queries=self.constraint_builder.queries,
            details=details,
        )
