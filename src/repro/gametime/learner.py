"""Game-theoretic online learning of the (w, pi) timing model.

The inductive engine of GameTime (paper Table 1: "game-theoretic online
learning"): basis paths are executed in a randomised order over a number
of trials; per-basis-path averages smooth out the adversarial perturbation
pi; and the path-independent weight vector ``w`` is recovered from the
averaged basis measurements by solving the (under-determined) linear
system ``B w = t`` in the least-norm sense, where ``B`` stacks the basis
path vectors.  Any path's predicted time is then ``x . w`` — equivalently,
the combination of basis-path times given by the path's expansion in the
basis, which is the form used in the paper's exposition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.exceptions import InductionError
from repro.core.inductive import InductiveEngine
from repro.core.oracle import LabelingOracle
from repro.cfg.ssa import FeasiblePath
from repro.gametime.model import WeightPerturbationHypothesis, WeightPerturbationModel


@dataclass
class BasisMeasurements:
    """Raw measurements gathered for each basis path.

    Attributes:
        samples: ``samples[i]`` is the list of cycle counts observed for
            basis path ``i``.
    """

    samples: list[list[int]] = field(default_factory=list)

    def averages(self) -> list[float]:
        """Per-basis-path mean execution time."""
        result = []
        for index, values in enumerate(self.samples):
            if not values:
                raise InductionError(f"basis path {index} was never measured")
            result.append(sum(values) / len(values))
        return result

    def total_measurements(self) -> int:
        """Total number of platform runs recorded."""
        return sum(len(values) for values in self.samples)


class GameTimeLearner(InductiveEngine[WeightPerturbationModel, dict[str, int], int]):
    """Learns a :class:`WeightPerturbationModel` from end-to-end measurements.

    Args:
        hypothesis: the weight-perturbation structure hypothesis.
        basis: feasible basis paths with their test cases (from
            :func:`repro.cfg.basis.extract_basis_paths`).
        num_edges: number of CFG edges (dimension of ``w``).
        timing_oracle: labels a test case with its measured cycle count.
        trials: total number of measurements; basis paths are chosen
            uniformly at random per trial (each path is additionally
            guaranteed at least one measurement).
        seed: RNG seed for the randomised measurement schedule.
    """

    name = "game-theoretic-online-learner"

    def __init__(
        self,
        hypothesis: WeightPerturbationHypothesis,
        basis: Sequence[FeasiblePath],
        num_edges: int,
        timing_oracle: LabelingOracle[dict[str, int], int],
        trials: int | None = None,
        seed: int = 0,
    ):
        super().__init__(hypothesis)
        if not basis:
            raise InductionError("at least one basis path is required")
        self.basis = list(basis)
        self.num_edges = num_edges
        self.timing_oracle = timing_oracle
        self.trials = trials if trials is not None else 3 * len(basis)
        if self.trials < len(basis):
            raise InductionError(
                "the number of trials must be at least the number of basis paths"
            )
        self._rng = random.Random(seed)
        self.measurements = BasisMeasurements(samples=[[] for _ in basis])

    # -- measurement schedule ----------------------------------------------

    def propose_query(self) -> dict[str, int] | None:
        """Next test case to measure (uniformly random basis path)."""
        index = self._rng.randrange(len(self.basis))
        return self.basis[index].test_case

    def collect_measurements(self) -> BasisMeasurements:
        """Run the randomised measurement schedule against the oracle.

        Every basis path is measured at least once; remaining trials pick
        basis paths uniformly at random (the online game of the paper).
        """
        order = list(range(len(self.basis)))
        self._rng.shuffle(order)
        schedule = order + [
            self._rng.randrange(len(self.basis))
            for _ in range(self.trials - len(self.basis))
        ]
        for index in schedule:
            test_case = self.basis[index].test_case
            cycles = self.timing_oracle.label(test_case)
            self.measurements.samples[index].append(cycles)
            self.observe(test_case, cycles)
        return self.measurements

    # -- inference ------------------------------------------------------------

    def infer(self) -> WeightPerturbationModel:
        """Fit the weight vector ``w`` from the collected measurements.

        The linear system ``B w = t`` (``B``: basis vectors stacked row-wise,
        ``t``: averaged basis times) is solved in the least-norm /
        least-squares sense via the Moore–Penrose pseudo-inverse; the
        resulting ``w`` reproduces the basis measurements exactly (up to
        noise) and extends linearly to every other path.
        """
        if self.measurements.total_measurements() == 0:
            self.collect_measurements()
        averages = self.measurements.averages()
        matrix = np.stack(
            [item.path.vector(self.num_edges) for item in self.basis], axis=0
        )
        weights, _, _, _ = np.linalg.lstsq(matrix, np.asarray(averages), rcond=None)
        hypothesis = self.hypothesis
        assert isinstance(hypothesis, WeightPerturbationHypothesis)
        self.statistics.note_candidate()
        return WeightPerturbationModel(
            edge_weights=weights,
            mu_max=hypothesis.mu_max,
            rho=hypothesis.rho,
            basis_vectors=[item.path.vector(self.num_edges) for item in self.basis],
            basis_times=averages,
        )
