"""GameTime-style timing analysis (paper Section 3)."""

from repro.gametime.analysis import (
    DistributionReport,
    GameTime,
    PathPrediction,
    TimingAnalysisAnswer,
    WcetEstimate,
)
from repro.gametime.baselines import (
    ExhaustiveEstimator,
    RandomTestingEstimator,
    WcetBaselineResult,
)
from repro.gametime.learner import BasisMeasurements, GameTimeLearner
from repro.gametime.model import WeightPerturbationHypothesis, WeightPerturbationModel

__all__ = [
    "BasisMeasurements",
    "DistributionReport",
    "ExhaustiveEstimator",
    "GameTime",
    "GameTimeLearner",
    "PathPrediction",
    "RandomTestingEstimator",
    "TimingAnalysisAnswer",
    "WcetBaselineResult",
    "WcetEstimate",
    "WeightPerturbationHypothesis",
    "WeightPerturbationModel",
]
