"""The weight–perturbation platform model (GameTime's structure hypothesis).

Paper Section 3.2: the platform is modelled as an adversarial process that,
on every run, selects a pair ``(w, pi)`` of vectors in ``R^m`` (one entry
per CFG edge).  ``w`` — the *weight* — is path independent; ``pi`` — the
*perturbation* — may depend on the path but has mean bounded by ``mu_max``
along any path, and (for worst-case analysis) the worst-case path is the
unique longest path by a margin ``rho``.  The execution time of a run
along path ``x`` is ``x . (w + pi)``.

This module provides:

* :class:`WeightPerturbationModel` — a learned ``w`` (plus the hypothesis
  parameters), able to predict the time of any path and to rank paths;
* :class:`WeightPerturbationHypothesis` — the corresponding
  :class:`~repro.core.hypothesis.StructureHypothesis`, used in the
  procedure's soundness certificate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.hypothesis import StructureHypothesis
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.paths import Path


@dataclass
class WeightPerturbationModel:
    """A learned program-specific timing model of the platform.

    Attributes:
        edge_weights: the estimated path-independent weight vector ``w``
            (one entry per CFG edge).
        mu_max: assumed bound on the mean perturbation along any path.
        rho: assumed margin by which the worst-case path is the unique
            longest path (worst-case analysis only).
        basis_vectors: the basis-path indicator vectors the model was
            fitted from.
        basis_times: the (averaged) end-to-end measurements of the basis
            paths.
    """

    edge_weights: np.ndarray
    mu_max: float = 0.0
    rho: float = 0.0
    basis_vectors: list[np.ndarray] = field(default_factory=list)
    basis_times: list[float] = field(default_factory=list)

    @property
    def num_edges(self) -> int:
        """Number of CFG edges the model covers."""
        return int(self.edge_weights.shape[0])

    def predict_path_time(self, path: Path) -> float:
        """Predicted execution time of ``path`` (cycles)."""
        return float(path.vector(self.num_edges) @ self.edge_weights)

    def predict_vector_time(self, vector: np.ndarray) -> float:
        """Predicted execution time of a path given as an indicator vector."""
        return float(np.asarray(vector, dtype=float) @ self.edge_weights)

    def predict_many(self, paths: Sequence[Path]) -> list[float]:
        """Predicted times for several paths."""
        return [self.predict_path_time(path) for path in paths]

    def longest_path(self, cfg: ControlFlowGraph) -> tuple[float, list[int]]:
        """Predicted worst-case path of ``cfg`` under the learned weights.

        Returns:
            ``(predicted_time, edge_indices)``.
        """
        return cfg.extremal_path(list(self.edge_weights), longest=True)

    def shortest_path(self, cfg: ControlFlowGraph) -> tuple[float, list[int]]:
        """Predicted best-case path of ``cfg`` under the learned weights."""
        return cfg.extremal_path(list(self.edge_weights), longest=False)


class WeightPerturbationHypothesis(StructureHypothesis[WeightPerturbationModel]):
    """Structure hypothesis H of the GameTime procedure.

    The class ``C_H`` consists of environment models in which execution
    time decomposes as ``x . (w + pi)`` with path-independent ``w``, mean
    perturbation bounded by ``mu_max`` on every path, and (for worst-case
    analysis) a unique longest path by margin ``rho``.  Membership of a
    concrete learned model is a bound check on its recorded parameters;
    validity of the hypothesis for a given *platform* cannot be decided in
    general (paper Section 6) and is recorded as an assumption in the
    soundness certificate.
    """

    name = "weight-perturbation-model"

    def __init__(self, num_edges: int, mu_max: float, rho: float = 0.0):
        self.num_edges = num_edges
        self.mu_max = mu_max
        self.rho = rho

    def contains(self, artifact: WeightPerturbationModel) -> bool:
        return (
            artifact.num_edges == self.num_edges
            and artifact.mu_max <= self.mu_max + 1e-9
            and artifact.rho >= self.rho - 1e-9
        )

    def is_strict_restriction(self) -> bool | None:
        # The unconstrained environment class allows arbitrary path-dependent
        # timing; requiring a path-independent w plus bounded-mean
        # perturbation is a strict restriction.
        return True

    def describe(self) -> str:
        return (
            f"(w, pi) model over {self.num_edges} edges, "
            f"mean perturbation <= {self.mu_max}, margin rho = {self.rho}"
        )
