"""Length-prefixed JSON frame protocol shared by all cluster roles.

One frame on the wire::

    b"RC1\\n" | length:u32be | crc32:u32be | <compact sorted-keys JSON>

The body is canonical JSON (sorted keys, no whitespace) so a frame is a
pure function of its payload — the same discipline the journal and the
HTTP layer already follow.  The CRC covers the body; the magic pins the
protocol revision (bump it on any incompatible change).

Failure taxonomy, mirroring the journal's torn-tail handling:

* a clean EOF *between* frames is a normal connection close —
  :func:`read_frame` returns None;
* an EOF *inside* a frame is a torn frame (the peer died mid-write) —
  :class:`TornFrameError`;
* bad magic, a checksum mismatch, an oversized length or a non-object
  body is corruption or a protocol-confused peer —
  :class:`ProtocolError`.  Neither is ever silently skipped: a framed
  stream has no resynchronization point, so the connection is the unit
  of failure.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import IO, Any

from repro.core.exceptions import ReproError

#: Protocol revision magic; the trailing newline keeps accidental HTTP
#: or journal traffic from parsing as a frame header.
MAGIC = b"RC1\n"

#: ``length | crc32`` header that follows the magic.
_HEADER = struct.Struct(">II")

#: Frames above this size are rejected on both sides (job payloads and
#: results are small; this bounds memory per connection).
MAX_FRAME_BYTES = 16 * 1024 * 1024


#: The cluster op vocabulary — one constant per frame kind.  Every
#: frame-construction and dispatch site in the cluster modules uses
#: these names; the PROTO01 lint holds both to :data:`PROTOCOL_OPS`.
OP_REGISTER = "register"
OP_JOB = "job"
OP_RESULT = "result"
OP_HEARTBEAT = "heartbeat"
OP_DRAIN = "drain"
OP_DRAINED = "drained"
OP_PING = "ping"
OP_PONG = "pong"
OP_HELLO = "hello"
OP_LOOKUP = "lookup"
OP_PUBLISH = "publish"
OP_STATS = "stats"


@dataclass(frozen=True)
class OpSpec:
    """One declared frame kind of the cluster wire vocabulary.

    ``senders``/``receivers`` name cluster modules (``coordinator``,
    ``node``, ``memod``, ``memoclient``); the PROTO01 lint checks every
    construction site against ``senders``+``required`` and proves each
    receiver dispatches on exactly its declared ops.  ``optional``
    documents fields a peer may include but no receiver requires.

    Reply frames carrying no ``"op"`` key (the coordinator's
    registration ack, memod's ``{"ok": …}`` responses) are outside the
    vocabulary on purpose: they answer exactly one request on the same
    connection and are never dispatched on.
    """

    name: str
    required: tuple[str, ...]
    senders: tuple[str, ...]
    receivers: tuple[str, ...]
    optional: tuple[str, ...] = ()


#: The declared vocabulary — the single source of truth for PROTO01.
PROTOCOL_OPS: tuple[OpSpec, ...] = (
    OpSpec(OP_REGISTER, ("node", "protocol"), ("node",), ("coordinator",),
           optional=("token",)),
    OpSpec(OP_JOB, ("payload",), ("coordinator",), ("node",)),
    OpSpec(OP_RESULT, ("job_id", "payload"), ("node",), ("coordinator",)),
    OpSpec(OP_HEARTBEAT, ("node",), ("node",), ("coordinator",)),
    OpSpec(OP_DRAIN, (), ("coordinator",), ("node",)),
    OpSpec(OP_DRAINED, ("node",), ("node",), ("coordinator",)),
    OpSpec(OP_PING, (), ("memoclient", "coordinator"), ("memod", "node"),
           optional=("seq",)),
    OpSpec(OP_PONG, ("node",), ("node",), ("coordinator",),
           optional=("seq",)),
    OpSpec(OP_HELLO, ("client",), ("memoclient",), ("memod",),
           optional=("token",)),
    OpSpec(OP_LOOKUP, ("key",), ("memoclient",), ("memod",),
           optional=("client",)),
    OpSpec(OP_PUBLISH, ("key", "verdict", "bits"), ("memoclient",),
           ("memod",), optional=("client",)),
    OpSpec(OP_STATS, (), ("memoclient",), ("memod",)),
)

#: Registry by op name (what the checker and the tests consume).
OPS_BY_NAME: dict[str, OpSpec] = {spec.name: spec for spec in PROTOCOL_OPS}

#: Constant-name → op-name table so the lint can resolve ``OP_*``
#: references at dispatch and construction sites.
OP_CONSTANTS: dict[str, str] = {
    "OP_REGISTER": OP_REGISTER,
    "OP_JOB": OP_JOB,
    "OP_RESULT": OP_RESULT,
    "OP_HEARTBEAT": OP_HEARTBEAT,
    "OP_DRAIN": OP_DRAIN,
    "OP_DRAINED": OP_DRAINED,
    "OP_PING": OP_PING,
    "OP_PONG": OP_PONG,
    "OP_HELLO": OP_HELLO,
    "OP_LOOKUP": OP_LOOKUP,
    "OP_PUBLISH": OP_PUBLISH,
    "OP_STATS": OP_STATS,
}


class ProtocolError(ReproError):
    """A corrupt or protocol-confused frame (connection must be dropped)."""


class TornFrameError(ProtocolError):
    """The stream ended mid-frame — the peer died while writing."""


def encode_frame(payload: dict[str, Any]) -> bytes:
    """Serialize one payload to its canonical frame bytes.

    Raises:
        ProtocolError: the encoded body exceeds :data:`MAX_FRAME_BYTES`.
    """
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    return MAGIC + _HEADER.pack(len(body), zlib.crc32(body)) + body


def _read_exact(stream: IO[bytes], count: int) -> bytes:
    """Read exactly ``count`` bytes, tolerating short reads from sockets."""
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream: IO[bytes]) -> dict[str, Any] | None:
    """Read one frame from a binary stream.

    Returns:
        The decoded payload, or None on a clean EOF at a frame boundary.

    Raises:
        TornFrameError: EOF landed inside a frame.
        ProtocolError: bad magic, checksum mismatch, oversized length,
            or a body that is not a JSON object.
    """
    magic = _read_exact(stream, len(MAGIC))
    if not magic:
        return None
    if len(magic) < len(MAGIC):
        raise TornFrameError("stream ended inside the frame magic")
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    header = _read_exact(stream, _HEADER.size)
    if len(header) < _HEADER.size:
        raise TornFrameError("stream ended inside the frame header")
    length, checksum = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte bound"
        )
    body = _read_exact(stream, length)
    if len(body) < length:
        raise TornFrameError(
            f"stream ended inside the frame body ({len(body)}/{length} bytes)"
        )
    if zlib.crc32(body) != checksum:
        raise ProtocolError("frame checksum mismatch")
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"frame body is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


class FramedSocket:
    """One connected socket speaking frames, safe for concurrent senders.

    Receiving stays single-consumer (each side dedicates one reader
    thread per connection); sending is serialized by a lock so a
    heartbeat thread and a result-sending thread never interleave
    bytes of two frames.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._socket = sock
        self._reader: IO[bytes] = sock.makefile("rb")
        self._send_lock = threading.Lock()
        self._closed = False

    @classmethod
    def connect(
        cls, host: str, port: int, timeout: float | None = 10.0
    ) -> "FramedSocket":
        """Dial ``host:port`` and wrap the connection.

        The connect timeout bounds only the dial; the established socket
        is switched back to blocking (frame reads block until the peer
        writes or dies).
        """
        sock = socket.create_connection((host, port), timeout=timeout)
        try:
            sock.settimeout(None)
            return cls(sock)
        except OSError:
            # settimeout or the makefile() in __init__ failing would
            # otherwise leak the freshly dialed socket (RES01).
            sock.close()
            raise

    def send(self, payload: dict[str, Any]) -> None:
        """Send one frame (atomic with respect to concurrent senders)."""
        frame = encode_frame(payload)
        with self._send_lock:
            self._socket.sendall(frame)  # analysis: allow[BLK01] the send lock exists to serialize exactly this write; nothing else ever waits on it

    def recv(self) -> dict[str, Any] | None:
        """Receive one frame; None on a clean close (see :func:`read_frame`)."""
        try:
            return read_frame(self._reader)
        except ValueError:
            # close() racing a blocked recv leaves the buffered reader
            # raising "I/O operation on closed file" — a local close is
            # a clean end of stream, not corruption.
            return None

    def close(self) -> None:
        """Close both directions (idempotent; unblocks a pending recv)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._socket.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._reader.close()
        except OSError:
            pass
        self._socket.close()

    @property
    def closed(self) -> bool:
        return self._closed
