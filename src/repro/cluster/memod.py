"""The external check-memo service: ``python -m repro.cluster.memod``.

One :class:`~repro.api.memo.SharedCheckMemo` behind a framed TCP
listener, so *every node in the cluster* shares one store of decided
check verdicts — the cross-node analogue of PR 5's cross-worker memo.
Keys are the process-independent :mod:`repro.smt.wire` structural
digests (layout signature + assertion/extras/frontier digest), so two
nodes that assert the same formulas from the same sealed base scope
produce the same key even though their term objects live on different
machines; the soundness argument is unchanged from the in-process store.

Request/response ops (one frame each way, over
:mod:`repro.cluster.protocol`):

``hello``    ``{"op": "hello", "client": id, "token": t?}`` — must be the
             connection's first frame; authenticates when a token set is
             configured (401-style structured error otherwise).
``lookup``   ``{"op": "lookup", "key": k}`` →
             ``{"ok": true, "found": [verdict, bits] | null}``
``publish``  ``{"op": "publish", "key": k, "verdict": v, "bits": b}``
``stats``    counter snapshot of the store plus service-level counters.
``ping``     liveness probe.

The service is stateless beyond the LRU store: a memod restart merely
costs warm entries (clients degrade to local-only and re-arm; see
:class:`~repro.cluster.memoclient.ClusterMemoClient`).  The
``memod.down`` fault point sits in the per-request loop so tests can
kill connections — or the whole handler — deterministically.
"""

from __future__ import annotations

import argparse
import socket
import threading
from pathlib import Path
from typing import Any

from repro.analysis.annotations import guarded_by
from repro.api.memo import SharedCheckMemo
from repro.cluster.auth import TokenSet, ensure_bind_allowed
from repro.cluster.protocol import (
    OP_HELLO,
    OP_LOOKUP,
    OP_PING,
    OP_PUBLISH,
    OP_STATS,
    FramedSocket,
    ProtocolError,
)
from repro.testing import faults
from repro.testing.faults import fault_point

#: Default LRU capacity of the served store.
DEFAULT_CAPACITY = 65536


def _error(message: str, status: int = 400) -> dict[str, Any]:
    return {"ok": False, "error": message, "status": status}


@guarded_by("_lock", "_connections", "_auth_failures", "_requests")
class MemoService:
    """The threaded TCP server wrapping one shared memo store.

    Args:
        host: bind address (non-loopback requires a token set).
        port: bind port (0 = ephemeral; read back from :attr:`port`).
        capacity: LRU bound of the served store.
        tokens: accepted auth tokens (empty set = open, loopback only).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        capacity: int = DEFAULT_CAPACITY,
        tokens: TokenSet | None = None,
    ) -> None:
        self.tokens = tokens or TokenSet()
        ensure_bind_allowed(host, self.tokens, "memo service")
        self.store = SharedCheckMemo(capacity)
        self._listener = socket.create_server((host, port))
        self._lock = threading.Lock()
        self._connections = 0
        self._auth_failures = 0
        self._requests = 0
        self._closed = False
        self._accept_thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return str(self._listener.getsockname()[0])

    @property
    def port(self) -> int:
        return int(self._listener.getsockname()[1])

    def start(self) -> None:
        """Serve in the background (one thread per connection)."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="memod-accept", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            try:
                with self._lock:
                    self._connections += 1
                threading.Thread(
                    target=self._serve_connection,
                    args=(FramedSocket(connection),),
                    name="memod-conn",
                    daemon=True,
                ).start()
            except Exception:
                # Thread creation fails under thread exhaustion; the
                # accepted socket must not outlive the failed handoff
                # (RES01).
                connection.close()
                raise

    def _serve_connection(self, link: FramedSocket) -> None:
        authenticated = not self.tokens.required()
        try:
            while True:
                # Fault site: an armed `raise` here drops the connection
                # mid-conversation — exactly what a dead memod looks like
                # to a client, driving its degraded-mode path.
                fault_point("memod.down")
                request = link.recv()
                if request is None:
                    return
                response, authenticated = self._handle(request, authenticated)
                link.send(response)
        except (ProtocolError, OSError):
            return
        finally:
            link.close()

    def _handle(
        self, request: dict[str, Any], authenticated: bool
    ) -> tuple[dict[str, Any], bool]:
        """One request → (response, new authenticated state)."""
        with self._lock:
            self._requests += 1
        op = request.get("op")
        if op == OP_HELLO:
            if self.tokens.required():
                identity = self.tokens.identify(request.get("token"))
                if identity is None:
                    with self._lock:
                        self._auth_failures += 1
                    return _error("authentication failed", 401), False
            return {"ok": True}, True
        if not authenticated:
            with self._lock:
                self._auth_failures += 1
            return _error("authenticate with a hello frame first", 401), False
        if op == OP_PING:
            return {"ok": True}, True
        if op == OP_LOOKUP:
            key = request.get("key")
            client = str(request.get("client", "anonymous"))
            if not isinstance(key, str):
                return _error("'key' must be a string"), True
            found = self.store.lookup(key, client)
            return {
                "ok": True,
                "found": None if found is None else [found[0], found[1]],
            }, True
        if op == OP_PUBLISH:
            key = request.get("key")
            verdict = request.get("verdict")
            bits = request.get("bits")
            client = str(request.get("client", "anonymous"))
            if not isinstance(key, str) or not isinstance(verdict, str):
                return _error("'key' and 'verdict' must be strings"), True
            if bits is not None and not isinstance(bits, list):
                return _error("'bits' must be a list of booleans or null"), True
            self.store.publish(key, verdict, bits, client)
            return {"ok": True}, True
        if op == OP_STATS:
            return {"ok": True, "statistics": self.statistics()}, True
        return _error(f"unknown op {op!r}"), True

    def statistics(self) -> dict[str, Any]:
        """Store counters plus service-level connection counters."""
        with self._lock:
            service = {
                "connections": self._connections,
                "auth_failures": self._auth_failures,
                "requests": self._requests,
            }
        record = self.store.statistics()
        record["service"] = service
        return record

    def close(self) -> None:
        """Stop accepting and close the listener (idempotent).

        Per-connection threads exit on their next read (clients see the
        close as a degraded service and fall back to local-only mode).
        """
        if self._closed:
            return
        self._closed = True
        # shutdown() before close(): a thread blocked in accept() holds
        # a kernel reference that keeps a merely-closed listener serving;
        # shutting the socket down unblocks it immediately.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.memod",
        description="Serve the shared check memo to sciduction nodes.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--port-file",
        type=Path,
        default=None,
        help="write the bound port here once listening",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=DEFAULT_CAPACITY,
        help="LRU bound on stored check verdicts",
    )
    parser.add_argument(
        "--auth-token",
        default=None,
        help="accepted token spec (falls back to REPRO_AUTH_TOKEN)",
    )
    arguments = parser.parse_args(argv)
    faults.install_from_env()
    service = MemoService(
        host=arguments.host,
        port=arguments.port,
        capacity=arguments.capacity,
        tokens=TokenSet.from_env(arguments.auth_token),
    )
    service.start()
    print(
        f"sciduction memo service listening on {service.host}:{service.port}",
        flush=True,
    )
    if arguments.port_file is not None:
        arguments.port_file.write_text(f"{service.port}\n")
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
