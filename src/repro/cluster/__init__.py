"""Multi-node sciduction: coordinator, node agents, and the memo service.

One :class:`~repro.api.engine.SciductionEngine` process cannot serve the
north-star traffic no matter how warm its solver pool is.  This package
shards the engine across machines while preserving the property every
other layer is built on: **cluster results are byte-identical to a
sequential run**.

Topology (three process roles, all stdlib sockets + JSON):

* the **coordinator** (:mod:`repro.cluster.coordinator`,
  ``python -m repro.cluster.coordinator``) reuses the PR-5 HTTP front
  end, journal, certificate store and admission control unchanged, but
  swaps the engine for a :class:`~repro.cluster.coordinator.ClusterEngine`
  that scatters each batch to registered nodes by
  ``ProblemSpec.shape_key()`` under deterministic rendezvous hashing
  (:mod:`repro.cluster.hashring`) and gathers wire-form results back.
  Assignments and reshards are journaled through the PR-7 WAL, so a
  node death mid-batch is recovered by re-sharding the dead node's
  unfinished jobs onto the survivors — in submission order, preserving
  the per-shape history that byte-parity rests on;
* a **node agent** (:mod:`repro.cluster.node`,
  ``python -m repro.cluster.node``) wraps one persistent engine behind
  the length-prefixed JSON frame protocol (:mod:`repro.cluster.protocol`)
  with heartbeats, graceful drain, and automatic re-registration;
* the **memo service** (:mod:`repro.cluster.memod`,
  ``python -m repro.cluster.memod``) serves the shared check memo over
  the same frames, keyed by the :mod:`repro.smt.wire` structural
  digests, so cross-*node* check-memo hits work exactly like the PR-5
  cross-worker hits.  Nodes reach it through
  :class:`~repro.cluster.memoclient.ClusterMemoClient` — a read-through
  local cache that degrades to silent local-only operation (counted in
  statistics) while the service is down, and re-arms when it returns.

Auth (:mod:`repro.cluster.auth`): a shared token (``--auth-token`` /
``REPRO_AUTH_TOKEN``, constant-time compare) is required before any of
the three roles binds — or dials — a non-loopback address; HTTP callers
present it as a bearer token, protocol peers in their first frame.
"""

from repro.cluster.auth import TokenSet, ensure_bind_allowed
from repro.cluster.hashring import rendezvous_owner, rendezvous_rank
from repro.cluster.protocol import (
    FramedSocket,
    ProtocolError,
    TornFrameError,
    encode_frame,
    read_frame,
)

__all__ = [
    "FramedSocket",
    "ProtocolError",
    "TokenSet",
    "TornFrameError",
    "encode_frame",
    "ensure_bind_allowed",
    "read_frame",
    "rendezvous_owner",
    "rendezvous_rank",
]
