"""Deterministic rendezvous (highest-random-weight) shape placement.

The byte-parity guarantee rests on every shape's jobs running on *one*
engine, in submission order, from a freshly sealed base scope.  Across a
cluster that means shape → node ownership must be:

* **deterministic** — any coordinator replica (and any test) computes
  the same owner from the same node set, with no state to persist;
* **minimally disruptive** — when a node dies, only the shapes it owned
  move (each to its own runner-up), so surviving nodes keep their warm
  sessions and memo entries.

Rendezvous hashing gives both: every ``(shape, node)`` pair is scored by
a keyed SHA-256 digest and a shape is owned by its highest-scoring live
node.  Removing a node only promotes that node's shapes to their
second-ranked choice; adding a node only claims the shapes it now ranks
first on.  No ring state, no virtual-node tables — the function *is* the
assignment.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from repro.core.exceptions import ReproError


def _score(shape: str, node: str) -> int:
    """The rendezvous weight of placing ``shape`` on ``node``.

    The NUL separator keeps ``("ab", "c")`` and ``("a", "bc")`` from
    colliding; SHA-256 keeps the weights stable across processes and
    Python hash randomization.
    """
    digest = hashlib.sha256(
        shape.encode("utf-8") + b"\x00" + node.encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:16], "big")


def rendezvous_rank(shape: str, nodes: Sequence[str]) -> list[str]:
    """Every candidate node, best owner first.

    The full rank is what failover consumes: when the owner dies, the
    shape moves to ``rank[1]``, then ``rank[2]``, and so on — each
    *shape* independently, which is what makes the movement minimal.
    Duplicate node names collapse to one candidate.
    """
    if not nodes:
        raise ReproError("rendezvous rank of an empty node set")
    unique = sorted(dict.fromkeys(nodes))
    return sorted(unique, key=lambda node: (-_score(shape, node), node))


def rendezvous_owner(shape: str, nodes: Sequence[str]) -> str:
    """The owning node for ``shape`` among ``nodes``."""
    return rendezvous_rank(shape, nodes)[0]
