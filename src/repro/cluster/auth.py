"""Shared-token authentication for every cluster-facing surface.

The single-node service only ever bound loopback, so it could defer an
auth story; a cluster cannot — coordinator, nodes and the memo service
talk over real network sockets.  The model is deliberately small:

* a **token set** is parsed from ``--auth-token`` or the
  ``REPRO_AUTH_TOKEN`` environment variable: comma-separated entries,
  each either a bare shared secret or ``identity:secret``.  A bare
  secret authenticates as :data:`DEFAULT_IDENTITY`; the two-part form
  lets distinct callers (CI shards, teammates, node fleets) share one
  service while keeping per-client accounting honest — the
  authenticated identity overrides whatever ``client`` tag the request
  body claims;
* comparison is **constant time** (:func:`hmac.compare_digest` over the
  full presented token against every entry — the loop never exits
  early), so response timing leaks neither a near-miss nor which entry
  matched;
* **binding a non-loopback address without a token set is refused**
  (:func:`ensure_bind_allowed`), and so is *dialing* one — an operator
  cannot accidentally expose an unauthenticated engine, coordinator or
  memo service to a network.

HTTP callers present the token as ``Authorization: Bearer <token>``
(401 with a structured body and ``WWW-Authenticate`` otherwise);
protocol peers carry it in their first (``register``/``hello``) frame.
"""

from __future__ import annotations

import hmac
import ipaddress
import os

from repro.core.exceptions import ReproError

#: Identity assigned to bare (identity-less) token entries.
DEFAULT_IDENTITY = "authenticated"

#: Environment variable consulted when no ``--auth-token`` is given.
TOKEN_ENV = "REPRO_AUTH_TOKEN"


class AuthConfigError(ReproError):
    """A malformed token specification or a refused unauthenticated bind."""


class TokenSet:
    """The set of accepted tokens, mapping each to an identity.

    Args:
        entries: ``(identity, secret)`` pairs.  Empty means auth is not
            required (loopback-only deployments).
    """

    def __init__(self, entries: list[tuple[str, str]] | None = None) -> None:
        self._entries: list[tuple[str, str]] = list(entries or [])

    @classmethod
    def from_spec(cls, spec: str | None) -> "TokenSet":
        """Parse a ``--auth-token`` / ``REPRO_AUTH_TOKEN`` specification.

        Grammar: comma-separated entries, each ``secret`` or
        ``identity:secret``.  The *presented* token is always the full
        entry text — for ``ci:sekret`` a caller sends ``ci:sekret``, and
        is accounted as client ``ci``.

        Raises:
            AuthConfigError: an entry is empty, or an identity/secret
                half is empty.
        """
        entries: list[tuple[str, str]] = []
        for raw in (spec or "").split(","):
            raw = raw.strip()
            if not raw:
                continue
            identity, separator, secret = raw.partition(":")
            if separator:
                if not identity or not secret:
                    raise AuthConfigError(
                        "token entries using identity:secret need both halves"
                    )
                entries.append((identity, raw))
            else:
                entries.append((DEFAULT_IDENTITY, raw))
        if spec is not None and spec.strip() and not entries:
            raise AuthConfigError(f"no token entries in spec {spec!r}")
        return cls(entries)

    @classmethod
    def from_env(cls, cli_value: str | None) -> "TokenSet":
        """The token set from the CLI value, else :data:`TOKEN_ENV`."""
        if cli_value is not None:
            return cls.from_spec(cli_value)
        return cls.from_spec(os.environ.get(TOKEN_ENV))

    def required(self) -> bool:
        """Whether any token is configured (auth must then be presented)."""
        return bool(self._entries)

    def identify(self, presented: str | None) -> str | None:
        """The identity the presented token authenticates as, or None.

        Constant time: every configured entry is compared with
        :func:`hmac.compare_digest` regardless of earlier matches, so
        timing reveals neither a partial match nor the matching entry's
        position.  With no tokens configured, any caller (including one
        presenting nothing) is anonymous — returns None, but
        :meth:`required` is False so callers treat that as allowed.
        """
        if presented is None:
            return None
        presented_bytes = presented.encode("utf-8")
        matched: str | None = None
        for identity, token in self._entries:
            if hmac.compare_digest(token.encode("utf-8"), presented_bytes):
                matched = identity
        return matched

    def first_token(self) -> str | None:
        """The first configured token (what an outbound peer presents)."""
        if not self._entries:
            return None
        return self._entries[0][1]


def is_loopback(host: str) -> bool:
    """Whether ``host`` can only be reached from this machine.

    ``localhost`` and the empty host (AF_INET wildcard semantics differ,
    so empty is *not* loopback) are special-cased; anything else is
    parsed as an address — unparseable hostnames are conservatively
    treated as non-loopback.
    """
    if host == "localhost":
        return True
    if not host:
        return False
    try:
        return ipaddress.ip_address(host).is_loopback
    except ValueError:
        return False


def ensure_bind_allowed(host: str, tokens: TokenSet, role: str) -> None:
    """Refuse to expose an unauthenticated listener beyond loopback.

    Args:
        host: the requested bind (or dial) address.
        tokens: the configured token set.
        role: short human name for the error ("coordinator", "node", …).

    Raises:
        AuthConfigError: ``host`` is not loopback and no token is set.
    """
    if tokens.required() or is_loopback(host):
        return
    raise AuthConfigError(
        f"refusing to expose the {role} on non-loopback address {host!r} "
        f"without authentication — set --auth-token or {TOKEN_ENV}"
    )
