"""Node-side client for the external memo service, with degraded mode.

:class:`ClusterMemoClient` is the ``memo_backend`` a node installs on
its :class:`~repro.api.pool.SolverPool` (via
``SolverPool(memo_backend=…)`` / ``set_memo_backend``): the solver
consults it after its own in-memory memo misses, exactly like the
in-process :class:`~repro.api.memo.MemoClient`.  Two behaviors are new
for a network-backed store:

* **read-through local cache** — a remote hit (and every local publish)
  is copied into a bounded local :class:`~repro.api.memo.SharedCheckMemo`,
  so the socket round trip for a given key is paid once per node, and a
  degraded client keeps answering everything this node ever learned;
* **degraded mode with re-arm** — :class:`~repro.api.memo.MemoClient`
  marks itself *permanently* broken on the first transport failure,
  which is correct for a dead ``multiprocessing`` manager (it never
  comes back) but wrong for a network service that restarts.  This
  client instead counts the failure, answers local-only (silently — the
  solver never sees the outage), and retries the connection after a
  fixed number of skipped calls.  The back-off is **counter-based, not
  clock-based**: deterministic under replay, and free of wall-clock
  reads in a lint-enforced clock-free zone.

Everything here is fail-open: no store outage, slow socket or protocol
error ever raises into a solving job.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.analysis.annotations import guarded_by
from repro.api.memo import SharedCheckMemo
from repro.cluster.protocol import (
    OP_HELLO,
    OP_LOOKUP,
    OP_PING,
    OP_PUBLISH,
    OP_STATS,
    FramedSocket,
    ProtocolError,
)

#: Remote calls skipped after a transport failure before re-arming.
#: Counter-based (one skip per shared-memo consultation), so a node
#: solving a long batch retries every so often without ever reading a
#: clock.
REARM_AFTER_CALLS = 64

#: Default capacity of the node-local read-through cache.
LOCAL_CACHE_CAPACITY = 4096


class RemoteMemoStore:
    """Blocking framed RPC to one memo service (errors raise).

    Connection state is lazy: the first call dials and authenticates;
    any failure tears the connection down so the next call re-dials.
    Thread-safe — one request/response exchange at a time.
    """

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str,
        token: str | None = None,
        timeout: float = 10.0,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.token = token
        self.timeout = timeout
        self._lock = threading.Lock()
        self._link: FramedSocket | None = None

    def _connected(self) -> FramedSocket:
        if self._link is None:
            hello: dict[str, Any] = {"op": OP_HELLO, "client": self.client_id}
            if self.token is not None:
                hello["token"] = self.token
            link = FramedSocket.connect(self.host, self.port, self.timeout)
            try:
                link.send(hello)
                response = link.recv()
                if response is None or not response.get("ok"):
                    message = "connection closed during hello" \
                        if response is None \
                        else str(response.get("error", "hello rejected"))
                    raise ProtocolError(
                        f"memo service hello failed: {message}"
                    )
            except Exception:
                # The handshake died before this link was published to
                # self._link — nobody else can close it (RES01).
                link.close()
                raise
            self._link = link
        return self._link

    def _call(self, request: dict[str, Any]) -> dict[str, Any]:
        with self._lock:
            try:
                link = self._connected()
                link.send(request)  # analysis: allow[BLK01] single-outstanding-request RPC: the lock pairs this send with its reply by design
                response = link.recv()  # analysis: allow[BLK01] single-outstanding-request RPC: the lock pairs the reply with its send by design
            except (OSError, ProtocolError):
                self._teardown()
                raise
            if response is None:
                self._teardown()
                raise ProtocolError("memo service closed the connection")
            if not response.get("ok"):
                raise ProtocolError(
                    str(response.get("error", "memo service refused the call"))
                )
            return response

    def _teardown(self) -> None:
        if self._link is not None:
            self._link.close()
            self._link = None

    def lookup(self, key: str) -> tuple[str, list[bool] | None] | None:
        response = self._call(
            {"op": OP_LOOKUP, "key": key, "client": self.client_id}
        )
        found = response.get("found")
        if found is None:
            return None
        verdict, bits = found
        return str(verdict), None if bits is None else list(bits)

    def publish(
        self, key: str, verdict: str, model_bits: list[bool] | None
    ) -> None:
        self._call(
            {
                "op": OP_PUBLISH,
                "key": key,
                "verdict": verdict,
                "bits": model_bits,
                "client": self.client_id,
            }
        )

    def statistics(self) -> dict[str, Any]:
        response = self._call({"op": OP_STATS})
        record = response.get("statistics")
        return record if isinstance(record, dict) else {}

    def ping(self) -> bool:
        try:
            self._call({"op": OP_PING})
            return True
        except (OSError, ProtocolError):
            return False

    def close(self) -> None:
        with self._lock:
            self._teardown()


@guarded_by("_lock", "_cooldown", "_counters")
class ClusterMemoClient:
    """Solver memo backend: local cache over the remote store, fail-open.

    Duck-typed to :meth:`repro.smt.solver.SmtSolver.set_memo_backend`:
    ``lookup(key)`` and ``publish(key, verdict, bits)``.

    Args:
        remote: the RPC handle (its failures are absorbed, counted, and
            retried after :data:`REARM_AFTER_CALLS` skipped calls).
        cache_capacity: bound on the node-local read-through cache.
    """

    def __init__(
        self,
        remote: RemoteMemoStore,
        cache_capacity: int = LOCAL_CACHE_CAPACITY,
    ) -> None:
        self.remote = remote
        self.cache = SharedCheckMemo(cache_capacity)
        self._lock = threading.Lock()
        #: Remote calls still to skip before the next reconnect attempt
        #: (0 = armed).
        self._cooldown = 0
        self._counters = {
            "local_hits": 0,
            "remote_hits": 0,
            "remote_misses": 0,
            "publishes": 0,
            "degraded_calls": 0,
            "degradations": 0,
            "rearms": 0,
        }

    def _count(self, counter: str) -> None:
        with self._lock:
            self._counters[counter] += 1

    def _remote_allowed(self) -> bool:
        """Whether this call may touch the network (else: degraded skip).

        Decrements the cooldown; the call that brings it to zero is
        allowed through as the re-arm probe.
        """
        with self._lock:
            if self._cooldown == 0:
                return True
            self._cooldown -= 1
            self._counters["degraded_calls"] += 1
            if self._cooldown > 0:
                return False
        # Cooldown just expired: this call is the probe.  A success
        # below counts as the re-arm; a failure restarts the cooldown.
        self._count("rearms")
        return True

    def _degrade(self) -> None:
        with self._lock:
            self._cooldown = REARM_AFTER_CALLS
            self._counters["degradations"] += 1

    def lookup(self, key: str) -> tuple[str, list[bool] | None] | None:
        cached = self.cache.lookup(key, self.remote.client_id)
        if cached is not None:
            self._count("local_hits")
            return cached
        if not self._remote_allowed():
            return None
        try:
            found = self.remote.lookup(key)
        except Exception:
            self._degrade()
            return None
        if found is None:
            self._count("remote_misses")
            return None
        self._count("remote_hits")
        verdict, bits = found
        self.cache.publish(key, verdict, bits, "remote")
        return found

    def publish(
        self, key: str, verdict: str, model_bits: list[bool] | None
    ) -> None:
        self._count("publishes")
        # Local first: even a fully degraded client keeps serving what
        # this node decided.
        self.cache.publish(key, verdict, model_bits, self.remote.client_id)
        if not self._remote_allowed():
            return
        try:
            self.remote.publish(key, verdict, model_bits)
        except Exception:
            self._degrade()

    def degraded(self) -> bool:
        """Whether remote calls are currently being skipped."""
        with self._lock:
            return self._cooldown > 0

    def statistics(self) -> dict[str, Any]:
        """JSON-ready counters (plus the local cache's own counters)."""
        with self._lock:
            record: dict[str, Any] = dict(self._counters)
            record["degraded"] = self._cooldown > 0
        record["local_cache"] = self.cache.statistics()
        return record

    def close(self) -> None:
        self.remote.close()
