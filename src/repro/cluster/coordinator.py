"""The cluster coordinator: ``python -m repro.cluster.coordinator``.

:class:`ClusterEngine` subclasses :class:`~repro.api.engine.SciductionEngine`
and replaces *how batches execute* while keeping every other contract —
submission, cancellation, pruning, the job-handle surface the service
queue drives — unchanged.  The PR-5 HTTP front end, journal, certificate
store and admission control are reused verbatim: the coordinator process
is simply ``SciductionService(engine=ClusterEngine(...))``.

Sharding preserves byte-parity by construction:

* every job's shape (``ProblemSpec.shape_key()``) is owned by exactly
  one live node, chosen by deterministic rendezvous hashing
  (:mod:`repro.cluster.hashring`) over the sorted live-node names;
* a node receives its jobs in submission order, and its engine runs
  them sequentially on shape-routed pooled sessions — exactly the
  per-shape history the sequential engine produces, so verdicts,
  artifacts and certificates are byte-identical to a single-node run
  (per-job *statistics* may differ between topologies, as they already
  may between worker counts);
* on node death (connection drop, which covers ``kill -9``, network
  partitions and crashes alike) the dead node's unfinished jobs are
  re-sharded onto the survivors *in submission order* and re-sent; the
  scoped-lease guarantee (verdicts are independent of which session a
  job lands on) keeps the re-run byte-identical too.

Durability: assignments (``assigned``) and failover (``resharded``)
are journaled through the PR-7 WAL.  Replay folds them as history —
they are neither acceptances nor finishes, so a restarted coordinator
re-enqueues exactly the accepted-but-unfinished jobs, with the WAL
recording where each attempt had been placed.
"""

from __future__ import annotations

import argparse
import signal
import socket
import sys
import threading
import time
from pathlib import Path
from types import FrameType
from typing import Any

from repro.analysis.annotations import guarded_by
from repro.api.config import EngineConfig
from repro.api.engine import Job, JobState, SciductionEngine
from repro.api.results import result_from_dict
from repro.cluster.auth import TokenSet, ensure_bind_allowed
from repro.cluster.hashring import rendezvous_owner
from repro.cluster.memoclient import RemoteMemoStore
from repro.cluster.node import PROTOCOL_VERSION, parse_endpoint
from repro.cluster.protocol import (
    OP_DRAIN,
    OP_DRAINED,
    OP_HEARTBEAT,
    OP_JOB,
    OP_PONG,
    OP_REGISTER,
    OP_RESULT,
    FramedSocket,
    ProtocolError,
)
from repro.core.procedure import SciductionResult
from repro.service.journal import JobJournal, JournalError
from repro.service.server import SciductionService
from repro.testing import faults
from repro.testing.faults import fault_point

#: Journal events written by the coordinator (folded as history by
#: replay: they are neither acceptances nor finishes).
EVENT_ASSIGNED = "assigned"
EVENT_RESHARDED = "resharded"

#: How long the dispatch loop sleeps waiting for results/registrations
#: before re-scanning (a backstop — every event also notifies).
_DISPATCH_WAIT_SLICE = 0.25


class _NodeLink:
    """One registered node's connection, as the coordinator sees it."""

    def __init__(self, name: str, link: FramedSocket, generation: int) -> None:
        self.name = name
        self.link = link
        #: Re-registrations bump the generation; a stale link's death
        #: must not kill its successor.
        self.generation = generation

    def send_job(self, payload: dict[str, Any]) -> None:
        # Fault site: an armed `raise` here severs the coordinator→node
        # path mid-dispatch — the observable behavior of a network
        # partition — and drives the reshard path deterministically.
        fault_point("net.partition")
        self.link.send({"op": OP_JOB, "payload": payload})


@guarded_by(
    "_cluster_lock",
    "_links", "_node_stats", "_events", "_reshard_log", "_generations",
    aliases=("_cluster_wakeup",),
)
class ClusterEngine(SciductionEngine):
    """An engine whose batches execute on registered remote nodes.

    Args:
        config: engine configuration; ``workers`` is ignored here (the
            nodes own the solving), but the config still ships to
            ``/stats`` and governs problem validation.
        host: cluster listener bind address.
        port: cluster listener port (0 = ephemeral, see
            :attr:`cluster_port`).
        tokens: auth tokens nodes must present at registration.
        node_wait: seconds a batch waits for at least one live node (and
            for a replacement when every node died mid-batch) before
            failing the affected jobs with a structured result.
        memod: optional memo-service endpoint, queried for ``/stats``.
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        tokens: TokenSet | None = None,
        node_wait: float = 30.0,
        memod: tuple[str, int] | None = None,
    ) -> None:
        super().__init__(config)
        self.tokens = tokens or TokenSet()
        ensure_bind_allowed(host, self.tokens, "coordinator")
        self.node_wait = node_wait
        #: Set by the hosting service once its journal exists; the
        #: coordinator appends assignment/reshard records through it.
        self.journal: JobJournal | None = None
        self._memod_stats: RemoteMemoStore | None = None
        if memod is not None:
            self._memod_stats = RemoteMemoStore(
                memod[0],
                memod[1],
                client_id="coordinator",
                token=self.tokens.first_token(),
            )
        self._cluster_lock = threading.Lock()
        self._cluster_wakeup = threading.Condition(self._cluster_lock)
        #: Live links by node name.
        self._links: dict[str, _NodeLink] = {}
        #: Per-node observability (survives death/re-registration).
        self._node_stats: dict[str, dict[str, Any]] = {}
        #: Events for the dispatch loop: ("result", node, job_id, payload)
        #: and ("dead", node); registrations just notify.
        self._events: list[tuple[Any, ...]] = []
        #: Reshard history for ``/stats``.
        self._reshard_log: list[dict[str, Any]] = []
        self._generations = 0
        self._cluster_closed = False
        self._listener = socket.create_server((host, port))
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="cluster-accept", daemon=True
        )
        self._accept_thread.start()

    # -- listener side -----------------------------------------------------

    @property
    def cluster_host(self) -> str:
        return str(self._listener.getsockname()[0])

    @property
    def cluster_port(self) -> int:
        return int(self._listener.getsockname()[1])

    def _accept_loop(self) -> None:
        while not self._cluster_closed:
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._register_connection,
                args=(FramedSocket(connection),),
                name="cluster-register",
                daemon=True,
            ).start()

    def _register_connection(self, link: FramedSocket) -> None:
        """Validate one inbound connection's register frame."""
        try:
            frame = link.recv()
        except (OSError, ProtocolError):
            link.close()
            return
        if frame is None or frame.get("op") != OP_REGISTER:
            link.close()
            return
        name = frame.get("node")
        if not isinstance(name, str) or not name:
            self._reject(link, "registration needs a non-empty node name", 400)
            return
        if frame.get("protocol") != PROTOCOL_VERSION:
            self._reject(
                link,
                f"protocol {frame.get('protocol')!r} is not {PROTOCOL_VERSION}",
                400,
            )
            return
        if self.tokens.required():
            if self.tokens.identify(frame.get("token")) is None:
                self._reject(link, "authentication failed", 401)
                return
        with self._cluster_wakeup:
            previous = self._links.get(name)
            self._generations += 1
            generation = self._generations
            node = _NodeLink(name, link, generation)
            self._links[name] = node
            stats = self._node_stats.setdefault(
                name,
                {
                    "registrations": 0,
                    "heartbeats": 0,
                    "jobs_completed": 0,
                    "shapes": {},
                    "last_heartbeat": None,
                },
            )
            stats["registrations"] += 1
            stats["alive"] = True
            stats["last_heartbeat"] = time.monotonic()  # analysis: allow[WC01] heartbeat-age observability stamp; never a scheduling input
            self._cluster_wakeup.notify_all()
        if previous is not None:
            previous.link.close()
        try:
            link.send({"ok": True, "coordinator": "sciduction"})
        except (OSError, ProtocolError):
            self._node_lost(node)
            return
        threading.Thread(
            target=self._reader_loop,
            args=(node,),
            name=f"cluster-read-{name}",
            daemon=True,
        ).start()

    @staticmethod
    def _reject(link: FramedSocket, message: str, status: int) -> None:
        try:
            link.send({"ok": False, "error": message, "status": status})
        except (OSError, ProtocolError):
            pass
        link.close()

    def _reader_loop(self, node: _NodeLink) -> None:
        """Pump one node's frames into the event queue until it dies."""
        while True:
            try:
                frame = node.link.recv()
            except (OSError, ProtocolError):
                break
            if frame is None:
                break
            op = frame.get("op")
            if op == OP_RESULT:
                with self._cluster_wakeup:
                    self._events.append(
                        ("result", node.name, frame.get("job_id"), frame.get("payload"))
                    )
                    self._cluster_wakeup.notify_all()
            elif op == OP_HEARTBEAT:
                with self._cluster_wakeup:
                    stats = self._node_stats.get(node.name)
                    if stats is not None:
                        stats["heartbeats"] += 1
                        stats["last_heartbeat"] = time.monotonic()  # analysis: allow[WC01] heartbeat-age observability stamp; never a scheduling input
            elif op in (OP_DRAINED, OP_PONG):
                # Acknowledged drains and ping replies carry no state to
                # fold; the drain path watches the connection close and
                # pong consumers read the reply inline.
                pass
            # Unknown ops are ignored: a newer node may speak additions
            # this coordinator does not know.
        self._node_lost(node)

    def _node_lost(self, node: _NodeLink) -> None:
        """Fold one link's death (idempotent; stale generations no-op)."""
        node.link.close()
        with self._cluster_wakeup:
            current = self._links.get(node.name)
            if current is not None and current.generation == node.generation:
                del self._links[node.name]
                stats = self._node_stats.get(node.name)
                if stats is not None:
                    stats["alive"] = False
                self._events.append(("dead", node.name))
                self._cluster_wakeup.notify_all()

    # -- engine overrides --------------------------------------------------

    def prestart_workers(self) -> None:
        """No worker fleet to fork — the nodes are separate processes."""

    def run_wire(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Refuse local execution: a coordinator never solves in-process."""
        raise NotImplementedError("the coordinator does not execute jobs")

    def run_batch(
        self, problems: "list[Any] | None" = None
    ) -> list[SciductionResult]:
        """Scatter every pending job to the live nodes; gather results.

        Returns results in submission order, like the base engine.  All
        failure modes are folded into structured per-job results — a
        batch never raises, even with zero registered nodes.
        """
        for problem in problems or []:
            self.submit(problem)
        with self._state_lock:
            batch = [job for job in self._jobs if job.state is JobState.PENDING]
        if batch:
            self._dispatch_batch(batch)
        results = []
        for job in batch:
            assert job.result is not None
            results.append(job.result)
        return results

    def _dispatch_batch(self, batch: list[Job]) -> None:
        # Jobs not yet accepted by a live node, in submission order.
        pending: list[Job] = []
        # job_id → (job, owning node name) while a node holds the job.
        in_flight: dict[int, tuple[Job, str]] = {}
        open_jobs: dict[int, Job] = {}
        for job in batch:
            with self._state_lock:
                if job.state is not JobState.PENDING:
                    continue  # cancelled while queued; result already set
                job.state = JobState.RUNNING
            pending.append(job)
            open_jobs[job.job_id] = job
        nodeless_deadline: float | None = None
        while open_jobs:
            with self._cluster_wakeup:
                events = self._events[:]
                self._events.clear()
                live = sorted(self._links)
            dead_nodes: list[str] = []
            for event in events:
                if event[0] == "result":
                    _, node_name, job_id, payload = event
                    entry = in_flight.pop(int(job_id), None) if job_id is not None else None
                    if entry is None or not isinstance(payload, dict):
                        continue
                    job, _owner = entry
                    self._complete_remote(job, payload, node_name)
                    open_jobs.pop(job.job_id, None)
                elif event[0] == "dead":
                    dead_nodes.append(event[1])
            for node_name in dead_nodes:
                orphaned = sorted(
                    job_id
                    for job_id, (_job, owner) in in_flight.items()
                    if owner == node_name
                )
                if not orphaned:
                    continue
                for job_id in orphaned:
                    job, _owner = in_flight.pop(job_id)
                    pending.append(job)
                pending.sort(key=lambda job: job.job_id)
                self._record_reshard(node_name, orphaned)
            if pending and live:
                pending = self._dispatch_pending(pending, live, in_flight)
                nodeless_deadline = None
            elif pending and not live:
                # Every node is gone (or none ever registered): bounded
                # wait for a (re-)registration, then fail what remains.
                now = time.monotonic()  # analysis: allow[WC01] node-wait deadline anchor; bounds failover waiting, never a solver input
                if nodeless_deadline is None:
                    nodeless_deadline = now + self.node_wait
                elif now >= nodeless_deadline:
                    for job_id in sorted(open_jobs):
                        if job_id in in_flight:
                            continue
                        self._fail_unplaceable(open_jobs.pop(job_id))
                    pending = []
                    continue
            if not open_jobs:
                break
            with self._cluster_wakeup:
                if not self._events:
                    self._cluster_wakeup.wait(_DISPATCH_WAIT_SLICE)

    def _dispatch_pending(
        self,
        pending: list[Job],
        live: list[str],
        in_flight: dict[int, tuple[Job, str]],
    ) -> list[Job]:
        """Send every pending job to its rendezvous owner.

        Returns the jobs that could not be sent (their target died under
        us — they stay pending and reshard on the next scan).
        """
        unsent: list[Job] = []
        links: dict[str, _NodeLink] = {}
        with self._cluster_lock:
            for name in live:
                node = self._links.get(name)
                if node is not None:
                    links[name] = node
        for job in pending:
            shape = job.problem.shape_key()
            owner = rendezvous_owner(shape, live)
            node = links.get(owner)
            if node is None:
                unsent.append(job)
                continue
            self._journal_soft(
                {
                    "event": EVENT_ASSIGNED,
                    "job": job.job_id,
                    "node": owner,
                    "shape": shape,
                }
            )
            with self._cluster_lock:
                stats = self._node_stats.get(owner)
                if stats is not None:
                    stats["shapes"][shape] = True
            try:
                node.send_job(
                    {
                        "job_id": job.job_id,
                        "problem": job.problem.to_dict(),
                        "max_conflicts": job.max_conflicts,
                        "timeout": job.timeout,
                        "label": job.label,
                    }
                )
            except (OSError, ProtocolError):
                # The link died mid-dispatch (or a net.partition fault
                # fired): fold the death; the job reshards next scan.
                self._node_lost(node)
                unsent.append(job)
                continue
            in_flight[job.job_id] = (job, owner)
        return unsent

    def _complete_remote(
        self, job: Job, payload: dict[str, Any], node_name: str
    ) -> None:
        """Fold one node's wire-form outcome into the job handle."""
        try:
            job.state = JobState(payload["state"])
            job.error = payload["error"]
            job.elapsed = payload["elapsed"]
            result_wire = payload["result"]
            # Attribute the execution in the same place the engine stamps
            # its own metadata (details.engine) — observability only, and
            # stripped by parity comparisons exactly like job_id.
            engine_details = result_wire.get("details", {}).get("engine")
            if isinstance(engine_details, dict):
                engine_details["node"] = node_name
            job._result_wire = result_wire
            job.result = result_from_dict(result_wire)
        except (KeyError, ValueError, TypeError) as error:
            job.state = JobState.FAILED
            job.error = f"malformed result from node {node_name!r}: {error}"
            job.result = SciductionResult(
                success=False,
                details={"outcome": "failed", "error": job.error},
            )
        with self._cluster_lock:
            stats = self._node_stats.get(node_name)
            if stats is not None:
                stats["jobs_completed"] += 1

    def _record_reshard(self, node_name: str, job_ids: list[int]) -> None:
        self._journal_soft(
            {"event": EVENT_RESHARDED, "node": node_name, "jobs": job_ids}
        )
        with self._cluster_lock:
            self._reshard_log.append({"node": node_name, "jobs": job_ids})

    def _fail_unplaceable(self, job: Job) -> None:
        job.state = JobState.FAILED
        job.error = (
            f"no cluster nodes available within {self.node_wait}s; "
            "the job was never placed"
        )
        job.result = SciductionResult(
            success=False,
            details={"outcome": "failed", "error": job.error},
        )
        self._stamp_engine_details(job)

    def _journal_soft(self, payload: dict[str, Any]) -> None:
        if self.journal is None:
            return
        try:
            self.journal.append(payload)
        except JournalError:
            pass  # the queue's journal health surfaces the breakage

    # -- reporting ---------------------------------------------------------

    def cluster_statistics(self) -> dict[str, Any]:
        """The ``/stats`` cluster section: topology, failover, memod."""
        with self._cluster_lock:
            now = time.monotonic()  # analysis: allow[WC01] heartbeat-age observability read; never a scheduling input
            nodes = {}
            for name in sorted(self._node_stats):
                stats = self._node_stats[name]
                last = stats.get("last_heartbeat")
                nodes[name] = {
                    "alive": bool(stats.get("alive")),
                    "registrations": stats["registrations"],
                    "heartbeats": stats["heartbeats"],
                    "heartbeat_age": (
                        None if last is None else round(now - last, 3)
                    ),
                    "jobs_completed": stats["jobs_completed"],
                    "shapes": sorted(stats["shapes"]),
                }
            record: dict[str, Any] = {
                "nodes": nodes,
                "live_nodes": sorted(self._links),
                "reshards": len(self._reshard_log),
                "resharding_events": list(self._reshard_log),
                "auth_required": self.tokens.required(),
            }
        record["memod"] = self._memod_statistics()
        return record

    def _memod_statistics(self) -> dict[str, Any]:
        if self._memod_stats is None:
            return {"configured": False}
        try:
            stats = self._memod_stats.statistics()
        except (OSError, ProtocolError):
            return {"configured": True, "available": False}
        stats["configured"] = True
        stats["available"] = True
        return stats

    # -- lifecycle ---------------------------------------------------------

    def drain_nodes(self) -> None:
        """Ask every live node to finish its queue and exit (best effort)."""
        with self._cluster_lock:
            links = [self._links[name] for name in sorted(self._links)]
        for node in links:
            try:
                node.link.send({"op": OP_DRAIN})
            except (OSError, ProtocolError):
                pass

    def close(self) -> None:
        """Drain nodes, stop the listener, release links (idempotent)."""
        if not self._cluster_closed:
            self._cluster_closed = True
            self.drain_nodes()
            # shutdown() before close(): a thread blocked in accept()
            # holds a kernel reference that keeps a merely-closed
            # listener serving; shutting it down unblocks immediately.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._listener.close()
            self._accept_thread.join(timeout=5.0)
            with self._cluster_lock:
                links = [self._links[name] for name in sorted(self._links)]
                self._links.clear()
            for node in links:
                node.link.close()
            if self._memod_stats is not None:
                self._memod_stats.close()
        super().close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.coordinator",
        description="Serve sciduction jobs over HTTP, sharded across nodes.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="HTTP bind address")
    parser.add_argument(
        "--port", type=int, default=8080, help="HTTP bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--cluster-host",
        default="127.0.0.1",
        help="cluster (node protocol) bind address",
    )
    parser.add_argument(
        "--cluster-port",
        type=int,
        default=0,
        help="cluster (node protocol) bind port (0 = ephemeral)",
    )
    parser.add_argument(
        "--port-file",
        type=Path,
        default=None,
        help="write the bound HTTP port here once listening",
    )
    parser.add_argument(
        "--cluster-port-file",
        type=Path,
        default=None,
        help="write the bound cluster port here once listening",
    )
    parser.add_argument(
        "--memod", default=None, help="memo-service endpoint, host:port"
    )
    parser.add_argument(
        "--data-dir",
        type=Path,
        default=None,
        help="journal + certificate-store directory (enables crash safety)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help="admission bound on queued jobs (429 past it)",
    )
    parser.add_argument(
        "--node-wait",
        type=float,
        default=30.0,
        help="seconds to wait for a live node before failing unplaceable jobs",
    )
    parser.add_argument(
        "--auth-token",
        default=None,
        help="accepted token spec (falls back to REPRO_AUTH_TOKEN)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-request access logs"
    )
    arguments = parser.parse_args(argv)
    faults.install_from_env()
    tokens = TokenSet.from_env(arguments.auth_token)
    ensure_bind_allowed(arguments.host, tokens, "coordinator HTTP front end")
    engine = ClusterEngine(
        EngineConfig(),
        host=arguments.cluster_host,
        port=arguments.cluster_port,
        tokens=tokens,
        node_wait=arguments.node_wait,
        memod=(
            parse_endpoint(arguments.memod)
            if arguments.memod is not None
            else None
        ),
    )
    service = SciductionService(
        engine.config,
        host=arguments.host,
        port=arguments.port,
        quiet=arguments.quiet,
        data_dir=arguments.data_dir,
        max_pending=arguments.max_pending,
        engine=engine,
        auth=tokens,
    )
    engine.journal = service.journal
    if service.replay is not None and service.replay.records:
        replay = service.replay
        print(
            "journal replay: "
            f"{len(replay.finished)} finished restored, "
            f"{len(replay.unfinished)} unfinished re-enqueued, "
            f"{replay.truncated_bytes} torn bytes truncated, "
            f"clean_shutdown={replay.clean_shutdown}",
            flush=True,
        )

    def _on_sigterm(signum: int, frame: FrameType | None) -> None:
        threading.Thread(
            target=service.shutdown, name="coordinator-drain"
        ).start()

    signal.signal(signal.SIGTERM, _on_sigterm)

    print(
        f"sciduction coordinator listening on {service.url} "
        f"(cluster {engine.cluster_host}:{engine.cluster_port})",
        flush=True,
    )
    if arguments.port_file is not None:
        arguments.port_file.write_text(f"{service.port}\n")
    if arguments.cluster_port_file is not None:
        arguments.cluster_port_file.write_text(f"{engine.cluster_port}\n")
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        service.shutdown()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
