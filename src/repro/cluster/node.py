"""The node agent: ``python -m repro.cluster.node``.

One persistent :class:`~repro.api.engine.SciductionEngine` (forced to
``workers=1`` — cluster parallelism lives *across* nodes, and a node
running its shapes sequentially on warm pooled sessions is exactly what
byte-parity requires) behind the framed protocol:

* the agent **dials the coordinator** and registers under its node name;
  job frames are executed in submission order by a single executor
  thread and answered with the engine's exact wire-form results;
* a **heartbeat thread** sends liveness frames on a fixed interval (the
  coordinator exposes the observed age in ``/stats``; death *detection*
  is the connection drop itself, which is immediate and unambiguous);
* **graceful drain**: on a ``drain`` frame the agent finishes every job
  already accepted, answers ``drained``, and exits 0;
* **re-registration**: a lost coordinator connection (coordinator
  restart, network blip) is retried with a fixed backoff until it
  succeeds — the node keeps its warm engine, so re-registered nodes
  answer repeated shapes from their session history;
* with ``--memod`` the engine's solver pool consults the external memo
  service through a :class:`~repro.cluster.memoclient.ClusterMemoClient`
  (read-through cache, silent degraded mode).

The ``node.crash`` fault point is probed before every job execution, so
tests can ``REPRO_FAULTS="node.crash:exit:9:3"`` a node to die exactly
like ``kill -9`` mid-batch.
"""

from __future__ import annotations

import argparse
import os
import queue
import threading
from typing import Any

from repro.api.config import EngineConfig
from repro.api.engine import SciductionEngine
from repro.cluster.auth import TokenSet, ensure_bind_allowed
from repro.cluster.memoclient import ClusterMemoClient, RemoteMemoStore
from repro.cluster.protocol import (
    OP_DRAIN,
    OP_DRAINED,
    OP_HEARTBEAT,
    OP_JOB,
    OP_PING,
    OP_PONG,
    OP_REGISTER,
    OP_RESULT,
    FramedSocket,
    ProtocolError,
)
from repro.core.exceptions import ReproError
from repro.testing import faults
from repro.testing.faults import fault_point

#: Protocol revision a node offers at registration.
PROTOCOL_VERSION = 1


def parse_endpoint(value: str) -> tuple[str, int]:
    """Parse ``host:port`` (the port is required)."""
    host, separator, port = value.rpartition(":")
    if not separator or not host or not port.isdigit():
        raise ReproError(f"expected host:port, got {value!r}")
    return host, int(port)


class NodeAgent:
    """One node's lifecycle: connect, register, serve, drain.

    Args:
        name: this node's cluster-unique name (its memo client id and
            per-client accounting identity).
        coordinator: the coordinator's cluster endpoint.
        config: engine configuration (``workers`` is forced to 1).
        tokens: auth tokens; the first is presented at registration and
            to the memo service.
        memod: optional memo-service endpoint.
        heartbeat_interval: seconds between liveness frames.
        reconnect_backoff: seconds between re-registration attempts.
    """

    def __init__(
        self,
        name: str,
        coordinator: tuple[str, int],
        config: EngineConfig | None = None,
        tokens: TokenSet | None = None,
        memod: tuple[str, int] | None = None,
        heartbeat_interval: float = 2.0,
        reconnect_backoff: float = 0.5,
        quiet: bool = False,
    ) -> None:
        self.name = name
        self.coordinator = coordinator
        self.tokens = tokens or TokenSet()
        self.heartbeat_interval = heartbeat_interval
        self.reconnect_backoff = reconnect_backoff
        self.quiet = quiet
        # Dialing out to a non-loopback coordinator (or memo service)
        # without a token is refused for the same reason binding one is:
        # the peer could not have authenticated us.
        ensure_bind_allowed(coordinator[0], self.tokens, "node (coordinator link)")
        base = config or EngineConfig()
        self.engine = SciductionEngine(
            EngineConfig.from_dict(dict(base.to_dict(), workers=1))
        )
        self.memo_client: ClusterMemoClient | None = None
        if memod is not None:
            ensure_bind_allowed(memod[0], self.tokens, "node (memo link)")
            self.memo_client = ClusterMemoClient(
                RemoteMemoStore(
                    memod[0],
                    memod[1],
                    client_id=name,
                    token=self.tokens.first_token(),
                )
            )
            self.engine.pool.set_memo_backend(self.memo_client)
        self._stop = threading.Event()
        self._drained = False
        self._jobs_executed = 0

    # -- lifecycle ---------------------------------------------------------

    def stop(self) -> None:
        """Ask the agent to exit after the current job (test hook)."""
        self._stop.set()

    def run(self) -> int:
        """Serve until drained (0) or stopped; re-registers on link loss."""
        while not self._stop.is_set():
            try:
                link = FramedSocket.connect(
                    self.coordinator[0], self.coordinator[1]
                )
            except OSError:
                if self._stop.wait(self.reconnect_backoff):
                    break
                continue
            try:
                if not self._register(link):
                    return 1
                self._serve(link)
            finally:
                link.close()
            if self._drained:
                return 0
            # Connection lost without a drain: back off, re-register.
            if self._stop.wait(self.reconnect_backoff):
                break
        return 0

    def _register(self, link: FramedSocket) -> bool:
        registration: dict[str, Any] = {
            "op": OP_REGISTER,
            "node": self.name,
            "protocol": PROTOCOL_VERSION,
        }
        token = self.tokens.first_token()
        if token is not None:
            registration["token"] = token
        try:
            link.send(registration)
            ack = link.recv()
        except (OSError, ProtocolError):
            return True  # transient: treated as a lost link, retried
        if ack is None:
            return True
        if not ack.get("ok"):
            # A structured rejection (bad token, duplicate name …) is
            # fatal — retrying with the same credentials cannot help.
            self._log(f"registration rejected: {ack.get('error')}")
            self._stop.set()
            return False
        self._log(f"registered with coordinator as {self.name!r}")
        return True

    def _serve(self, link: FramedSocket) -> None:
        """Pump frames until the link dies or a drain completes."""
        inbox: "queue.Queue[dict[str, Any] | None]" = queue.Queue()
        done = threading.Event()
        executor = threading.Thread(
            target=self._execute_loop,
            args=(link, inbox, done),
            name=f"{self.name}-executor",
            daemon=True,
        )
        executor.start()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(link, done),
            name=f"{self.name}-heartbeat",
            daemon=True,
        )
        heartbeat.start()
        try:
            while True:
                try:
                    frame = link.recv()
                except (OSError, ProtocolError):
                    break
                if frame is None:
                    break
                op = frame.get("op")
                if op in (OP_JOB, OP_DRAIN):
                    # The drain frame rides the inbox as itself (not a
                    # bare sentinel): an EOF racing in behind it must not
                    # be able to mask the drain request.
                    inbox.put(frame)
                elif op == OP_PING:
                    try:
                        link.send(
                            {"op": OP_PONG, "seq": frame.get("seq"), "node": self.name}
                        )
                    except (OSError, ProtocolError):
                        break
                # Unknown ops are ignored: a newer coordinator may speak
                # additions this node does not know.
        finally:
            done.set()
            inbox.put(None)
            executor.join(timeout=60.0)
            heartbeat.join(timeout=5.0)

    def _execute_loop(
        self,
        link: FramedSocket,
        inbox: "queue.Queue[dict[str, Any] | None]",
        done: threading.Event,
    ) -> None:
        while True:
            frame = inbox.get()
            if frame is None:
                return  # link torn down without a drain; nothing to answer
            if frame.get("op") == OP_DRAIN:
                # Graceful drain: everything accepted has been executed.
                self._drained = True
                try:
                    link.send({"op": OP_DRAINED, "node": self.name})
                except (OSError, ProtocolError):
                    pass
                link.close()
                return
            payload = frame.get("payload")
            if not isinstance(payload, dict):
                continue
            # Fault site: an armed `exit` here kills this node with no
            # cleanup, mid-batch — the coordinator's reshard path is
            # exactly what gets exercised.
            fault_point("node.crash")
            response = self.engine.run_wire(payload)
            self._jobs_executed += 1
            response["node"] = self.name
            try:
                link.send(
                    {
                        "op": OP_RESULT,
                        "job_id": payload.get("job_id"),
                        "payload": response,
                    }
                )
            except (OSError, ProtocolError):
                return  # link died; the coordinator reshards this job

    def _heartbeat_loop(self, link: FramedSocket, done: threading.Event) -> None:
        while not done.wait(self.heartbeat_interval):
            try:
                link.send({"op": OP_HEARTBEAT, "node": self.name})
            except (OSError, ProtocolError):
                return

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"[{self.name}] {message}", flush=True)

    def close(self) -> None:
        self._stop.set()
        if self.memo_client is not None:
            self.memo_client.close()
        self.engine.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.node",
        description="Run one sciduction node against a cluster coordinator.",
    )
    parser.add_argument(
        "--coordinator",
        required=True,
        help="coordinator cluster endpoint, host:port",
    )
    parser.add_argument(
        "--name",
        default=None,
        help="cluster-unique node name (default: node-<pid>)",
    )
    parser.add_argument(
        "--memod", default=None, help="memo-service endpoint, host:port"
    )
    parser.add_argument(
        "--pool-size",
        type=int,
        default=None,
        help="warm solver sessions kept by this node's pool",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=2.0,
        help="seconds between heartbeat frames",
    )
    parser.add_argument(
        "--auth-token",
        default=None,
        help="token presented at registration (falls back to REPRO_AUTH_TOKEN)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress agent logs"
    )
    arguments = parser.parse_args(argv)
    faults.install_from_env()
    config_kwargs: dict[str, Any] = {}
    if arguments.pool_size is not None:
        config_kwargs["pool_size"] = arguments.pool_size
    agent = NodeAgent(
        name=arguments.name or f"node-{os.getpid()}",
        coordinator=parse_endpoint(arguments.coordinator),
        config=EngineConfig(**config_kwargs),
        tokens=TokenSet.from_env(arguments.auth_token),
        memod=(
            parse_endpoint(arguments.memod)
            if arguments.memod is not None
            else None
        ),
        heartbeat_interval=arguments.heartbeat,
        quiet=arguments.quiet,
    )
    try:
        return agent.run()
    except KeyboardInterrupt:
        return 0
    finally:
        agent.close()


if __name__ == "__main__":
    raise SystemExit(main())
