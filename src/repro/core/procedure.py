"""The sciduction procedure: ⟨H, I, D⟩ plus conditional soundness.

Section 2.2 defines an instance of sciduction as a triple of a structure
hypothesis H, an inductive inference engine I, and a (lightweight) deductive
engine D.  Section 2.3 then requires *conditional soundness*:

    valid(H)  ==>  sound(P)                                   (paper Eq. 2)

This module provides:

* :class:`SciductionProcedure` — the abstract driver tying H, I, and D
  together; concrete applications subclass it (GameTime, OGIS, switching
  logic synthesis) or use the generic :mod:`repro.core.cegis` loop.
* :class:`SciductionResult` — the structured outcome of a run, including the
  synthesized artifact, the verdict, query counts, and the soundness
  certificate.
* :class:`SoundnessCertificate` — a record of the conditional-soundness
  statement together with whatever evidence about ``valid(H)`` was gathered.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Generic, TypeVar

from repro.core.deductive import DeductiveEngine
from repro.core.hypothesis import HypothesisValidityEvidence, StructureHypothesis
from repro.core.inductive import InductiveEngine

ArtifactT = TypeVar("ArtifactT")


@dataclass
class SoundnessCertificate:
    """The conditional soundness statement of a sciductive procedure.

    The certificate does not *prove* soundness by itself; it records the
    statement ``valid(H) ==> sound(P)``, the soundness argument provided by
    the procedure's author, and the evidence about ``valid(H)`` gathered at
    run time (Section 2.3 / Section 6 of the paper).
    """

    procedure_name: str
    hypothesis_evidence: HypothesisValidityEvidence
    soundness_argument: str = ""
    probabilistic: bool = False
    confidence: float | None = None

    def statement(self) -> str:
        """Return the textual conditional-soundness statement (Eq. 2)."""
        kind = "probabilistically sound" if self.probabilistic else "sound"
        conf = (
            f" with probability >= {self.confidence}"
            if self.probabilistic and self.confidence is not None
            else ""
        )
        return (
            f"valid({self.hypothesis_evidence.hypothesis_name}) ==> "
            f"{self.procedure_name} is {kind}{conf}"
        )

    def summary(self) -> str:
        """Multi-line human-readable summary of the certificate."""
        lines = [self.statement(), self.hypothesis_evidence.summary()]
        if self.soundness_argument:
            lines.append(f"argument: {self.soundness_argument}")
        return "\n".join(lines)


@dataclass
class SciductionResult(Generic[ArtifactT]):
    """Outcome of running a sciductive verification/synthesis procedure.

    Attributes:
        success: whether an artifact was synthesized / a verdict reached.
        artifact: the synthesized artifact (program, guards, timing model,
            ...), when ``success`` is True.
        verdict: for verification-style problems, the YES/NO answer.
        iterations: number of inductive-deductive iterations performed.
        oracle_queries: total number of oracle queries charged.
        deductive_queries: total number of deductive-engine queries.
        elapsed: wall-clock seconds for the whole run.
        certificate: the conditional-soundness certificate.
        details: free-form per-application data (e.g. per-path predictions).
    """

    success: bool
    artifact: ArtifactT | None = None
    verdict: bool | None = None
    iterations: int = 0
    oracle_queries: int = 0
    deductive_queries: int = 0
    elapsed: float = 0.0
    certificate: SoundnessCertificate | None = None
    details: dict[str, Any] = field(default_factory=dict)


class SciductionProcedure(ABC, Generic[ArtifactT]):
    """Abstract driver for a sciductive procedure ⟨H, I, D⟩.

    Concrete procedures implement :meth:`_run`, which performs the actual
    inductive/deductive interplay and returns a :class:`SciductionResult`.
    The base class wraps the run with timing and attaches the soundness
    certificate, so every application reports results in the same shape
    (this is what the Table 1 benchmark harness consumes).
    """

    name: str = "sciduction-procedure"

    def __init__(
        self,
        hypothesis: StructureHypothesis[Any],
        inductive: InductiveEngine[Any, Any, Any] | None,
        deductive: DeductiveEngine[Any, Any] | None,
    ):
        self.hypothesis = hypothesis
        self.inductive = inductive
        self.deductive = deductive

    # -- soundness -------------------------------------------------------

    def hypothesis_evidence(self) -> HypothesisValidityEvidence:
        """Return the evidence about ``valid(H)`` this procedure can offer.

        The default is "ASSUMED"; applications override to record proofs
        (e.g. CEGAR's ``C_H = C_S``) or a posteriori checks.
        """
        return HypothesisValidityEvidence(
            hypothesis_name=self.hypothesis.name,
            proved=False,
            argument="validity assumed; no general check available (paper Sec. 6)",
        )

    def soundness_argument(self) -> str:
        """Textual argument for ``valid(H) ==> sound(P)``; override per app."""
        return ""

    def is_probabilistically_sound(self) -> bool:
        """Whether the guarantee is probabilistic (GameTime) or exact."""
        return False

    def confidence(self) -> float | None:
        """The probability bound for probabilistic soundness, if any."""
        return None

    def certificate(self) -> SoundnessCertificate:
        """Build the conditional-soundness certificate for this procedure."""
        return SoundnessCertificate(
            procedure_name=self.name,
            hypothesis_evidence=self.hypothesis_evidence(),
            soundness_argument=self.soundness_argument(),
            probabilistic=self.is_probabilistically_sound(),
            confidence=self.confidence(),
        )

    # -- execution -------------------------------------------------------

    @abstractmethod
    def _run(self, **kwargs: Any) -> SciductionResult[ArtifactT]:
        """Perform the procedure; implemented by applications."""

    def run(self, **kwargs: Any) -> SciductionResult[ArtifactT]:
        """Run the procedure, attach timing and the soundness certificate."""
        start = time.perf_counter()  # analysis: allow[WC01] elapsed-time accounting for the result record; not a decision input
        result = self._run(**kwargs)
        result.elapsed = time.perf_counter() - start  # analysis: allow[WC01] elapsed-time accounting for the result record; not a decision input
        if result.certificate is None:
            result.certificate = self.certificate()
        if self.deductive is not None and result.deductive_queries == 0:
            result.deductive_queries = self.deductive.statistics.queries
        return result

    # -- reporting -------------------------------------------------------

    def describe(self) -> dict[str, str]:
        """Return the ⟨H, I, D⟩ description of this procedure (Table 1 row)."""
        return {
            "procedure": self.name,
            "H": self.hypothesis.describe(),
            "I": self.inductive.name if self.inductive is not None else "(custom)",
            "D": self.deductive.name if self.deductive is not None else "(custom)",
        }
