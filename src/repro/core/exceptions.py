"""Exception hierarchy shared by the whole ``repro`` package.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can distinguish library failures from programming errors.  The sciduction
framework additionally distinguishes the two outcomes highlighted in the
paper's Figure 7: an *unrealizable* problem (no artifact in the hypothesis
class is consistent with the evidence) versus a plain failure of the
procedure itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class StructureHypothesisError(ReproError):
    """Raised when a structure hypothesis is malformed or violated."""


class UnrealizableError(ReproError):
    """Raised when no artifact in the hypothesis class is consistent with
    the accumulated evidence.

    This corresponds to the "infeasibility reported" outcome of the paper's
    Figure 7: the inductive engine has proved (through its deductive engine)
    that the structure hypothesis admits no artifact satisfying the examples
    gathered so far, so either the specification is unrealizable or the
    structure hypothesis is invalid.
    """


class DeductionError(ReproError):
    """Raised when a deductive engine cannot answer a query.

    Examples: a resource limit was exceeded, the query falls outside the
    engine's (deliberately lightweight) theory, or an internal
    inconsistency was detected.
    """


class InductionError(ReproError):
    """Raised when an inductive engine cannot generalise from its examples."""


class BudgetExceededError(ReproError):
    """Raised when an iteration/time/query budget is exhausted.

    Sciductive procedures are iterative; each application bounds the number
    of oracle queries or refinement rounds and raises this error instead of
    looping forever when the bound is hit.

    Attributes:
        partial: optional JSON-ready payload describing reusable partial
            progress — e.g. the example set an interrupted OGIS run had
            already learned.  The engine layer surfaces it in the job's
            result details (``details["partial"]``) so the job can be
            resubmitted with that progress instead of restarting from zero.
    """

    def __init__(self, *args: object, partial: dict | None = None):
        super().__init__(*args)
        self.partial = partial


class SolverError(ReproError):
    """Raised by the SMT/SAT substrate on malformed input or internal error."""


class SimulationError(ReproError):
    """Raised by the platform or ODE simulators on invalid configurations."""


class CompilationError(ReproError):
    """Raised when a task-language program cannot be compiled or unrolled."""
