"""Inductive inference engines (the *I* of a sciduction instance).

Section 2.2.2 of the paper characterises the inductive engines used in
sciduction: they learn an artifact of the hypothesis class from examples,
usually via *active learning* (the learner chooses its examples), with
examples/labels produced by oracles, and often by reducing "find a concept
consistent with the examples" to a decision problem handed to the deductive
engine.

This module provides the abstract interface plus two generic engines that
are reused and specialised by the applications:

* :class:`VersionSpaceEngine` — keeps every hypothesis-class member
  consistent with the examples seen so far (the paper points out that the
  rudimentary invariant-generation learners in ABC, and the classic lattice
  walk in CEGAR, are version-space learners);
* :class:`BinarySearchIntervalLearner` — learns a 1-D interval from a
  membership (labeling) oracle by binary search on a discrete grid, the
  building block of Section 5's hyperbox learning (Goldman & Kearns).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Generic, Iterable, Sequence, TypeVar

from repro.core.exceptions import InductionError, UnrealizableError
from repro.core.hypothesis import GridSpec, StructureHypothesis
from repro.core.oracle import LabeledExample, LabelingOracle

ArtifactT = TypeVar("ArtifactT")
ExampleT = TypeVar("ExampleT")
LabelT = TypeVar("LabelT")


@dataclass
class LearningStatistics:
    """Bookkeeping shared by all inductive engines."""

    examples_consumed: int = 0
    candidates_produced: int = 0
    iterations: int = 0

    def note_examples(self, count: int) -> None:
        """Record that ``count`` additional examples were consumed."""
        self.examples_consumed += count

    def note_candidate(self) -> None:
        """Record that a candidate artifact was produced."""
        self.candidates_produced += 1

    def note_iteration(self) -> None:
        """Record one learning iteration."""
        self.iterations += 1


class InductiveEngine(ABC, Generic[ArtifactT, ExampleT, LabelT]):
    """Abstract base class for inductive inference engines.

    The engine's contract is intentionally small: consume labeled examples
    (:meth:`observe`) and produce a candidate artifact consistent with all
    of them (:meth:`infer`).  Active learners additionally expose
    :meth:`propose_query` to select the next example whose label they want.
    """

    name: str = "inductive-engine"

    def __init__(self, hypothesis: StructureHypothesis[ArtifactT]):
        self.hypothesis = hypothesis
        self.statistics = LearningStatistics()
        self._examples: list[LabeledExample[ExampleT, LabelT]] = []

    @property
    def examples(self) -> Sequence[LabeledExample[ExampleT, LabelT]]:
        """The labeled examples observed so far (read-only view)."""
        return tuple(self._examples)

    def observe(self, example: ExampleT, label: LabelT) -> None:
        """Add one labeled example to the engine's experience."""
        self._examples.append(LabeledExample(example, label))
        self.statistics.note_examples(1)

    def observe_many(self, pairs: Iterable[tuple[ExampleT, LabelT]]) -> None:
        """Add several labeled examples at once."""
        for example, label in pairs:
            self.observe(example, label)

    @abstractmethod
    def infer(self) -> ArtifactT:
        """Return an artifact of the hypothesis class consistent with all
        observed examples.

        Raises:
            UnrealizableError: if no member of the hypothesis class is
                consistent with the observations.
        """

    def propose_query(self) -> ExampleT | None:
        """Return the next example whose label the engine wants, or ``None``.

        Passive learners return ``None``.  Active learners (the common case
        in sciduction) override this.
        """
        return None


class ConsistencyChecker(ABC, Generic[ArtifactT, ExampleT, LabelT]):
    """Callback deciding whether an artifact is consistent with an example."""

    @abstractmethod
    def consistent(
        self, artifact: ArtifactT, example: ExampleT, label: LabelT
    ) -> bool:
        """Return True iff ``artifact`` agrees with ``(example, label)``."""


class CallableConsistency(ConsistencyChecker[ArtifactT, ExampleT, LabelT]):
    """A :class:`ConsistencyChecker` backed by a plain callable."""

    def __init__(self, func):
        self._func = func

    def consistent(self, artifact, example, label) -> bool:
        return bool(self._func(artifact, example, label))


class VersionSpaceEngine(InductiveEngine[ArtifactT, ExampleT, LabelT]):
    """Keep every enumerable hypothesis member consistent with all examples.

    This is the "rudimentary" inductive engine the paper attributes to
    simulation-guided invariant generation (Section 2.4.1): enumerate the
    candidate artifacts allowed by the structure hypothesis and discard any
    that disagree with an observed example.  :meth:`infer` returns an
    arbitrary survivor; :meth:`survivors` returns all of them (useful when
    the downstream deductive engine will prove each remaining candidate).
    """

    name = "version-space"

    def __init__(
        self,
        hypothesis: StructureHypothesis[ArtifactT],
        consistency: ConsistencyChecker[ArtifactT, ExampleT, LabelT],
    ):
        super().__init__(hypothesis)
        self._consistency = consistency
        try:
            self._survivors: list[ArtifactT] | None = list(hypothesis.enumerate())
        except NotImplementedError as exc:
            raise InductionError(
                "version-space learning requires an enumerable hypothesis"
            ) from exc

    def observe(self, example: ExampleT, label: LabelT) -> None:
        super().observe(example, label)
        assert self._survivors is not None
        self._survivors = [
            artifact
            for artifact in self._survivors
            if self._consistency.consistent(artifact, example, label)
        ]
        self.statistics.note_iteration()

    def survivors(self) -> list[ArtifactT]:
        """Return all hypothesis members consistent with every example."""
        assert self._survivors is not None
        return list(self._survivors)

    def infer(self) -> ArtifactT:
        survivors = self.survivors()
        if not survivors:
            raise UnrealizableError(
                "no hypothesis member is consistent with the observed examples"
            )
        self.statistics.note_candidate()
        return survivors[0]


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[low, high]`` on the real line (possibly empty).

    Used by the interval/hyperbox learners; an empty interval is encoded as
    ``low > high``.
    """

    low: float
    high: float

    @property
    def empty(self) -> bool:
        """True iff the interval contains no points."""
        return self.low > self.high

    def contains(self, value: float, tol: float = 1e-12) -> bool:
        """Return True iff ``value`` lies inside the interval."""
        return (not self.empty) and (self.low - tol <= value <= self.high + tol)

    @property
    def width(self) -> float:
        """Length of the interval (0 for empty intervals)."""
        return 0.0 if self.empty else self.high - self.low


class BinarySearchIntervalLearner:
    """Learn a maximal interval of positively-labeled grid points.

    This is the one-dimensional core of the hyperbox learning algorithm of
    Section 5 (following Goldman & Kearns): given a grid, a membership
    oracle labeling grid points positive/negative, and a known positive
    *seed* point, find by binary search the largest interval of consecutive
    grid points around the seed that are all positive, i.e. the interval
    whose endpoints are positive and whose immediate outer neighbours are
    negative (or the grid boundary).

    The oracle is only assumed to describe a set that is an interval
    (convex on the grid) — exactly what the structure hypothesis of
    Section 5 guarantees for safe switching states under monotone
    intra-mode dynamics.
    """

    def __init__(self, grid: GridSpec, oracle: LabelingOracle[float, bool]):
        self.grid = grid
        self.oracle = oracle

    def _index(self, value: float) -> int:
        return int(round((value - self.grid.low) / self.grid.step))

    def _value(self, index: int) -> float:
        return min(self.grid.low + index * self.grid.step, self.grid.high)

    def learn(self, seed: float) -> Interval:
        """Return the maximal positive interval around ``seed``.

        Raises:
            InductionError: if ``seed`` itself is labeled negative (then the
                target interval, if any, does not contain the seed and the
                caller must pick another seed).
        """
        seed = self.grid.snap(seed)
        if not self.oracle.label(seed):
            raise InductionError(f"seed point {seed} is labeled negative")
        lower = self._search_boundary(self._index(seed), direction=-1)
        upper = self._search_boundary(self._index(seed), direction=+1)
        return Interval(self._value(lower), self._value(upper))

    def _search_boundary(self, seed_index: int, direction: int) -> int:
        """Find the last positive index reachable from the seed in ``direction``.

        A galloping (exponential) search first walks outward from the seed
        with doubling stride until it finds a negative probe or hits the
        grid edge; a binary search then pins down the boundary inside the
        bracketing gap.  Compared with probing the grid edge directly, the
        gallop keeps the search anchored to the *contiguous* positive
        region around the seed, which is the region the structure
        hypothesis asserts is the target interval (and is what the paper's
        transmission guards correspond to when the raw safe set is not
        convex along an axis).
        """
        last_index = self.grid.num_points - 1
        edge = 0 if direction < 0 else last_index
        known_pos = seed_index
        if known_pos == edge:
            return edge
        # Gallop outward: known_pos stays the farthest positive probe seen.
        stride = 1
        first_neg: int | None = None
        while True:
            probe = known_pos + direction * stride
            if (direction > 0 and probe >= edge) or (direction < 0 and probe <= edge):
                probe = edge
            if self.oracle.label(self._value(probe)):
                known_pos = probe
                if probe == edge:
                    return edge
                stride *= 2
            else:
                first_neg = probe
                break
        # Binary search between the last positive and the first negative probe.
        low, high = (first_neg, known_pos) if direction < 0 else (known_pos, first_neg)
        # Invariant for direction=+1: low positive, high negative.
        # Invariant for direction=-1: low negative, high positive.
        while high - low > 1:
            mid = (low + high) // 2
            if self.oracle.label(self._value(mid)):
                if direction > 0:
                    low = mid
                else:
                    high = mid
            else:
                if direction > 0:
                    high = mid
                else:
                    low = mid
        return low if direction > 0 else high
