"""Generic counterexample-guided loops: CEGIS and CEGAR skeletons.

Section 2.4.1 of the paper observes that counterexample-guided abstraction
refinement (CEGAR) and counterexample-guided inductive synthesis (CEGIS) are
both instances of sciduction.  This module provides a generic loop that the
applications (and users of the library) can instantiate:

* a *candidate generator* plays the role of the inductive engine —
  "does there exist an artifact consistent with the observed examples?";
* a *verifier* (a :class:`~repro.core.oracle.CounterexampleOracle`) plays
  the role of the deductive engine — it either certifies the candidate or
  returns a counterexample that is added to the example set.

The OGIS synthesizer of Section 4 refines this loop with *distinguishing
inputs*; it lives in :mod:`repro.ogis.synthesizer` but shares the
:class:`CegisOutcome` reporting structure defined here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, Sequence, TypeVar

from repro.core.exceptions import BudgetExceededError, UnrealizableError
from repro.core.oracle import CounterexampleOracle

ArtifactT = TypeVar("ArtifactT")
ExampleT = TypeVar("ExampleT")


@dataclass
class CegisOutcome(Generic[ArtifactT, ExampleT]):
    """Outcome of a counterexample-guided loop.

    Attributes:
        artifact: the final artifact, when synthesis succeeded.
        realizable: False when the candidate generator proved that no
            artifact in the hypothesis class is consistent with the
            accumulated examples.
        iterations: number of candidate/verify rounds executed.
        examples: the examples accumulated over the run (counterexamples
            returned by the verifier, plus any seeds).
        candidates: the sequence of candidate artifacts proposed.
    """

    artifact: ArtifactT | None
    realizable: bool
    iterations: int
    examples: list[ExampleT] = field(default_factory=list)
    candidates: list[ArtifactT] = field(default_factory=list)

    @property
    def success(self) -> bool:
        """True iff a verified artifact was produced."""
        return self.artifact is not None


class CegisLoop(Generic[ArtifactT, ExampleT]):
    """A generic counterexample-guided inductive synthesis loop.

    Args:
        generate: given the list of examples gathered so far, return a
            candidate artifact consistent with all of them, or raise
            :class:`UnrealizableError` when none exists.
        verifier: a counterexample oracle certifying candidates.
        max_iterations: bound on the number of rounds.
        seed_examples: examples available before the first round.
    """

    def __init__(
        self,
        generate: Callable[[Sequence[ExampleT]], ArtifactT],
        verifier: CounterexampleOracle[ArtifactT, ExampleT],
        max_iterations: int = 64,
        seed_examples: Sequence[ExampleT] = (),
    ):
        self._generate = generate
        self._verifier = verifier
        self.max_iterations = max_iterations
        self._seed_examples = list(seed_examples)

    def run(self) -> CegisOutcome[ArtifactT, ExampleT]:
        """Run the loop to completion.

        Returns:
            A :class:`CegisOutcome`.  When the candidate generator proves
            unrealizability the outcome has ``realizable=False``; when the
            iteration budget is exhausted a :class:`BudgetExceededError` is
            raised (the caller decides whether that is fatal).
        """
        examples: list[ExampleT] = list(self._seed_examples)
        candidates: list[ArtifactT] = []
        for iteration in range(1, self.max_iterations + 1):
            try:
                candidate = self._generate(examples)
            except UnrealizableError:
                return CegisOutcome(
                    artifact=None,
                    realizable=False,
                    iterations=iteration,
                    examples=examples,
                    candidates=candidates,
                )
            candidates.append(candidate)
            check = self._verifier.check(candidate)
            if check.correct:
                return CegisOutcome(
                    artifact=candidate,
                    realizable=True,
                    iterations=iteration,
                    examples=examples,
                    candidates=candidates,
                )
            assert check.counterexample is not None
            examples.append(check.counterexample)
        raise BudgetExceededError(
            f"CEGIS did not converge within {self.max_iterations} iterations"
        )
