"""Oracle interfaces used by inductive inference engines.

Section 2.2.2 of the paper notes that, in sciduction, examples and labels
are typically produced by *oracles* — deductive procedures, concrete
executions of a model, or even a human user.  Section 4 makes the oracle
view explicit: the obfuscated program itself is treated as an I/O oracle
mapping inputs to outputs, and the synthesis complexity is measured in
queries to that oracle.

This module defines the oracle interfaces shared by the applications:

* :class:`Oracle` — the generic query-counting base class,
* :class:`IOOracle` — maps an input to an output (Section 4),
* :class:`LabelingOracle` — maps an example to a boolean/score label
  (Section 5's safe/unsafe labels; Section 3's timing measurements),
* :class:`CounterexampleOracle` — checks a candidate artifact and returns a
  counterexample when it is wrong (the verifier inside CEGIS/CEGAR).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Generic, TypeVar

from repro.core.exceptions import BudgetExceededError

InputT = TypeVar("InputT")
OutputT = TypeVar("OutputT")
ExampleT = TypeVar("ExampleT")
LabelT = TypeVar("LabelT")
ArtifactT = TypeVar("ArtifactT")


class Oracle(ABC):
    """Base class for oracles: counts queries and enforces a query budget.

    The query count is the complexity measure used throughout the paper's
    Section 4 ("synthesize the program using a small number of queries to
    the I/O oracle"), so every oracle in the package tracks it uniformly.
    """

    name: str = "oracle"

    def __init__(self, max_queries: int | None = None):
        self.query_count = 0
        self.max_queries = max_queries

    def _charge(self) -> None:
        """Record one query, raising if the budget is exhausted."""
        if self.max_queries is not None and self.query_count >= self.max_queries:
            raise BudgetExceededError(
                f"{self.name}: query budget of {self.max_queries} exhausted"
            )
        self.query_count += 1

    def reset_count(self) -> None:
        """Reset the query counter (budget remains unchanged)."""
        self.query_count = 0


class IOOracle(Oracle, Generic[InputT, OutputT]):
    """An oracle mapping a concrete input to the desired output.

    In the deobfuscation application the oracle is the obfuscated program
    itself: running it on an input yields the output any correct
    re-synthesized program must produce.
    """

    name = "io-oracle"

    @abstractmethod
    def _query(self, value: InputT) -> OutputT:
        """Compute the oracle's answer for ``value``."""

    def query(self, value: InputT) -> OutputT:
        """Return the oracle output for ``value`` (counts one query)."""
        self._charge()
        return self._query(value)


class FunctionIOOracle(IOOracle[InputT, OutputT]):
    """An :class:`IOOracle` backed by a plain Python callable."""

    def __init__(
        self,
        func: Callable[[InputT], OutputT],
        name: str = "function-io-oracle",
        max_queries: int | None = None,
    ):
        super().__init__(max_queries=max_queries)
        self._func = func
        self.name = name

    def _query(self, value: InputT) -> OutputT:
        return self._func(value)


class LabelingOracle(Oracle, Generic[ExampleT, LabelT]):
    """An oracle assigning a label to an example chosen by the learner.

    Section 5 uses a numerical simulator to label switching states as safe
    (positive) or unsafe (negative); Section 3 uses end-to-end execution on
    the platform to label a basis path with its measured execution time.
    """

    name = "labeling-oracle"

    @abstractmethod
    def _label(self, example: ExampleT) -> LabelT:
        """Compute the label of ``example``."""

    def label(self, example: ExampleT) -> LabelT:
        """Return the label of ``example`` (counts one query)."""
        self._charge()
        return self._label(example)


class FunctionLabelingOracle(LabelingOracle[ExampleT, LabelT]):
    """A :class:`LabelingOracle` backed by a plain Python callable."""

    def __init__(
        self,
        func: Callable[[ExampleT], LabelT],
        name: str = "function-labeling-oracle",
        max_queries: int | None = None,
    ):
        super().__init__(max_queries=max_queries)
        self._func = func
        self.name = name

    def _label(self, example: ExampleT) -> LabelT:
        return self._func(example)


@dataclass
class CheckResult(Generic[ExampleT]):
    """Result of checking a candidate artifact against a specification.

    Attributes:
        correct: whether the candidate satisfies the specification.
        counterexample: when ``correct`` is False, an example witnessing the
            violation (fed back to the inductive engine).
    """

    correct: bool
    counterexample: ExampleT | None = None


class CounterexampleOracle(Oracle, Generic[ArtifactT, ExampleT]):
    """The verifier inside a counterexample-guided loop (CEGIS / CEGAR).

    Given a candidate artifact it either certifies correctness or returns a
    counterexample.  In CEGIS the counterexample is an input on which the
    candidate program misbehaves; in CEGAR it is an abstract error trace to
    be checked for spuriousness.
    """

    name = "counterexample-oracle"

    @abstractmethod
    def _check(self, artifact: ArtifactT) -> CheckResult[ExampleT]:
        """Check ``artifact`` against the specification."""

    def check(self, artifact: ArtifactT) -> CheckResult[ExampleT]:
        """Check ``artifact`` (counts one query)."""
        self._charge()
        return self._check(artifact)


class FunctionCounterexampleOracle(CounterexampleOracle[ArtifactT, ExampleT]):
    """A :class:`CounterexampleOracle` backed by a callable returning
    ``None`` for "correct" or a counterexample otherwise."""

    def __init__(
        self,
        func: Callable[[ArtifactT], ExampleT | None],
        name: str = "function-counterexample-oracle",
        max_queries: int | None = None,
    ):
        super().__init__(max_queries=max_queries)
        self._func = func
        self.name = name

    def _check(self, artifact: ArtifactT) -> CheckResult[ExampleT]:
        counterexample = self._func(artifact)
        if counterexample is None:
            return CheckResult(correct=True)
        return CheckResult(correct=False, counterexample=counterexample)


@dataclass(frozen=True)
class LabeledExample(Generic[ExampleT, LabelT]):
    """An (example, label) pair as consumed by inductive engines."""

    example: ExampleT
    label: LabelT
