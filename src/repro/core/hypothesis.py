"""Structure hypotheses (the *H* of a sciduction instance).

Section 2.2.1 of the paper defines a structure hypothesis as a (possibly
infinite) set of artifacts that encodes the designer's insight about the
*form* of the artifact to be synthesized — a hyperbox guard, a loop-free
composition of library components, a weight-perturbation timing model, and
so on.  The hypothesis defines a subclass ``C_H`` of the full artifact class
``C_S``; Section 2.3.1 defines validity of the hypothesis (Eq. 1) as

    (exists c in C_S . c |= Psi)  ==>  (exists c in C_H . c |= Psi)

i.e. if any artifact satisfying the cumulative specification exists at all,
then one exists inside the hypothesis class.

This module provides the abstract interface plus a handful of generic,
reusable hypothesis classes (finite enumerations, products, grids) that the
three applications specialise.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Generic, Iterable, Iterator, Sequence, TypeVar

from repro.core.exceptions import StructureHypothesisError

ArtifactT = TypeVar("ArtifactT")


class StructureHypothesis(ABC, Generic[ArtifactT]):
    """Abstract base class for structure hypotheses.

    A structure hypothesis is, mathematically, a set of candidate artifacts.
    Concrete subclasses must be able to say whether a given artifact belongs
    to the class (:meth:`contains`) and should provide a human-readable
    :meth:`describe` used in soundness certificates.  Enumerability is
    optional: infinite classes (e.g. all hyperboxes in R^n) simply raise
    :class:`NotImplementedError` from :meth:`enumerate`.
    """

    #: Short name used in reports and soundness certificates.
    name: str = "structure-hypothesis"

    @abstractmethod
    def contains(self, artifact: ArtifactT) -> bool:
        """Return ``True`` iff ``artifact`` is a member of the class ``C_H``."""

    def describe(self) -> str:
        """Return a one-line human readable description of the hypothesis."""
        return self.name

    def enumerate(self) -> Iterator[ArtifactT]:
        """Yield the members of the class, if it is effectively enumerable.

        Raises:
            NotImplementedError: if the class is not enumerable.
        """
        raise NotImplementedError(f"{self.name} is not enumerable")

    def is_strict_restriction(self) -> bool | None:
        """Whether ``C_H`` is a *strict* subset of the unconstrained class.

        The paper argues (Section 2.2.4) that a strict restriction is
        desirable because it provides the inductive bias needed for
        generalisation.  Returns ``None`` when unknown.
        """
        return None

    def validity_statement(self) -> str:
        """Return the textual form of Eq. (1) for this hypothesis."""
        return (
            "(exists c in C_S . c |= Psi) ==> "
            f"(exists c in {self.name} . c |= Psi)"
        )


class FiniteHypothesis(StructureHypothesis[ArtifactT]):
    """A structure hypothesis given extensionally as a finite set of artifacts.

    Useful for testing and for small enumerable classes (e.g. candidate
    invariants over a fixed set of literals).
    """

    def __init__(self, artifacts: Iterable[ArtifactT], name: str = "finite-hypothesis"):
        self._artifacts = list(artifacts)
        if not self._artifacts:
            raise StructureHypothesisError("a finite hypothesis must be non-empty")
        self.name = name

    def contains(self, artifact: ArtifactT) -> bool:
        return artifact in self._artifacts

    def enumerate(self) -> Iterator[ArtifactT]:
        return iter(self._artifacts)

    def __len__(self) -> int:
        return len(self._artifacts)

    def is_strict_restriction(self) -> bool | None:
        return True

    def describe(self) -> str:
        return f"{self.name} ({len(self._artifacts)} artifacts)"


class PredicateHypothesis(StructureHypothesis[ArtifactT]):
    """A structure hypothesis given intensionally by a membership predicate.

    The predicate captures the *syntactic form* restriction; e.g. "the guard
    is a conjunction of interval constraints" or "the program uses only
    components from library L".
    """

    def __init__(
        self,
        predicate: Callable[[ArtifactT], bool],
        name: str = "predicate-hypothesis",
        strict: bool | None = None,
        description: str | None = None,
    ):
        self._predicate = predicate
        self.name = name
        self._strict = strict
        self._description = description or name

    def contains(self, artifact: ArtifactT) -> bool:
        return bool(self._predicate(artifact))

    def is_strict_restriction(self) -> bool | None:
        return self._strict

    def describe(self) -> str:
        return self._description


@dataclass(frozen=True)
class GridSpec:
    """A uniform discrete grid on a closed real interval.

    Section 5's structure hypothesis requires hyperbox vertices to lie on a
    known discrete grid (finite-precision recording of continuous values).
    ``GridSpec`` captures one axis of such a grid.

    Attributes:
        low: lower bound of the interval.
        high: upper bound of the interval.
        step: grid spacing; must evenly divide ``high - low`` up to
            floating-point tolerance.
    """

    low: float
    high: float
    step: float

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise StructureHypothesisError("grid step must be positive")
        if self.high < self.low:
            raise StructureHypothesisError("grid upper bound below lower bound")

    @property
    def num_points(self) -> int:
        """Number of grid points on the axis (inclusive of both ends)."""
        return int(round((self.high - self.low) / self.step)) + 1

    def snap(self, value: float) -> float:
        """Snap ``value`` to the nearest grid point, clamped to the range."""
        clamped = min(max(value, self.low), self.high)
        index = round((clamped - self.low) / self.step)
        return min(self.low + index * self.step, self.high)

    def points(self) -> Iterator[float]:
        """Yield the grid points in increasing order."""
        for index in range(self.num_points):
            yield min(self.low + index * self.step, self.high)

    def contains(self, value: float, tol: float = 1e-9) -> bool:
        """Return True iff ``value`` lies (within ``tol``) on the grid."""
        if value < self.low - tol or value > self.high + tol:
            return False
        offset = (value - self.low) / self.step
        return abs(offset - round(offset)) <= tol / self.step


class ProductHypothesis(StructureHypothesis[tuple]):
    """Cartesian product of component hypotheses.

    An artifact of the product is a tuple with one component per factor.
    This is convenient when the synthesized artifact naturally decomposes,
    e.g. one guard per transition of a hybrid automaton.
    """

    def __init__(
        self,
        factors: Sequence[StructureHypothesis[Any]],
        name: str = "product-hypothesis",
    ):
        if not factors:
            raise StructureHypothesisError("a product hypothesis needs factors")
        self.factors = list(factors)
        self.name = name

    def contains(self, artifact: tuple) -> bool:
        if len(artifact) != len(self.factors):
            return False
        return all(
            factor.contains(component)
            for factor, component in zip(self.factors, artifact)
        )

    def enumerate(self) -> Iterator[tuple]:
        return itertools.product(*(factor.enumerate() for factor in self.factors))

    def describe(self) -> str:
        inner = ", ".join(factor.describe() for factor in self.factors)
        return f"{self.name}[{inner}]"


@dataclass
class HypothesisValidityEvidence:
    """Evidence gathered about the validity of a structure hypothesis.

    The paper (Section 6, "Structure Hypothesis Testing/Verification") notes
    that sciduction currently lacks a general validity check and calls for
    recording whatever evidence is available.  This record collects the
    checks each application can perform:

    * ``proved`` — the hypothesis was proved valid (e.g. CEGAR, where
      ``C_H = C_S``, or the monotone-dynamics argument of Section 5).
    * ``checked_instances`` — number of instances on which a posteriori
      verification succeeded (e.g. equivalence checks of synthesized
      programs).
    * ``counterexample`` — an artifact demonstrating invalidity, if found.
    """

    hypothesis_name: str
    proved: bool = False
    argument: str = ""
    checked_instances: int = 0
    counterexample: Any | None = None
    notes: list[str] = field(default_factory=list)

    @property
    def refuted(self) -> bool:
        """True iff a counterexample to validity has been recorded."""
        return self.counterexample is not None

    def add_note(self, note: str) -> None:
        """Append a free-form note to the evidence record."""
        self.notes.append(note)

    def summary(self) -> str:
        """Return a one-line summary of the evidence."""
        if self.refuted:
            status = "REFUTED"
        elif self.proved:
            status = "PROVED"
        elif self.checked_instances:
            status = f"CHECKED on {self.checked_instances} instance(s)"
        else:
            status = "ASSUMED"
        detail = f" — {self.argument}" if self.argument else ""
        return f"valid({self.hypothesis_name}): {status}{detail}"
