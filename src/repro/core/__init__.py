"""The sciduction framework core (paper Section 2).

Exports the building blocks of a sciduction instance ⟨H, I, D⟩ — structure
hypotheses, inductive engines, deductive engines and oracles — plus the
procedure driver with conditional-soundness bookkeeping and the generic
counterexample-guided (CEGIS) loop.
"""

from repro.core.cegis import CegisLoop, CegisOutcome
from repro.core.deductive import (
    CallableEngine,
    DeductiveAnswer,
    DeductiveEngine,
    DeductiveQuery,
    EngineStatistics,
    QueryKind,
)
from repro.core.exceptions import (
    BudgetExceededError,
    CompilationError,
    DeductionError,
    InductionError,
    ReproError,
    SimulationError,
    SolverError,
    StructureHypothesisError,
    UnrealizableError,
)
from repro.core.hypothesis import (
    FiniteHypothesis,
    GridSpec,
    HypothesisValidityEvidence,
    PredicateHypothesis,
    ProductHypothesis,
    StructureHypothesis,
)
from repro.core.inductive import (
    BinarySearchIntervalLearner,
    CallableConsistency,
    ConsistencyChecker,
    InductiveEngine,
    Interval,
    LearningStatistics,
    VersionSpaceEngine,
)
from repro.core.oracle import (
    CheckResult,
    CounterexampleOracle,
    FunctionCounterexampleOracle,
    FunctionIOOracle,
    FunctionLabelingOracle,
    IOOracle,
    LabeledExample,
    LabelingOracle,
    Oracle,
)
from repro.core.procedure import (
    SciductionProcedure,
    SciductionResult,
    SoundnessCertificate,
)

__all__ = [
    "BinarySearchIntervalLearner",
    "BudgetExceededError",
    "CallableConsistency",
    "CallableEngine",
    "CegisLoop",
    "CegisOutcome",
    "CheckResult",
    "CompilationError",
    "ConsistencyChecker",
    "CounterexampleOracle",
    "DeductionError",
    "DeductiveAnswer",
    "DeductiveEngine",
    "DeductiveQuery",
    "EngineStatistics",
    "FiniteHypothesis",
    "FunctionCounterexampleOracle",
    "FunctionIOOracle",
    "FunctionLabelingOracle",
    "GridSpec",
    "HypothesisValidityEvidence",
    "IOOracle",
    "InductionError",
    "InductiveEngine",
    "Interval",
    "LabeledExample",
    "LabelingOracle",
    "LearningStatistics",
    "Oracle",
    "PredicateHypothesis",
    "ProductHypothesis",
    "QueryKind",
    "ReproError",
    "SciductionProcedure",
    "SciductionResult",
    "SimulationError",
    "SolverError",
    "SoundnessCertificate",
    "StructureHypothesis",
    "StructureHypothesisError",
    "UnrealizableError",
    "VersionSpaceEngine",
]
