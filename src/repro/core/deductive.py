"""Deductive engines (the *D* of a sciduction instance).

Section 2.2.3 of the paper defines the deductive engine as a *lightweight*
decision procedure answering queries generated during synthesis or
verification.  "Lightweight" means the engine solves a problem that is a
strict special case of — or strictly easier than — the overall problem.

Three query archetypes are called out in the paper and mirrored here:

* generate an example for the learning algorithm
  ("does there exist an example satisfying the criterion?"),
* generate a label for an example chosen by the learner
  ("is L the label of this example?"),
* synthesize a candidate artifact consistent with observed examples
  ("does there exist an artifact consistent with the examples?").

Concrete deductive engines in this reproduction are the QF_BV SMT solver
(:mod:`repro.smt`), the cycle-level platform simulator used as a timing
oracle (:mod:`repro.platform`), and the numerical ODE simulator used as a
reachability oracle (:mod:`repro.hybrid.reachability`).
"""

from __future__ import annotations

import enum
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Generic, TypeVar

from repro.core.exceptions import DeductionError

QueryT = TypeVar("QueryT")
AnswerT = TypeVar("AnswerT")


class QueryKind(enum.Enum):
    """The archetypal decision problems a deductive engine answers."""

    #: "does there exist an example satisfying the criterion of the learner?"
    GENERATE_EXAMPLE = "generate-example"
    #: "is L the label of this example?"
    LABEL_EXAMPLE = "label-example"
    #: "does there exist an artifact consistent with the observed examples?"
    SYNTHESIZE_CANDIDATE = "synthesize-candidate"
    #: a plain decision query (validity / satisfiability / reachability).
    DECIDE = "decide"


@dataclass
class DeductiveQuery(Generic[QueryT]):
    """A query posed by an inductive engine to a deductive engine.

    Attributes:
        kind: the archetype of the query.
        payload: engine-specific query content (a formula, a state, ...).
        metadata: free-form annotations used for logging/statistics.
    """

    kind: QueryKind
    payload: QueryT
    metadata: dict[str, Any] = field(default_factory=dict)


@dataclass
class DeductiveAnswer(Generic[AnswerT]):
    """The answer to a :class:`DeductiveQuery`.

    Attributes:
        decided: whether the engine reached a definite verdict.
        verdict: the YES/NO verdict, when applicable.
        witness: a witness (model, trace, test case, label) backing the
            verdict, when one exists.
        elapsed: wall-clock seconds spent answering the query.
    """

    decided: bool
    verdict: bool | None = None
    witness: AnswerT | None = None
    elapsed: float = 0.0


@dataclass
class EngineStatistics:
    """Aggregate statistics of a deductive engine over its lifetime."""

    queries: int = 0
    decided: int = 0
    total_time: float = 0.0
    per_kind: dict[str, int] = field(default_factory=dict)

    def record(self, query: DeductiveQuery, answer: DeductiveAnswer) -> None:
        """Fold one query/answer pair into the statistics."""
        self.queries += 1
        if answer.decided:
            self.decided += 1
        self.total_time += answer.elapsed
        key = query.kind.value
        self.per_kind[key] = self.per_kind.get(key, 0) + 1


class DeductiveEngine(ABC, Generic[QueryT, AnswerT]):
    """Abstract base class for deductive engines.

    Subclasses implement :meth:`_answer`; the public :meth:`answer` wraps it
    with timing and statistics, so every engine in the package reports a
    uniform notion of "number of deductive queries issued" — the cost metric
    the paper uses when discussing lightweight-ness.
    """

    #: Short name used in reports.
    name: str = "deductive-engine"

    def __init__(self) -> None:
        self.statistics = EngineStatistics()

    @abstractmethod
    def _answer(self, query: DeductiveQuery[QueryT]) -> DeductiveAnswer[AnswerT]:
        """Answer ``query``; implemented by concrete engines."""

    def answer(self, query: DeductiveQuery[QueryT]) -> DeductiveAnswer[AnswerT]:
        """Answer ``query`` and record statistics.

        Raises:
            DeductionError: if the engine fails internally.
        """
        start = time.perf_counter()  # analysis: allow[WC01] elapsed-time accounting for statistics; not a decision input
        try:
            result = self._answer(query)
        except DeductionError:
            raise
        except Exception as exc:  # pragma: no cover - defensive
            raise DeductionError(f"{self.name} failed on {query.kind.value}: {exc}") from exc
        result.elapsed = time.perf_counter() - start  # analysis: allow[WC01] elapsed-time accounting for statistics; not a decision input
        self.statistics.record(query, result)
        return result

    def decide(self, payload: QueryT, **metadata: Any) -> DeductiveAnswer[AnswerT]:
        """Convenience wrapper for a plain :data:`QueryKind.DECIDE` query."""
        return self.answer(DeductiveQuery(QueryKind.DECIDE, payload, dict(metadata)))

    def lightweightness(self) -> str:
        """A textual justification of why this engine is "lightweight".

        Concrete engines override this to document which of the paper's
        lightweight-ness conditions they satisfy (strict special case,
        asymptotically easier, or decidable fragment of an undecidable
        problem).
        """
        return "unspecified"


class CallableEngine(DeductiveEngine[Any, Any]):
    """Adapter turning a plain callable into a :class:`DeductiveEngine`.

    The callable receives the query payload and must return either a
    :class:`DeductiveAnswer` or a ``(verdict, witness)`` pair or a bare
    boolean verdict.  Handy in tests and for wrapping simulators.
    """

    def __init__(self, func, name: str = "callable-engine", lightweight_because: str = ""):
        super().__init__()
        self._func = func
        self.name = name
        self._lightweight_because = lightweight_because

    def _answer(self, query: DeductiveQuery[Any]) -> DeductiveAnswer[Any]:
        raw = self._func(query.payload)
        if isinstance(raw, DeductiveAnswer):
            return raw
        if isinstance(raw, tuple) and len(raw) == 2:
            verdict, witness = raw
            return DeductiveAnswer(decided=True, verdict=bool(verdict), witness=witness)
        if isinstance(raw, bool):
            return DeductiveAnswer(decided=True, verdict=raw)
        return DeductiveAnswer(decided=True, verdict=True, witness=raw)

    def lightweightness(self) -> str:
        return self._lightweight_because or super().lightweightness()
