"""JSON serialization for engine outcomes.

:class:`~repro.core.procedure.SciductionResult` and
:class:`~repro.core.procedure.SoundnessCertificate` are in-process
dataclasses whose payloads (synthesized programs, timing models, guard
tables) are arbitrary Python objects.  A service front door needs a wire
form, so this module provides a lossy-but-faithful mapping:

* every scalar field round-trips exactly;
* ``details`` is recursively sanitized to JSON types (tuples become
  lists, non-JSON leaves become ``repr`` strings);
* the artifact itself is replaced by its ``repr`` under
  ``artifact_repr`` — artifacts are reconstructed by re-running the
  problem, not by parsing JSON.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.hypothesis import HypothesisValidityEvidence
from repro.core.procedure import SciductionResult, SoundnessCertificate

_JSON_SCALARS = (str, int, float, bool, type(None))


def json_safe(value: Any) -> Any:
    """Recursively convert ``value`` to plain JSON types.

    Dict keys are stringified; tuples/lists/sets become lists (sets are
    sorted by repr for determinism); anything else falls back to its
    ``repr``.
    """
    if isinstance(value, bool) or isinstance(value, _JSON_SCALARS):
        return value
    if isinstance(value, dict):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((json_safe(item) for item in value), key=repr)
    return repr(value)


def certificate_to_dict(certificate: SoundnessCertificate) -> dict:
    """Serialize a soundness certificate (inverse of
    :func:`certificate_from_dict`)."""
    evidence = certificate.hypothesis_evidence
    return {
        "procedure_name": certificate.procedure_name,
        "soundness_argument": certificate.soundness_argument,
        "probabilistic": certificate.probabilistic,
        "confidence": certificate.confidence,
        "statement": certificate.statement(),
        "hypothesis_evidence": {
            "hypothesis_name": evidence.hypothesis_name,
            "proved": evidence.proved,
            "argument": evidence.argument,
            "checked_instances": evidence.checked_instances,
            "counterexample": json_safe(evidence.counterexample),
            "notes": list(evidence.notes),
        },
    }


def certificate_from_dict(data: dict) -> SoundnessCertificate:
    """Rebuild a certificate from :func:`certificate_to_dict` output."""
    evidence_data = data["hypothesis_evidence"]
    evidence = HypothesisValidityEvidence(
        hypothesis_name=evidence_data["hypothesis_name"],
        proved=evidence_data["proved"],
        argument=evidence_data["argument"],
        checked_instances=evidence_data["checked_instances"],
        counterexample=evidence_data["counterexample"],
        notes=list(evidence_data["notes"]),
    )
    return SoundnessCertificate(
        procedure_name=data["procedure_name"],
        hypothesis_evidence=evidence,
        soundness_argument=data["soundness_argument"],
        probabilistic=data["probabilistic"],
        confidence=data["confidence"],
    )


def result_to_dict(result: SciductionResult) -> dict:
    """Serialize a result to a JSON-ready dictionary."""
    return {
        "success": result.success,
        "verdict": result.verdict,
        "iterations": result.iterations,
        "oracle_queries": result.oracle_queries,
        "deductive_queries": result.deductive_queries,
        "elapsed": result.elapsed,
        "artifact_repr": None if result.artifact is None else repr(result.artifact),
        "details": json_safe(result.details),
        "certificate": (
            None
            if result.certificate is None
            else certificate_to_dict(result.certificate)
        ),
    }


def result_from_dict(data: dict) -> SciductionResult:
    """Rebuild a result record from :func:`result_to_dict` output.

    The artifact is not reconstructed (its ``repr`` is preserved inside
    ``details["artifact_repr"]`` when present in the wire form); every
    other field round-trips.
    """
    details = dict(data.get("details") or {})
    if data.get("artifact_repr") is not None:
        details.setdefault("artifact_repr", data["artifact_repr"])
    certificate = data.get("certificate")
    return SciductionResult(
        success=data["success"],
        artifact=None,
        verdict=data.get("verdict"),
        iterations=data.get("iterations", 0),
        oracle_queries=data.get("oracle_queries", 0),
        deductive_queries=data.get("deductive_queries", 0),
        elapsed=data.get("elapsed", 0.0),
        certificate=None if certificate is None else certificate_from_dict(certificate),
        details=details,
    )


def result_to_json(result: SciductionResult, indent: int | None = None) -> str:
    """One-call JSON string form of a result."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=False)


def result_wire_canonical(wire: dict) -> dict:
    """A result wire dictionary with its volatile fields removed.

    Everything in a result is deterministic given the job stream and the
    engine configuration — verdicts, artifacts' reprs, per-job solver
    statistics, certificates — *except* wall-clock timing.  Dropping the
    ``elapsed`` field yields a form that can be compared byte for byte
    across runs, which is how the batch-throughput benchmark (and the
    parallel-engine tests) assert that ``run_batch`` under ``workers > 1``
    returns exactly the sequential results.
    """
    canonical = dict(wire)
    canonical.pop("elapsed", None)
    return canonical
