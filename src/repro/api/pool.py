"""Persistent SMT solver sessions shared across jobs.

A production sciduction service answers a stream of jobs whose SMT
queries overlap heavily — repeated problem shapes re-blast the same term
skeletons and re-derive the same learned clauses when every job builds a
fresh :class:`~repro.smt.solver.SmtSolver`.  :class:`SolverPool` keeps a
small set of long-lived incremental solvers and *leases* them to jobs:

* leases are routed by **problem shape**: each idle session remembers the
  shape key (problem kind + bit-width signature, see
  :meth:`~repro.api.problems.ProblemSpec.shape_key`) of the job it last
  served, and :meth:`SolverPool.acquire` hands a job the session that
  last solved the same shape — so a job's warm bit-blast caches and
  learned clauses actually match the terms it is about to assert, instead
  of whatever a round-robin slot happened to accumulate;
* a lease's :meth:`~SolverLease.session` returns the underlying solver
  with one fresh push/pop scope open, so everything a job asserts is
  scoped; releasing the lease pops back to the root, which permanently
  falsifies the scope's activation literal and retires the job's clauses
  without touching the rest of the database;
* at release the session's learned-clause database is trimmed with an
  LBD threshold (``config.release_clause_lbd``): only glucose-style
  good-glue clauses survive into the next job, which keeps propagation on
  warm sessions as fast as on fresh solvers (the regression the
  batch-throughput benchmark guards against);
* each lease snapshots the solver's statistics at hand-over, so per-job
  accounting is a delta, never the pool-lifetime cumulative counts;
* each lease opens a hash-consing intern scope
  (:func:`repro.smt.terms.push_intern_scope`); at release the scope is
  popped, and once the global intern table has grown past
  ``config.intern_table_limit`` the scope's entries are evicted *and the
  session is recycled* (terms live on in the solver's bit-blast caches,
  so only dropping both actually bounds memory) — below the limit,
  cross-job sharing is preserved untouched.

``config.pool_size`` bounds the number of *idle* sessions kept warm
(least-recently-used sessions are recycled past the bound); concurrent
leases may temporarily exceed it.  Sessions are single-threaded and
leases must be released in LIFO order with respect to each other (the
engine runs jobs sequentially per process, which trivially satisfies
this).
"""

from __future__ import annotations

import gc

from dataclasses import dataclass
from typing import Any

from repro.api.config import EngineConfig
from repro.core.exceptions import SolverError
from repro.smt.sat import SatStatistics
from repro.smt.solver import SmtSolver, SmtStatistics
from repro.smt.terms import intern_table_size, pop_intern_scope, push_intern_scope


@dataclass
class PoolStatistics:
    """Counters describing the pool's behaviour over its lifetime."""

    leases: int = 0
    #: Leases that reused a solver warmed up by an earlier job.
    reused_sessions: int = 0
    solvers_created: int = 0
    #: Solvers discarded via :meth:`SolverPool.retire` (poisoned sessions)
    #: or recycled past the ``pool_size`` / intern-table bounds.
    solvers_retired: int = 0
    #: Intern-table entries evicted at lease release.
    intern_entries_evicted: int = 0
    #: Leases routed to a session that last solved the same problem shape.
    routing_hits: int = 0
    #: Leases that found no same-shape idle session and started cold.
    routing_misses: int = 0
    #: Learned clauses dropped by the release-time LBD retention pass.
    trimmed_learned_clauses: int = 0
    #: Replica leases handed out for intra-job parallelism (see
    #: :meth:`SolverPool.acquire_replica`).
    replica_leases: int = 0
    #: Fingerprinted base scopes sealed on replica sessions — each one is
    #: a sealed base scope replicated from a job's primary session.
    replicated_scope_seals: int = 0


@dataclass
class _SessionRecord:
    """Pool-side state of one solver session (leased or idle)."""

    solver: SmtSolver
    #: Shape key of the job this session last served (None if never routed).
    shape: str | None
    #: Monotone recency stamp (higher = more recently released).
    stamp: int
    #: Scope depth of the pool root (0 for pool-created solvers).
    root_depth: int = 0
    #: Fingerprint of the persistent base scope kept open *across* leases
    #: (see :meth:`SolverLease.base_session`), or None when the session is
    #: parked at its root.
    base_fingerprint: str | None = None
    #: SAT variable watermark captured when the base scope was sealed;
    #: releases roll the session back to it, shedding the finished job's
    #: encoding while keeping the base scope's clauses and lemmas.
    frontier: int | None = None
    #: Level-0 trail length at seal time: when unchanged at release, no
    #: new fixed facts appeared and the heuristic reset can skip its
    #: database simplification pass.
    level0_mark: int = 0
    #: Whether this session's long-lived graph has been gc-frozen.
    frozen: bool = False


class SolverLease:
    """One job's hold on a pooled solver session.

    Obtained from :meth:`SolverPool.acquire`; hand the result of
    :meth:`session` to the application layer, then release the lease
    through :meth:`SolverPool.release` (or :meth:`SolverPool.retire` if
    the session misbehaved).
    """

    def __init__(self, pool: "SolverPool", record: _SessionRecord, reused: bool) -> None:
        self._pool = pool
        self._record = record
        self._solver = record.solver
        #: Whether this lease reuses a solver warmed by a previous job.
        self.reused = reused
        self._intern_token = push_intern_scope()
        self._smt_base = self._solver.statistics.snapshot()
        self._sat_base = self._solver.sat_statistics()
        #: Fingerprint handed to :meth:`base_session` but not yet sealed.
        self._pending_fingerprint: str | None = None
        #: Whether this lease is an intra-job replica (see
        #: :meth:`SolverPool.acquire_replica`).
        self.is_replica = False
        #: Intra-job counters charged to this lease by the application
        #: layer (sweep tasks, speculation wins/losses).  Mutated only on
        #: the job's coordinating thread; the engine folds the dictionary
        #: into its ``intra_job`` statistics when the job finishes.
        self.intra_counters: dict[str, int] = {}
        self.released = False

    @property
    def solver(self) -> SmtSolver:
        """The leased solver (prefer :meth:`session` for job execution)."""
        return self._solver

    @property
    def shape(self) -> str | None:
        """Shape key the lease was routed by."""
        return self._record.shape

    def _check_open(self) -> None:
        if self.released:
            raise SolverError("lease already released; acquire a new one")

    def _pop_to(self, depth: int) -> None:
        while self._solver.scope_depth > depth:
            self._solver.pop()

    def session(self) -> SmtSolver:
        """The leased solver, reset to a clean job scope.

        The first call pushes one scope over the solver's root; later
        calls (e.g. an encoder rebuilding its skeleton) pop back to the
        root first, retiring everything asserted so far — including any
        persistent base scope a previous tenant kept — then push a new
        scope.  Either way the caller sees fresh-solver *semantics* on a
        warm solver.

        Raises:
            SolverError: if the lease has already been released (a stale
                handle must not mutate a solver now owned by another job).
        """
        self._check_open()
        self._record.base_fingerprint = None
        self._record.frontier = None
        self._pending_fingerprint = None
        # New epoch: memoized model bits were recorded against the old
        # base scope's variable layout.
        self._solver.clear_check_memo()
        self._pop_to(self._record.root_depth)
        self._solver.push()
        return self._solver

    def base_session(self, fingerprint: str) -> tuple[SmtSolver, bool]:
        """A job scope stacked on a persistent, fingerprinted base scope.

        This is how application encoders share work *across* jobs beyond
        the bit-blast caches: a base scope (e.g. the OGIS well-formedness
        + symbolic-run skeleton) stays open between leases, so its
        activation literal — and therefore every learned clause the
        search derived about it — remains valid and assumed for the next
        same-shape tenant.  Popping the scope per job (the plain
        :meth:`session` contract) would permanently falsify the literal
        and turn those clauses into dead weight.

        Returns ``(solver, base_ready)``.  When the session's sealed base
        fingerprint equals ``fingerprint``, the base scope is kept, a
        fresh job scope is pushed on top, and ``base_ready`` is True.
        Otherwise everything is popped to the root, one empty scope is
        pushed, and ``base_ready`` is False: the caller asserts its base
        constraints into that scope and calls :meth:`seal_base`, which
        records the fingerprint and pushes the job scope.
        """
        self._check_open()
        root = self._record.root_depth
        if (
            self._record.base_fingerprint == fingerprint
            and self._solver.scope_depth == root + 1
        ):
            self._pending_fingerprint = None
            self._solver.push()
            return self._solver, True
        self._record.base_fingerprint = None
        self._record.frontier = None
        self._pending_fingerprint = fingerprint
        self._solver.clear_check_memo()
        self._pop_to(root)
        self._solver.push()
        return self._solver, False

    def seal_base(self) -> None:
        """Seal the base scope opened by :meth:`base_session` and open the
        job scope above it.

        The base constraints are flushed into the SAT core and the
        variable frontier is captured: every release rolls the session
        back to it, dropping the finished job's encoding (variables, gate
        definitions, job-local learned clauses) wholesale while the
        sealed base — and every lemma the search derives over it — stays
        warm for the next same-shape job.

        Raises:
            SolverError: without a preceding unsealed ``base_session``.
        """
        self._check_open()
        if self._pending_fingerprint is None:
            raise SolverError("seal_base requires an unsealed base_session")
        self._solver.flush()
        self._record.frontier = self._solver.frontier()
        self._record.level0_mark = self._solver.level0_facts()
        self._record.base_fingerprint = self._pending_fingerprint
        self._pending_fingerprint = None
        self._solver.push()
        if self.is_replica:
            self._pool.statistics.replicated_scope_seals += 1

    def replica(self) -> "SolverLease":
        """Lease a replica session for intra-job parallelism.

        The replica is acquired from this lease's pool under the same
        shape key, so a warm same-shape session (with the job's sealed
        base scope already in place) is preferred.  Acquire every replica
        on the job's coordinating thread *before* fanning work out to
        lanes, and release them — in reverse acquisition order, via
        :meth:`release_replica` — before this primary lease is released
        (the pool's LIFO release discipline covers replicas too).
        """
        self._check_open()
        return self._pool.acquire_replica(self.shape)

    def release_replica(self, replica: "SolverLease") -> None:
        """Return a replica obtained from :meth:`replica` to the pool."""
        self._pool.release(replica)

    def count_intra(self, counter: str, amount: int = 1) -> None:
        """Charge ``amount`` to an intra-job counter on this lease."""
        self.intra_counters[counter] = self.intra_counters.get(counter, 0) + amount

    def close(self) -> None:
        """Pop back to the persistent base scope — or the pool root when
        none is sealed (called by the pool on release)."""
        keep = 1 if self._record.base_fingerprint is not None else 0
        self._pop_to(self._record.root_depth + keep)

    def __call__(self) -> SmtSolver:
        """Alias for :meth:`session`: leases double as solver factories."""
        return self.session()

    # -- per-job accounting (the pooled-solver statistics contract) -------

    def smt_statistics(self) -> SmtStatistics:
        """SMT work charged to this lease (delta since acquisition)."""
        return self._solver.statistics.delta_since(self._smt_base)

    def sat_statistics(self) -> SatStatistics:
        """CDCL work charged to this lease (delta since acquisition)."""
        return self._solver.sat_statistics().delta_since(self._sat_base)


class SolverPool:
    """A pool of persistent incremental SMT solver sessions, routed by shape.

    Args:
        config: engine configuration; up to ``pool_size`` idle sessions
            are kept warm, solvers are constructed with
            ``config.solver_options()``, and ``reuse_sessions`` /
            ``release_clause_lbd`` / ``intern_table_limit`` govern reuse,
            learned-clause retention and intern-table cleanup.
    """

    def __init__(
        self, config: EngineConfig | None = None, memo_backend: Any | None = None
    ) -> None:
        self.config = config or EngineConfig()
        if self.config.pool_size < 1:
            raise SolverError("pool_size must be at least 1")
        #: Idle (not currently leased) warm sessions, unordered; recency
        #: is tracked by each session's ``stamp``.
        self._idle: list[_SessionRecord] = []
        self._clock = 0
        self._active: list[SolverLease] = []
        self.statistics = PoolStatistics()
        #: Shared (cross-session / cross-worker) check-memo backend
        #: installed on every solver the pool creates; see
        #: :meth:`set_memo_backend`.
        self._memo_backend = memo_backend

    def set_memo_backend(self, backend: Any) -> None:
        """Install a shared check-memo backend on the pool.

        Solvers created *after* the call consult it (see
        :meth:`~repro.smt.solver.SmtSolver.set_memo_backend`); existing
        idle sessions are updated in place.  The engine wires this up —
        sequential engines hand every pool session one in-process
        :class:`~repro.api.memo.SharedCheckMemo`, worker processes
        receive a manager proxy to the parent's store.
        """
        self._memo_backend = backend
        for idle in self._idle:
            idle.solver.set_memo_backend(backend)

    def acquire(self, shape: str | None = None) -> SolverLease:
        """Lease a solver session, preferring one warmed on ``shape``.

        Routing policy (when ``reuse_sessions`` is on):

        1. an idle session whose last job had the same shape — a *routing
           hit*: its bit-blast caches and sealed base scope match the
           work about to arrive;
        2. otherwise a fresh solver (a miss), retiring the
           least-recently-used idle session first when the pool is
           already at ``pool_size``.  A wrong-shape warm session is never
           handed out: its variable names typically recur at different
           bit widths, so the tenant would poison it mid-job and re-run
           on a fresh solver anyway — paying for the job twice.

        Because every shape keeps its own session while the pool has
        room, a shape's session history depends only on that shape's own
        job sequence — which is what makes parallel (per-worker-pool)
        execution return results identical to the sequential run.  (Past
        ``pool_size`` distinct shapes, evictions depend on the global
        cross-shape interleaving, so per-job *statistics* may differ
        between worker topologies; verdicts and artifacts never do.)
        """
        self._clock += 1
        self.statistics.leases += 1
        record: _SessionRecord | None = None
        if self.config.reuse_sessions:
            match = None
            for idle in self._idle:
                if idle.shape == shape and (
                    match is None or idle.stamp > match.stamp
                ):
                    match = idle
            if match is not None:
                self._idle.remove(match)
                record = match
                self.statistics.routing_hits += 1
            else:
                self.statistics.routing_misses += 1
                while len(self._idle) >= self.config.pool_size:
                    victim = min(self._idle, key=lambda idle: idle.stamp)
                    self._idle.remove(victim)
                    self.statistics.solvers_retired += 1
        else:
            self.statistics.routing_misses += 1
        reused = record is not None
        if record is None:
            solver = SmtSolver(**self.config.solver_options())
            if self._memo_backend is not None and self.config.memoize_checks:
                solver.set_memo_backend(self._memo_backend)
            record = _SessionRecord(
                solver, shape, self._clock, root_depth=solver.scope_depth
            )
            self.statistics.solvers_created += 1
        lease = SolverLease(self, record, reused)
        self._active.append(lease)
        if reused:
            self.statistics.reused_sessions += 1
        return lease

    def acquire_replica(self, shape: str | None = None) -> SolverLease:
        """Lease a session for an intra-job parallel lane.

        Replicas differ from plain leases in exactly one way: the shared
        (cross-worker) check-memo backend is detached for the duration of
        the lease.  Replica lanes exist only under intra-job parallelism,
        so letting them read or publish shared verdicts would make the
        primary session's memo-hit counters — which are stamped into
        per-job results — depend on the lane topology; detaching keeps
        every result-visible statistic invariant under
        ``intra_job_workers``.  The solver-local check memo stays on (a
        local hit answers the same verdict a search would).
        """
        lease = self.acquire(shape=shape)
        lease.is_replica = True
        lease.solver.set_memo_backend(None)
        self.statistics.replica_leases += 1
        return lease

    def release(self, lease: SolverLease) -> None:
        """Return a lease: pop to the root, trim learned clauses, clean up.

        The session is put back on the idle list keyed by the lease's
        shape (evicting the least-recently-used session past
        ``pool_size``).  Its learned-clause database is trimmed to
        ``config.release_clause_lbd`` so the warmth the next tenant
        inherits is good glue, not drag.  Below
        ``config.intern_table_limit`` the job's interned terms are kept
        so later jobs can share them (and hit the warm bit-blast caches);
        past the limit the terms are evicted together with the session
        that caches them, bounding memory in a long-lived process at the
        cost of a cold next lease.
        """
        self._finish(lease, retire=False)

    def retire(self, lease: SolverLease) -> None:
        """Release a lease *and* discard its solver.

        Used when a session has been poisoned — e.g. a job redeclared a
        variable name at a different width than an earlier tenant, which
        the bit-blaster rejects.  The job's interned terms are always
        evicted.
        """
        self._finish(lease, retire=True)

    def _finish(self, lease: SolverLease, retire: bool) -> None:
        if lease.released:
            return
        if lease is not (self._active[-1] if self._active else None):
            raise SolverError("solver leases must be released in LIFO order")
        self._active.pop()
        lease.released = True
        try:
            lease.close()
        except Exception:
            retire = True  # a session that cannot be reset is poisoned
        limit = self.config.intern_table_limit
        if not retire and limit is not None and intern_table_size() > limit:
            # Recycle the whole session: evicting intern entries alone
            # would not bound memory (the solver's bit-blaster caches
            # keep the evicted terms alive) and would silently destroy
            # cache sharing — rebuilt terms would re-blast into duplicate
            # SAT variables on the warm solver.  Dropping the solver with
            # the terms makes the limit a genuine memory bound.
            retire = True
        self.statistics.intern_entries_evicted += pop_intern_scope(
            lease._intern_token, discard=retire
        )
        if retire:
            self.statistics.solvers_retired += 1
            return
        if lease.is_replica and self.config.memoize_checks:
            # Reattach the shared memo detached by acquire_replica: the
            # session goes back on the idle list and its next tenant may
            # be an ordinary (primary) lease.
            lease.solver.set_memo_backend(self._memo_backend)
        if not self.config.reuse_sessions:
            return
        if lease._record.frontier is not None:
            # Roll the session back to its sealed base: the finished
            # job's variables, gate definitions and job-local learned
            # clauses all go; the base scope's encoding stays.
            lease.solver.rollback_to(lease._record.frontier)
        if self.config.release_clause_lbd is not None:
            self.statistics.trimmed_learned_clauses += lease.solver.trim_learned(
                self.config.release_clause_lbd
            )
        # Hand the next tenant a pristine search state over the warm
        # encoding: without this, the previous job's VSIDS activities and
        # saved phases steer the next search off the trajectory a fresh
        # solver would take — empirically a net loss on these workloads.
        # The simplification pass is only needed when new level-0 facts
        # appeared during the lease (rare).
        lease.solver.reset_search_state(
            simplify=(
                lease._record.frontier is None
                or lease.solver.level0_facts() != lease._record.level0_mark
            )
        )
        if self.config.gc_freeze_sessions and not lease._record.frozen:
            # The session's clause database, watch lists and blaster
            # caches are long-lived from here on; without a freeze every
            # generation-2 cyclic collection re-walks them, which alone
            # costs warm sessions their wall-time edge over fresh
            # solvers.  Collect first so pending cyclic garbage does not
            # become permanent (sessions are created rarely — once per
            # shape in steady state — so the full collection amortizes).
            lease._record.frozen = True
            gc.collect()
            gc.freeze()
        self._clock += 1
        lease._record.stamp = self._clock
        self._idle.append(lease._record)
        while len(self._idle) > self.config.pool_size:
            victim = min(self._idle, key=lambda idle: idle.stamp)
            self._idle.remove(victim)
            self.statistics.solvers_retired += 1

    def close(self) -> None:
        """Drop every pooled solver (active leases must be released first)."""
        if self._active:
            raise SolverError("cannot close the pool while leases are active")
        self._idle = []
