"""Persistent SMT solver sessions shared across jobs.

A production sciduction service answers a stream of jobs whose SMT
queries overlap heavily — repeated problem shapes re-blast the same term
skeletons and re-derive the same learned clauses when every job builds a
fresh :class:`~repro.smt.solver.SmtSolver`.  :class:`SolverPool` keeps a
small set of long-lived incremental solvers and *leases* them to jobs:

* a lease's :meth:`~SolverLease.session` returns the underlying solver
  with one fresh push/pop scope open, so everything a job asserts is
  scoped; releasing the lease pops back to the root, which permanently
  falsifies the scope's activation literal and retires the job's clauses
  without touching the rest of the database;
* learned clauses, VSIDS activities and the bit-blaster's structural
  caches therefore survive from job to job — a job that re-encodes terms
  an earlier job already blasted pays nothing for them (the
  batch-throughput benchmark in ``benchmarks/bench_perf_suite.py``
  measures exactly this);
* each lease snapshots the solver's statistics at hand-over, so per-job
  accounting is a delta, never the pool-lifetime cumulative counts;
* each lease opens a hash-consing intern scope
  (:func:`repro.smt.terms.push_intern_scope`); at release the scope is
  popped, and once the global intern table has grown past
  ``config.intern_table_limit`` the scope's entries are evicted *and the
  session is recycled* (terms live on in the solver's bit-blast caches,
  so only dropping both actually bounds memory) — below the limit,
  cross-job sharing is preserved untouched.

Sessions are single-threaded and leases must be released in LIFO order
with respect to each other (the engine runs jobs sequentially, which
trivially satisfies this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.config import EngineConfig
from repro.core.exceptions import SolverError
from repro.smt.sat import SatStatistics
from repro.smt.solver import SmtSolver, SmtStatistics
from repro.smt.terms import intern_table_size, pop_intern_scope, push_intern_scope


@dataclass
class PoolStatistics:
    """Counters describing the pool's behaviour over its lifetime."""

    leases: int = 0
    #: Leases that reused a solver warmed up by an earlier job.
    reused_sessions: int = 0
    solvers_created: int = 0
    #: Solvers discarded via :meth:`SolverPool.retire` (poisoned sessions).
    solvers_retired: int = 0
    #: Intern-table entries evicted at lease release.
    intern_entries_evicted: int = 0


class SolverLease:
    """One job's hold on a pooled solver session.

    Obtained from :meth:`SolverPool.acquire`; hand the result of
    :meth:`session` to the application layer, then release the lease
    through :meth:`SolverPool.release` (or :meth:`SolverPool.retire` if
    the session misbehaved).
    """

    def __init__(self, pool: "SolverPool", slot: int, solver: SmtSolver, reused: bool):
        self._pool = pool
        self._slot = slot
        self._solver = solver
        #: Whether this lease reuses a solver warmed by a previous job.
        self.reused = reused
        self._base_depth = solver.scope_depth
        self._intern_token = push_intern_scope()
        self._smt_base = solver.statistics.snapshot()
        self._sat_base = solver.sat_statistics()
        self.released = False

    @property
    def solver(self) -> SmtSolver:
        """The leased solver (prefer :meth:`session` for job execution)."""
        return self._solver

    def session(self) -> SmtSolver:
        """The leased solver, reset to a clean job scope.

        The first call pushes one scope over the solver's root; later
        calls (e.g. an encoder rebuilding its skeleton) pop back to the
        root first, retiring everything asserted so far, then push a new
        scope.  Either way the caller sees fresh-solver *semantics* on a
        warm solver.

        Raises:
            SolverError: if the lease has already been released (a stale
                handle must not mutate a solver now owned by another job).
        """
        if self.released:
            raise SolverError("lease already released; acquire a new one")
        while self._solver.scope_depth > self._base_depth:
            self._solver.pop()
        self._solver.push()
        return self._solver

    def close(self) -> None:
        """Pop back to the pool root (called by the pool on release)."""
        while self._solver.scope_depth > self._base_depth:
            self._solver.pop()

    # -- per-job accounting (the pooled-solver statistics contract) -------

    def smt_statistics(self) -> SmtStatistics:
        """SMT work charged to this lease (delta since acquisition)."""
        return self._solver.statistics.delta_since(self._smt_base)

    def sat_statistics(self) -> SatStatistics:
        """CDCL work charged to this lease (delta since acquisition)."""
        return self._solver.sat_statistics().delta_since(self._sat_base)


class SolverPool:
    """A fixed-size pool of persistent incremental SMT solver sessions.

    Args:
        config: engine configuration; ``pool_size`` slots are maintained,
            solvers are constructed with ``config.solver_options()``, and
            ``reuse_sessions`` / ``intern_table_limit`` govern reuse and
            intern-table cleanup.
    """

    def __init__(self, config: EngineConfig | None = None):
        self.config = config or EngineConfig()
        if self.config.pool_size < 1:
            raise SolverError("pool_size must be at least 1")
        self._slots: list[SmtSolver | None] = [None] * self.config.pool_size
        self._next_slot = 0
        self._active: list[SolverLease] = []
        self.statistics = PoolStatistics()

    def acquire(self) -> SolverLease:
        """Lease a solver session (round-robin over the pool slots)."""
        slot = self._next_slot
        self._next_slot = (self._next_slot + 1) % len(self._slots)
        solver = self._slots[slot] if self.config.reuse_sessions else None
        reused = solver is not None
        if solver is None:
            solver = SmtSolver(**self.config.solver_options())
            self.statistics.solvers_created += 1
            if self.config.reuse_sessions:
                self._slots[slot] = solver
        lease = SolverLease(self, slot, solver, reused)
        self._active.append(lease)
        self.statistics.leases += 1
        if reused:
            self.statistics.reused_sessions += 1
        return lease

    def release(self, lease: SolverLease) -> None:
        """Return a lease: pop to the root and clean up interned terms.

        Below ``config.intern_table_limit`` the job's interned terms are
        kept so later jobs can share them (and hit the warm bit-blast
        caches); past the limit the terms are evicted together with the
        session that caches them, bounding memory in a long-lived
        process at the cost of a cold next lease.
        """
        self._finish(lease, retire=False)

    def retire(self, lease: SolverLease) -> None:
        """Release a lease *and* discard its solver.

        Used when a session has been poisoned — e.g. a job redeclared a
        variable name at a different width than an earlier tenant, which
        the bit-blaster rejects.  The slot is refilled lazily by the next
        :meth:`acquire`; the job's interned terms are always evicted.
        """
        self._finish(lease, retire=True)

    def _finish(self, lease: SolverLease, retire: bool) -> None:
        if lease.released:
            return
        if lease is not (self._active[-1] if self._active else None):
            raise SolverError("solver leases must be released in LIFO order")
        self._active.pop()
        lease.released = True
        try:
            lease.close()
        except Exception:
            retire = True  # a session that cannot be reset is poisoned
        limit = self.config.intern_table_limit
        if not retire and limit is not None and intern_table_size() > limit:
            # Recycle the whole session: evicting intern entries alone
            # would not bound memory (the solver's bit-blaster caches
            # keep the evicted terms alive) and would silently destroy
            # cache sharing — rebuilt terms would re-blast into duplicate
            # SAT variables on the warm solver.  Dropping the solver with
            # the terms makes the limit a genuine memory bound.
            retire = True
        self.statistics.intern_entries_evicted += pop_intern_scope(
            lease._intern_token, discard=retire
        )
        if retire:
            self._slots[lease._slot] = None
            self.statistics.solvers_retired += 1

    def close(self) -> None:
        """Drop every pooled solver (active leases must be released first)."""
        if self._active:
            raise SolverError("cannot close the pool while leases are active")
        self._slots = [None] * len(self._slots)
