"""The sciduction engine: one front door for every problem type.

:class:`SciductionEngine` turns the three per-application entry points
(`OgisSynthesizer`, `GameTime`, `SwitchingLogicSynthesizer`) into one
job-oriented service surface:

    engine = SciductionEngine(EngineConfig(pool_size=2))
    job = engine.submit(DeobfuscationProblem(task="multiply45", width=8))
    engine.submit(TimingAnalysisProblem(program="bounded_linear_search"))
    results = engine.run_batch()          # runs every pending job
    print(result_to_json(results[0]))

Jobs are executed sequentially (the solvers are single-threaded Python),
but *sessions* persist: SMT-backed jobs lease a pooled incremental
solver from the engine's :class:`~repro.api.pool.SolverPool`, so learned
clauses and bit-blast caches amortize across the batch.  Scoped leases
guarantee the verdicts are independent of which session a job lands on —
a batch gives the same answers as running each job on a fresh solver.

Per-job controls:

* ``max_conflicts`` — a job-wide CDCL conflict budget spanning all of the
  job's checks (distinct from ``EngineConfig.max_conflicts``, the
  per-check budget);
* ``timeout`` — a wall-clock limit enforced inside the SAT search loop
  (coarse-grained preemption; simulation-backed jobs are not preempted);
* :meth:`SciductionEngine.cancel` — pending jobs can be cancelled until
  the batch reaches them.

Exhausted budgets, timeouts, and failures never raise out of
:meth:`~SciductionEngine.run_batch`; they are reported as structured
unsuccessful results (``details["outcome"]``) with the job marked
accordingly.
"""

from __future__ import annotations

import enum
import itertools
import time
from dataclasses import dataclass, field

from repro.api.config import EngineConfig
from repro.api.pool import SolverPool
from repro.api.problems import JobContext, ProblemSpec, problem_from_dict
from repro.api.results import result_to_dict
from repro.core.exceptions import BudgetExceededError, ReproError, SolverError
from repro.core.procedure import SciductionResult


class JobState(enum.Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    TIMED_OUT = "timed-out"
    BUDGET_EXHAUSTED = "budget-exhausted"
    CANCELLED = "cancelled"


@dataclass
class Job:
    """Handle for one submitted problem.

    The handle is returned by :meth:`SciductionEngine.submit` immediately
    and filled in by :meth:`SciductionEngine.run_batch`.
    """

    job_id: int
    problem: ProblemSpec
    max_conflicts: int | None = None
    timeout: float | None = None
    label: str | None = None
    state: JobState = JobState.PENDING
    result: SciductionResult | None = None
    error: str | None = None
    elapsed: float = 0.0

    @property
    def done(self) -> bool:
        """Whether the job has reached a terminal state."""
        return self.state not in (JobState.PENDING, JobState.RUNNING)


class SciductionEngine:
    """Unified engine running declarative problem specs over pooled solvers.

    Args:
        config: engine configuration (solver flags, pool sizing); one
            config governs every job — problem specs carry only problem
            parameters.
        pool: inject a pre-built :class:`SolverPool` (e.g. to share
            sessions between engines); by default the engine owns one
            sized by ``config.pool_size``.
    """

    def __init__(self, config: EngineConfig | None = None, pool: SolverPool | None = None):
        self.config = config or EngineConfig()
        self.pool = pool or SolverPool(self.config)
        self._jobs: list[Job] = []
        self._job_ids = itertools.count(1)

    # -- job lifecycle -----------------------------------------------------

    def submit(
        self,
        problem: ProblemSpec | dict,
        max_conflicts: int | None = None,
        timeout: float | None = None,
        label: str | None = None,
    ) -> Job:
        """Queue a problem for the next :meth:`run_batch`.

        Args:
            problem: a spec instance, or its wire-format dictionary
                (dispatched through the problem-type registry).
            max_conflicts: job-wide CDCL conflict budget.
            timeout: wall-clock seconds before the job is preempted.
            label: free-form tag echoed into the result details.
        """
        if isinstance(problem, dict):
            problem = problem_from_dict(problem)
        if not isinstance(problem, ProblemSpec):
            raise ReproError(
                f"expected a ProblemSpec or wire dict, got {type(problem).__name__}"
            )
        job = Job(
            job_id=next(self._job_ids),
            problem=problem,
            max_conflicts=max_conflicts,
            timeout=timeout,
            label=label,
        )
        self._jobs.append(job)
        return job

    def cancel(self, job: Job) -> bool:
        """Cancel a pending job; returns whether the cancellation took."""
        if job.state is not JobState.PENDING:
            return False
        job.state = JobState.CANCELLED
        job.result = SciductionResult(
            success=False, details={"outcome": "cancelled"}
        )
        return True

    @property
    def jobs(self) -> tuple[Job, ...]:
        """Every job ever submitted to this engine (read-only view)."""
        return tuple(self._jobs)

    # -- execution ---------------------------------------------------------

    def run(
        self,
        problem: ProblemSpec | dict,
        max_conflicts: int | None = None,
        timeout: float | None = None,
    ) -> SciductionResult:
        """Submit one problem and run it immediately."""
        job = self.submit(problem, max_conflicts=max_conflicts, timeout=timeout)
        self._execute(job)
        assert job.result is not None
        return job.result

    def run_batch(
        self, problems: list[ProblemSpec | dict] | None = None
    ) -> list[SciductionResult]:
        """Run every pending job (submitting ``problems`` first).

        Returns results in submission order — independent of the pool's
        session scheduling.  Individual failures, exhausted budgets and
        timeouts are reported in the results, never raised.
        """
        for problem in problems or []:
            self.submit(problem)
        batch = [job for job in self._jobs if job.state is JobState.PENDING]
        for job in batch:
            self._execute(job)
        results = []
        for job in batch:
            assert job.result is not None
            results.append(job.result)
        return results

    def _execute(self, job: Job) -> None:
        if job.state is not JobState.PENDING:
            return
        job.state = JobState.RUNNING
        deadline = (
            time.monotonic() + job.timeout if job.timeout is not None else None
        )
        start = time.perf_counter()
        retried = False
        while True:
            lease = self.pool.acquire() if job.problem.needs_solver else None
            retire = False
            try:
                if lease is not None:
                    lease.solver.set_job_limits(
                        max_conflicts=job.max_conflicts, deadline=deadline
                    )
                context = JobContext(config=self.config, lease=lease)
                result = job.problem.run(context)
                job.state = JobState.COMPLETED
            except BudgetExceededError as error:
                timed_out = deadline is not None and time.monotonic() >= deadline
                job.state = (
                    JobState.TIMED_OUT if timed_out else JobState.BUDGET_EXHAUSTED
                )
                job.error = str(error)
                result = SciductionResult(
                    success=False,
                    details={"outcome": job.state.value, "error": str(error)},
                )
            except SolverError as error:
                # A pooled session can be poisoned by an earlier tenant
                # (e.g. a variable redeclared at a different width).
                # Retire it and retry the job once on a fresh solver —
                # but only when the session actually had an earlier
                # tenant; a fresh solver failing the same way would just
                # repeat the job's side effects.
                retire = True
                if lease is not None and lease.reused and not retried:
                    retried = True
                    if lease.solver is not None:
                        lease.solver.set_job_limits()
                    self.pool.retire(lease)
                    continue
                job.state = JobState.FAILED
                job.error = str(error)
                result = SciductionResult(
                    success=False,
                    details={"outcome": "failed", "error": str(error)},
                )
            except Exception as error:  # noqa: BLE001 — batch jobs never raise
                job.state = JobState.FAILED
                job.error = str(error)
                result = SciductionResult(
                    success=False,
                    details={"outcome": "failed", "error": str(error)},
                )
            finally:
                if lease is not None and not lease.released:
                    lease.solver.set_job_limits()
                    job_smt = lease.smt_statistics()
                    job_sat = lease.sat_statistics()
                    if retire:
                        self.pool.retire(lease)
                    else:
                        self.pool.release(lease)
                else:
                    job_smt = job_sat = None
            break
        job.elapsed = time.perf_counter() - start
        result.details.setdefault("engine", {}).update(
            {
                "job_id": job.job_id,
                "label": job.label,
                "state": job.state.value,
                "pooled": job.problem.needs_solver,
                "session_reused": bool(lease is not None and lease.reused),
            }
        )
        if job_smt is not None:
            # Per-job accounting: deltas charged to this lease, never the
            # pooled solver's lifetime totals.
            result.details["engine"]["smt_job_statistics"] = {
                "checks": job_smt.checks,
                "sat_answers": job_smt.sat_answers,
                "unsat_answers": job_smt.unsat_answers,
                "variables_generated": job_smt.variables_generated,
                "clauses_generated": job_smt.clauses_generated,
            }
            result.details["engine"]["sat_job_statistics"] = {
                "conflicts": job_sat.conflicts,
                "decisions": job_sat.decisions,
                "propagations": job_sat.propagations,
                "learned_clauses": job_sat.learned_clauses,
            }
        job.result = result

    # -- reporting ---------------------------------------------------------

    def batch_report(self) -> list[dict]:
        """JSON-ready summaries of every finished job."""
        report = []
        for job in self._jobs:
            if job.result is None:
                continue
            entry = {
                "job_id": job.job_id,
                "label": job.label,
                "state": job.state.value,
                "elapsed": job.elapsed,
                "problem": job.problem.to_dict(),
                "result": result_to_dict(job.result),
            }
            report.append(entry)
        return report
