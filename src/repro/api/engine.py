"""The sciduction engine: one front door for every problem type.

:class:`SciductionEngine` turns the three per-application entry points
(`OgisSynthesizer`, `GameTime`, `SwitchingLogicSynthesizer`) into one
job-oriented service surface:

    engine = SciductionEngine(EngineConfig(pool_size=2))
    job = engine.submit(DeobfuscationProblem(task="multiply45", width=8))
    engine.submit(TimingAnalysisProblem(program="bounded_linear_search"))
    results = engine.run_batch()          # runs every pending job
    print(result_to_json(results[0]))

Within one process jobs run sequentially (the solvers are
single-threaded Python), but *sessions* persist: SMT-backed jobs lease a
pooled incremental solver from the engine's
:class:`~repro.api.pool.SolverPool`, routed by problem shape so the warm
caches a job inherits actually match the terms it asserts.  Scoped
leases guarantee the verdicts are independent of which session a job
lands on — a batch gives the same answers as running each job on a
fresh solver.

With ``EngineConfig(workers=N)`` (N > 1), :meth:`run_batch` fans the
batch out over a persistent fleet of worker *processes*, one
``SolverPool`` per worker.  Problem specs are JSON-round-trippable, so
they ship to the workers as their wire dictionaries; results and
certificates come back as the existing JSON wire format (the in-process
artifact object stays behind — its ``repr`` and the problem-specific
details survive).  Jobs are grouped into per-shape FIFO queues and
shapes planned onto workers least-loaded; idle workers then *steal whole
un-started shape queues* from loaded ones
(:mod:`repro.api.scheduler`), so skewed streams keep every worker busy
while every shape's session history — and therefore every result — stays
identical to the sequential run; results are returned in submission
order either way.  (When a batch spans more distinct solver shapes than
``pool_size``, session evictions depend on the cross-shape interleaving
each pool observes, so per-job *statistics* may differ between worker
topologies; verdicts, artifacts and certificates never do.)  A worker
process that dies mid-job is retired and replaced (the job retried once,
then reported failed), mirroring the pool's poisoned-session retry.

Decided ``check`` verdicts are shared *across* sessions and workers
through the engine's :class:`~repro.api.memo.SharedCheckMemo` (workers
reach the parent-held store through a ``multiprocessing`` manager): when
a long-lived engine re-plans a repeated stream onto different workers —
the per-batch plan rotation does this on purpose — the new worker
answers the moved shape's checks from the memo instead of re-running the
SAT search.  The fleet and the memo manager persist across batches;
:meth:`SciductionEngine.close` (or dropping the engine) shuts them down.

Per-job controls (both execution modes):

* ``max_conflicts`` — a job-wide CDCL conflict budget spanning all of the
  job's checks (distinct from ``EngineConfig.max_conflicts``, the
  per-check budget);
* ``timeout`` — a wall-clock limit enforced inside the SAT search loop
  for SMT-backed jobs and inside the reachability oracle's integration
  loop for simulation-backed (switching-logic) jobs;
* :meth:`SciductionEngine.cancel` — pending jobs can be cancelled until
  the batch reaches them; under ``workers > 1`` a submitted job can
  still be cancelled while it is queued behind an in-flight job.

Exhausted budgets, timeouts, and failures never raise out of
:meth:`~SciductionEngine.run_batch`; they are reported as structured
unsuccessful results (``details["outcome"]``) with the job marked
accordingly.
"""

from __future__ import annotations

import enum
import itertools
import multiprocessing
import threading
import time
import weakref
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.analysis.annotations import guarded_by
from repro.api.config import EngineConfig
from repro.api.memo import MemoClient, SharedCheckMemo, start_shared_memo
from repro.api.pool import SolverPool
from repro.api.problems import JobContext, ProblemSpec, problem_from_dict
from repro.api.results import json_safe, result_from_dict, result_to_dict
from repro.api.scheduler import SchedulerStatistics, WorkStealingScheduler
from repro.core.exceptions import BudgetExceededError, ReproError, SolverError
from repro.core.procedure import SciductionResult
from repro.testing.faults import fault_point


class JobState(enum.Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    TIMED_OUT = "timed-out"
    BUDGET_EXHAUSTED = "budget-exhausted"
    CANCELLED = "cancelled"


@dataclass
class Job:
    """Handle for one submitted problem.

    The handle is returned by :meth:`SciductionEngine.submit` immediately
    and filled in by :meth:`SciductionEngine.run_batch`.
    """

    job_id: int
    problem: ProblemSpec
    max_conflicts: int | None = None
    timeout: float | None = None
    label: str | None = None
    state: JobState = JobState.PENDING
    result: SciductionResult | None = None
    error: str | None = None
    elapsed: float = 0.0
    # Transient parallel-execution state (parent side; never pickled —
    # only wire dictionaries cross the process boundary).
    _future: Future | None = field(default=None, repr=False, compare=False)
    _crash_retries: int = field(default=0, repr=False, compare=False)
    _fault_chain: list = field(default_factory=list, repr=False, compare=False)
    _result_wire: dict | None = field(default=None, repr=False, compare=False)

    @property
    def done(self) -> bool:
        """Whether the job has reached a terminal state."""
        return self.state not in (JobState.PENDING, JobState.RUNNING)

    def result_wire(self) -> dict | None:
        """The result's JSON wire form, or None while the job is open.

        Under ``workers > 1`` this is the *exact* dictionary produced by
        the worker process (so two runs of the same batch can be compared
        byte for byte); sequentially it is computed on demand.
        """
        if self._result_wire is not None:
            return self._result_wire
        if self.result is None:
            return None
        return result_to_dict(self.result)


# ---------------------------------------------------------------------------
# Worker-process machinery (workers > 1)
# ---------------------------------------------------------------------------

#: The per-process engine built by :func:`_initialize_worker`.  One engine —
#: and therefore one :class:`SolverPool` — lives for the whole worker
#: process, so warm sessions amortize across every job the worker runs.
_WORKER_ENGINE: "SciductionEngine | None" = None
#: This worker's client id (stamped into shared-memo calls and payloads).
_WORKER_ID: str = ""


def _initialize_worker(config_wire: dict, memo_proxy: Any, worker_id: str) -> None:
    """Process-pool initializer: build this worker's engine from the wire.

    The worker engine is forced to ``workers=1`` — worker processes run
    their jobs sequentially; parallelism lives in the parent's
    scheduler.  ``shared_check_memo`` is likewise forced off: the worker
    must not grow its own store — it consults the *parent's* through
    ``memo_proxy`` (a manager proxy), installed on the worker pool so
    every solver session publishes and reads cross-worker.
    """
    global _WORKER_ENGINE, _WORKER_ID
    _WORKER_ID = worker_id
    _WORKER_ENGINE = SciductionEngine(
        EngineConfig.from_dict(
            dict(config_wire, workers=1, shared_check_memo=False)
        )
    )
    if memo_proxy is not None:
        _WORKER_ENGINE.pool.set_memo_backend(MemoClient(memo_proxy, worker_id))


def _run_job_in_worker(payload: dict) -> dict:
    """Execute one job (wire form in, wire form out) in a worker process.

    Budget, deadline and statistics semantics are exactly the sequential
    engine's: the payload carries the *relative* timeout, the deadline
    clock starts when the job starts executing here, and the per-job
    statistics deltas are snapshotted by this process's lease — never by
    the parent — so parallel batches report per-job work, not
    pool-lifetime totals.  The worker's cumulative pool statistics ride
    along so the parent can aggregate fleet-wide counters for
    :meth:`SciductionEngine.statistics`.
    """
    engine = _WORKER_ENGINE
    if engine is None:  # pragma: no cover — initializer always ran
        raise ReproError("worker process was not initialized")
    # Fault site: `exit` faults armed here (inherited over fork, or via
    # REPRO_FAULTS) kill this worker with no cleanup — the supervised
    # crash-retry path in the parent is exactly what gets exercised.
    fault_point("worker.crash")
    response = engine.run_wire(payload)
    response["worker_id"] = _WORKER_ID
    response["pool_statistics"] = asdict(engine.pool.statistics)
    response["intra_statistics"] = engine.intra_statistics_snapshot()
    return response


def _worker_ready() -> bool:
    """No-op submitted by :meth:`_WorkerFleet.prestart` to force the
    executor to fork its worker process immediately."""
    return True


def _fork_context() -> "multiprocessing.context.BaseContext | None":
    """The ``fork`` multiprocessing context when available (else default).

    Forked workers inherit the parent's problem-type registry, so problem
    kinds registered at runtime (plugins, tests) remain resolvable in the
    workers; platforms without ``fork`` fall back to the default start
    method, where only import-time registrations are visible.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-POSIX platforms
        return None


class _WorkerFleet:
    """Persistent worker processes (plus the shared-memo manager) of one engine.

    PR 4 built and tore down its executors inside every ``run_batch``
    call; a long-lived service amortizes much better with workers that
    survive across batches — their warm solver pools keep serving
    re-planned shapes, and the shared check memo keeps its entries.  The
    fleet is created lazily on the first parallel batch and lives until
    :meth:`close` (called by :meth:`SciductionEngine.close`, and by a
    ``weakref`` finalizer when an engine is simply dropped).

    One single-process executor per worker index keeps the scheduler's
    placement decisions authoritative — a shape's jobs reach exactly the
    worker the plan (or a steal) routed them to, FIFO.
    """

    def __init__(self, config: EngineConfig) -> None:
        self._config_wire = config.to_dict()
        self._executors: dict[int, ProcessPoolExecutor] = {}
        self._memo_manager: Any = None
        self._memo_proxy: Any = None
        if config.shared_check_memo and config.memoize_checks:
            self._memo_manager, self._memo_proxy = start_shared_memo(
                config.shared_memo_size, context=_fork_context()
            )
        self._closed = False

    def submit(self, worker: int, payload: dict) -> Future:
        """Submit one job payload to worker ``worker`` (created lazily).

        Raises:
            ReproError: after :meth:`close` — rebuilding an executor on a
                closed fleet would leak worker processes nothing tracks.
        """
        if self._closed:
            raise ReproError("worker fleet is closed")
        return self._executor(worker).submit(_run_job_in_worker, payload)

    def _executor(self, worker: int) -> ProcessPoolExecutor:
        executor = self._executors.get(worker)
        if executor is None:
            executor = ProcessPoolExecutor(
                max_workers=1,
                mp_context=_fork_context(),
                initializer=_initialize_worker,
                initargs=(self._config_wire, self._memo_proxy, f"worker-{worker}"),
            )
            self._executors[worker] = executor
        return executor

    def prestart(self, workers: int) -> None:
        """Fork every worker process now, from the calling thread.

        ``fork`` from a multithreaded process is unsafe (handler threads
        may hold locks mid-fork); a service that serves HTTP with
        ``workers > 1`` calls this *before* starting its threads, so the
        lazily-created executors never have to fork later.
        """
        for worker in range(workers):
            self._executor(worker).submit(_worker_ready).result()

    def retire(self, worker: int) -> None:
        """Drop a crashed worker's executor; the next submit rebuilds it."""
        executor = self._executors.pop(worker, None)
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def memo_statistics(self) -> dict | None:
        """Counter snapshot of the manager-served shared memo (or None)."""
        if self._memo_proxy is None:
            return None
        try:
            return self._memo_proxy.statistics()
        except Exception:  # pragma: no cover — manager already gone
            return None

    def close(self) -> None:
        """Shut down every worker process and the memo manager (idempotent).

        Waiting for worker teardown keeps interpreter shutdown clean (an
        abandoned executor's atexit hook races its own pipes).
        """
        if self._closed:
            return
        self._closed = True
        for executor in self._executors.values():
            executor.shutdown(wait=True, cancel_futures=True)
        self._executors.clear()
        if self._memo_manager is not None:
            self._memo_manager.shutdown()
            self._memo_manager = None
            self._memo_proxy = None


@guarded_by(
    "_state_lock",
    "_jobs",
    "_worker_pool_statistics",
    "_intra_statistics",
    "_worker_intra_statistics",
)
class SciductionEngine:
    """Unified engine running declarative problem specs over pooled solvers.

    Args:
        config: engine configuration (solver flags, pool sizing); one
            config governs every job — problem specs carry only problem
            parameters.
        pool: inject a pre-built :class:`SolverPool` (e.g. to share
            sessions between engines); by default the engine owns one
            sized by ``config.pool_size``.
    """

    def __init__(self, config: EngineConfig | None = None, pool: SolverPool | None = None) -> None:
        self.config = config or EngineConfig()
        #: In-process shared check-memo store: every session of this
        #: engine's pool reads and publishes through it, so a verdict
        #: decided on one session short-circuits the same check on
        #: another (e.g. after a session was recycled past the pool
        #: bound).  Parallel batches serve the workers a separate,
        #: manager-hosted store (see :class:`_WorkerFleet`).
        self._memo_store: SharedCheckMemo | None = None
        memo_backend = None
        if self.config.shared_check_memo and self.config.memoize_checks:
            self._memo_store = SharedCheckMemo(self.config.shared_memo_size)
            memo_backend = MemoClient(self._memo_store, "local")
        self.pool = pool or SolverPool(self.config, memo_backend=memo_backend)
        self._jobs: list[Job] = []
        self._job_ids = itertools.count(1)
        # Guards PENDING → RUNNING/CANCELLED transitions: cancel() may be
        # called from another thread (the HTTP front end) while a batch
        # dispatches.
        self._state_lock = threading.Lock()
        self._scheduler_statistics = SchedulerStatistics()
        #: Latest cumulative pool statistics reported by each worker.
        self._worker_pool_statistics: dict[str, dict] = {}
        #: Intra-job counters (sweeps / speculation) folded from every
        #: released lease of this engine's pool.
        self._intra_statistics: dict[str, int] = {}
        #: Latest cumulative intra-job counters reported by each worker.
        self._worker_intra_statistics: dict[str, dict] = {}
        self._fleet: _WorkerFleet | None = None
        self._fleet_finalizer: "weakref.finalize | None" = None

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut down worker processes and the shared-memo manager.

        Only needed for engines that ran parallel batches (their worker
        fleet persists across ``run_batch`` calls); sequential engines
        hold no external resources.  Idempotent; the engine remains
        usable afterwards (a new fleet is built on demand).
        """
        if self._fleet is not None:
            self._fleet.close()
            self._fleet = None

    def __enter__(self) -> "SciductionEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _worker_fleet(self) -> _WorkerFleet:
        if self._fleet is None:
            self._fleet = _WorkerFleet(self.config)
            # Belt and braces for engines that are dropped without
            # close(): the finalizer references the fleet, never the
            # engine, so it cannot keep the engine alive.
            self._fleet_finalizer = weakref.finalize(self, self._fleet.close)
        return self._fleet

    def prestart_workers(self) -> None:
        """Fork the worker fleet now instead of at the first batch.

        Worker processes are started with the ``fork`` method (it is what
        lets runtime-registered problem kinds resolve in workers), and
        forking is only safe while the process is single-threaded — a
        host that is about to start serving threads (the HTTP service)
        calls this first.  A no-op for ``workers == 1``.
        """
        if self.config.workers > 1:
            self._worker_fleet().prestart(self.config.workers)

    # -- job lifecycle -----------------------------------------------------

    def submit(
        self,
        problem: ProblemSpec | dict,
        max_conflicts: int | None = None,
        timeout: float | None = None,
        label: str | None = None,
    ) -> Job:
        """Queue a problem for the next :meth:`run_batch`.

        Args:
            problem: a spec instance, or its wire-format dictionary
                (dispatched through the problem-type registry).
            max_conflicts: job-wide CDCL conflict budget.
            timeout: wall-clock seconds before the job is preempted.
            label: free-form tag echoed into the result details.
        """
        if isinstance(problem, dict):
            problem = problem_from_dict(problem)
        if not isinstance(problem, ProblemSpec):
            raise ReproError(
                f"expected a ProblemSpec or wire dict, got {type(problem).__name__}"
            )
        job = Job(
            job_id=next(self._job_ids),
            problem=problem,
            max_conflicts=max_conflicts,
            timeout=timeout,
            label=label,
        )
        # Serialized against prune()'s list swap: an unlocked append can
        # land on the list prune() is about to replace and silently lose
        # the handle (LOCK02).
        with self._state_lock:
            self._jobs.append(job)
        return job

    def cancel(self, job: Job) -> bool:
        """Cancel a job; returns whether the cancellation took.

        Pending jobs always cancel — including jobs of a batch that is
        already in flight under ``workers > 1``: the scheduler holds
        queued jobs in the parent process and only transitions them to
        RUNNING at dispatch, so anything not yet handed to a worker is
        still cancellable (the transition and the cancellation are
        serialized by one lock).  A job a worker is already executing
        cannot be cancelled.
        """
        with self._state_lock:
            if job.state is JobState.PENDING:
                self._mark_cancelled(job)
                return True
        return False

    @staticmethod
    def _mark_cancelled(job: Job) -> None:
        job.state = JobState.CANCELLED
        job.result = SciductionResult(
            success=False, details={"outcome": "cancelled"}
        )

    @property
    def jobs(self) -> tuple[Job, ...]:
        """Every job this engine still tracks (read-only view).

        By default that is every job ever submitted; long-lived callers
        (the HTTP service) call :meth:`prune` after harvesting results so
        the engine's history — and with it ``run_batch``'s pending scan —
        stays bounded.
        """
        with self._state_lock:
            return tuple(self._jobs)

    def prune(self) -> int:
        """Forget finished jobs (the caller keeps the handles it needs).

        A service that runs forever must not let the engine accumulate
        every result ever produced: the job handles pin full
        :class:`SciductionResult` payloads (models, certificates, wire
        dictionaries).  Open jobs (pending or running) are always kept.

        Returns:
            The number of job handles dropped.
        """
        with self._state_lock:
            kept = [job for job in self._jobs if not job.done]
            dropped = len(self._jobs) - len(kept)
            self._jobs = kept
        return dropped

    # -- execution ---------------------------------------------------------

    def run(
        self,
        problem: ProblemSpec | dict,
        max_conflicts: int | None = None,
        timeout: float | None = None,
    ) -> SciductionResult:
        """Submit one problem and run it immediately."""
        job = self.submit(problem, max_conflicts=max_conflicts, timeout=timeout)
        self._execute(job)
        assert job.result is not None
        return job.result

    def run_wire(self, payload: dict) -> dict:
        """Execute one wire-form job payload; return its wire-form outcome.

        The payload is the exact dictionary the parallel transport ships
        to worker processes (``job_id``, wire-form ``problem``,
        ``max_conflicts``, ``timeout``, ``label``); the response carries
        the terminal state, error, elapsed seconds and the result's wire
        dictionary.  This is the single remote-execution surface: worker
        processes (:func:`_run_job_in_worker`) and cluster node agents
        (:mod:`repro.cluster.node`) both run jobs through it, so every
        execution topology produces byte-identical result wire forms.

        The job handle is transient — it is *not* registered with this
        engine's job list (the submitting side owns the authoritative
        handle under its own job id).
        """
        job = Job(
            job_id=payload["job_id"],
            problem=problem_from_dict(payload["problem"]),
            max_conflicts=payload["max_conflicts"],
            timeout=payload["timeout"],
            label=payload["label"],
        )
        self._execute(job)
        assert job.result is not None
        return {
            "state": job.state.value,
            "error": job.error,
            "elapsed": job.elapsed,
            "result": result_to_dict(job.result),
        }

    def run_batch(
        self, problems: list[ProblemSpec | dict] | None = None
    ) -> list[SciductionResult]:
        """Run every pending job (submitting ``problems`` first).

        Returns results in submission order — independent of the pool's
        session scheduling and of ``config.workers``.  Individual
        failures, exhausted budgets and timeouts are reported in the
        results, never raised.
        """
        for problem in problems or []:
            self.submit(problem)
        with self._state_lock:
            batch = [job for job in self._jobs if job.state is JobState.PENDING]
        if self.config.workers > 1 and len(batch) > 1:
            self._execute_batch_parallel(batch)
        else:
            for job in batch:
                self._execute(job)
        results = []
        for job in batch:
            assert job.result is not None
            results.append(job.result)
        return results

    # -- parallel execution ------------------------------------------------

    def _execute_batch_parallel(self, batch: list[Job]) -> None:
        """Fan ``batch`` out over the worker fleet with work stealing.

        Jobs are grouped into per-shape FIFO queues and shapes assigned
        to workers by the deterministic least-loaded plan; idle workers
        then steal whole un-started shape queues from loaded ones (see
        :mod:`repro.api.scheduler`).  A shape's jobs always hit one
        worker, in submission order, on one warm session — exactly the
        session history the sequential engine produces — so parallel
        results match sequential results byte for byte, and they are
        collected back in submission order regardless of which worker
        finishes first.

        The plan's tie-break rotates once per batch: on a long-lived
        engine a repeated stream lands its shapes on different workers
        over time, and the cross-worker check memo converts the move
        into shared-memo hits instead of cold re-searches.
        """
        workers = self.config.workers
        fleet = self._worker_fleet()

        def claim(job: Job) -> bool:
            with self._state_lock:
                if job.state is not JobState.PENDING:
                    return False  # cancelled while queued in the plan
                job.state = JobState.RUNNING
                return True

        class _Transport:
            @staticmethod
            def submit(worker: int, job: Job) -> Future:
                job._future = fleet.submit(
                    worker,
                    {
                        "job_id": job.job_id,
                        "problem": job.problem.to_dict(),
                        "max_conflicts": job.max_conflicts,
                        "timeout": job.timeout,
                        "label": job.label,
                    },
                )
                return job._future

            @staticmethod
            def retire(worker: int) -> None:
                fleet.retire(worker)

        def retry_crash(job: Job) -> bool:
            job._fault_chain.append(
                f"worker process crashed (attempt {job._crash_retries + 1})"
            )
            if job._crash_retries >= self.config.job_retry_limit:
                return False
            job._crash_retries += 1
            self._retry_backoff_sleep(job._crash_retries)
            return True

        def complete(job: Job, kind: str, value: Any) -> None:
            if kind == "payload":
                job.state = JobState(value["state"])
                job.error = value["error"]
                job.elapsed = value["elapsed"]
                job._result_wire = value["result"]
                job.result = result_from_dict(value["result"])
                # statistics() reads this dict from HTTP handler threads
                # while the dispatch loop completes jobs (LOCK02).
                with self._state_lock:
                    self._worker_pool_statistics[value["worker_id"]] = value[
                        "pool_statistics"
                    ]
                    self._worker_intra_statistics[value["worker_id"]] = value.get(
                        "intra_statistics", {}
                    )
            elif kind == "crashed":
                self._record_crash(job)
            elif kind == "error":
                # The worker returned an unrunnable-job error (e.g. a
                # problem kind not registered in the worker process).
                job.state = JobState.FAILED
                job.error = str(value)
                job.result = SciductionResult(
                    success=False,
                    details={"outcome": "failed", "error": str(value)},
                )
                self._stamp_engine_details(job)
            elif kind == "cancelled" and job.result is None:
                # Normally cancel() recorded the result before the future
                # was dropped; a future cancelled from outside (e.g. the
                # fleet shut down mid-batch) still needs one — run_batch
                # promises a structured result for every job, never a
                # raise.
                self._mark_cancelled(job)

        scheduler = WorkStealingScheduler(
            transport=_Transport,
            claim=claim,
            complete=complete,
            retry_crash=retry_crash,
            statistics=self._scheduler_statistics,
        )
        rotation = (self._scheduler_statistics.batches) % workers
        scheduler.run_batch(
            [(job.problem.shape_key(), job) for job in batch],
            workers=workers,
            rotation=rotation,
        )

    def _retry_backoff_sleep(self, attempt: int) -> None:
        """Exponential pre-retry pause: ``retry_backoff * 2**(attempt-1)``."""
        if self.config.retry_backoff > 0:
            time.sleep(self.config.retry_backoff * (2 ** (attempt - 1)))

    def _record_crash(self, job: Job) -> None:
        job.state = JobState.FAILED
        job.error = (
            "worker process crashed (retry budget of "
            f"{self.config.job_retry_limit} exhausted)"
        )
        details: dict = {"outcome": "failed", "error": job.error}
        if job._fault_chain:
            # The full fault history, one entry per attempt — a terminal
            # failure names every crash that consumed the retry budget.
            details["fault_chain"] = list(job._fault_chain)
        job.result = SciductionResult(success=False, details=details)
        self._stamp_engine_details(job)

    def _stamp_engine_details(self, job: Job) -> None:
        assert job.result is not None
        job.result.details.setdefault("engine", {}).update(
            {
                "job_id": job.job_id,
                "label": job.label,
                "state": job.state.value,
                "pooled": job.problem.needs_solver,
                "session_reused": False,
            }
        )

    def _execute(self, job: Job) -> None:
        with self._state_lock:
            if job.state is not JobState.PENDING:
                return
            job.state = JobState.RUNNING
        deadline = (
            time.monotonic() + job.timeout if job.timeout is not None else None  # analysis: allow[WC01] sanctioned deadline anchor; budget enforcement only
        )
        start = time.perf_counter()  # analysis: allow[WC01] elapsed-time accounting for the job record; not a decision input
        retries = 0
        fault_chain: list[str] = []
        while True:
            lease = (
                self.pool.acquire(shape=job.problem.shape_key())
                if job.problem.needs_solver
                else None
            )
            retire = False
            try:
                # Fault sites (no-ops unless a test armed them): a slow
                # engine and an in-process execution fault, both folded
                # into the job outcome like any organic failure.
                fault_point("engine.slow")
                fault_point("engine.crash")
                if lease is not None:
                    lease.solver.set_job_limits(
                        max_conflicts=job.max_conflicts, deadline=deadline
                    )
                context = JobContext(
                    config=self.config, lease=lease, deadline=deadline
                )
                result = job.problem.run(context)
                job.state = JobState.COMPLETED
            except BudgetExceededError as error:
                timed_out = deadline is not None and time.monotonic() >= deadline  # analysis: allow[WC01] sanctioned deadline probe; classifies timeout vs budget exhaustion
                job.state = (
                    JobState.TIMED_OUT if timed_out else JobState.BUDGET_EXHAUSTED
                )
                job.error = str(error)
                details = {"outcome": job.state.value, "error": str(error)}
                if error.partial:
                    # Reusable partial progress (e.g. the OGIS example
                    # set); resubmitting the problem with it resumes the
                    # job instead of restarting from zero.
                    details["partial"] = json_safe(error.partial)
                result = SciductionResult(success=False, details=details)
            except SolverError as error:
                # A pooled session can be poisoned by an earlier tenant
                # (e.g. a variable redeclared at a different width).
                # Retire it and retry the job on a fresh solver, bounded
                # by the per-job retry budget — and only when the
                # session actually had an earlier tenant; a fresh solver
                # failing the same way would just repeat the job's side
                # effects.
                retire = True
                fault_chain.append(
                    f"poisoned session (attempt {retries + 1}): {error}"
                )
                if (
                    lease is not None
                    and lease.reused
                    and retries < self.config.job_retry_limit
                ):
                    retries += 1
                    if lease.solver is not None:
                        lease.solver.set_job_limits()
                    self.pool.retire(lease)
                    self._retry_backoff_sleep(retries)
                    continue
                job.state = JobState.FAILED
                job.error = str(error)
                details = {"outcome": "failed", "error": str(error)}
                if fault_chain:
                    details["fault_chain"] = list(fault_chain)
                result = SciductionResult(success=False, details=details)
            except Exception as error:  # noqa: BLE001 — batch jobs never raise
                job.state = JobState.FAILED
                job.error = str(error)
                result = SciductionResult(
                    success=False,
                    details={"outcome": "failed", "error": str(error)},
                )
            finally:
                if lease is not None and not lease.released:
                    lease.solver.set_job_limits()
                    job_smt = lease.smt_statistics()
                    job_sat = lease.sat_statistics()
                    # Intra-job counters (sweep fan-out, speculation
                    # wins/losses) are engine telemetry, never result
                    # details: the speculative lane's outcomes depend on
                    # replica session history, which the byte-parity
                    # contract excludes from results.
                    if lease.intra_counters:
                        with self._state_lock:
                            for key, value in lease.intra_counters.items():
                                self._intra_statistics[key] = (
                                    self._intra_statistics.get(key, 0) + value
                                )
                    if retire:
                        self.pool.retire(lease)
                    else:
                        self.pool.release(lease)
                else:
                    job_smt = job_sat = None
            break
        job.elapsed = time.perf_counter() - start  # analysis: allow[WC01] elapsed-time accounting for the job record; not a decision input
        result.details.setdefault("engine", {}).update(
            {
                "job_id": job.job_id,
                "label": job.label,
                "state": job.state.value,
                "pooled": job.problem.needs_solver,
                "session_reused": bool(lease is not None and lease.reused),
            }
        )
        if job_smt is not None:
            # Per-job accounting: deltas charged to this lease, never the
            # pooled solver's lifetime totals.
            result.details["engine"]["smt_job_statistics"] = {
                "checks": job_smt.checks,
                "sat_answers": job_smt.sat_answers,
                "unsat_answers": job_smt.unsat_answers,
                "variables_generated": job_smt.variables_generated,
                "clauses_generated": job_smt.clauses_generated,
                "check_memo_hits": job_smt.check_memo_hits,
                "shared_memo_hits": job_smt.shared_memo_hits,
            }
            result.details["engine"]["sat_job_statistics"] = {
                "conflicts": job_sat.conflicts,
                "decisions": job_sat.decisions,
                "propagations": job_sat.propagations,
                "learned_clauses": job_sat.learned_clauses,
            }
        job.result = result

    # -- reporting ---------------------------------------------------------

    def intra_statistics_snapshot(self) -> dict:
        """This process's cumulative intra-job counters (wire-safe copy).

        Worker processes ship this with every finished job so the parent
        can aggregate fleet-wide intra-job activity in
        :meth:`statistics`.
        """
        with self._state_lock:
            return dict(self._intra_statistics)

    def statistics(self) -> dict:
        """JSON-ready engine-wide counters (the ``/stats`` payload).

        Aggregates four layers:

        * ``pool`` — the in-process :class:`~repro.api.pool.SolverPool`
          (sequential execution and ``run()`` calls);
        * ``scheduler`` — batches, dispatches, steals and crash
          retirements of the parallel work-stealing scheduler;
        * ``workers`` — each worker process's latest cumulative pool
          counters (reported with every finished job);
        * ``shared_memo`` — the cross-session / cross-worker check-memo
          counters, summed over the engine's in-process store and the
          manager-served store the workers use.  ``cross_worker_hits``
          counts verdicts decided by one client and reused by another;
        * ``intra_job`` — intra-job parallelism counters summed over this
          process and the worker fleet: ``sweep_tasks`` /
          ``sweep_feasible`` (parallel feasibility sweeps),
          ``speculation_wins`` / ``speculation_losses`` (speculative
          OGIS), and the pools' ``replica_leases`` /
          ``replicated_scope_seals``.
        """
        memo = {}
        stores = []
        if self._memo_store is not None:
            stores.append(self._memo_store.statistics())
        if self._fleet is not None:
            fleet_memo = self._fleet.memo_statistics()
            if fleet_memo is not None:
                stores.append(fleet_memo)
        for record in stores:
            for key, value in record.items():
                if key == "capacity":
                    # The configured bound, not a counter — never summed.
                    memo[key] = max(memo.get(key, 0), value)
                else:
                    memo[key] = memo.get(key, 0) + value
        with self._state_lock:
            workers = dict(sorted(self._worker_pool_statistics.items()))
            intra_records = [dict(self._intra_statistics)] + [
                dict(record) for record in self._worker_intra_statistics.values()
            ]
        intra = {
            "sweep_tasks": 0,
            "sweep_feasible": 0,
            "speculation_wins": 0,
            "speculation_losses": 0,
        }
        for record in intra_records:
            for key, value in record.items():
                intra[key] = intra.get(key, 0) + value
        pool_statistics = asdict(self.pool.statistics)
        intra["replica_leases"] = pool_statistics.get("replica_leases", 0) + sum(
            record.get("replica_leases", 0) for record in workers.values()
        )
        intra["replicated_scope_seals"] = pool_statistics.get(
            "replicated_scope_seals", 0
        ) + sum(
            record.get("replicated_scope_seals", 0) for record in workers.values()
        )
        return {
            "pool": pool_statistics,
            "scheduler": self._scheduler_statistics.as_dict(),
            "workers": workers,
            "shared_memo": memo,
            "intra_job": intra,
        }

    def batch_report(self) -> list[dict]:
        """JSON-ready summaries of every finished job."""
        report = []
        for job in self.jobs:
            if job.result is None:
                continue
            entry = {
                "job_id": job.job_id,
                "label": job.label,
                "state": job.state.value,
                "elapsed": job.elapsed,
                "problem": job.problem.to_dict(),
                "result": result_to_dict(job.result),
            }
            report.append(entry)
        return report
