"""The sciduction engine: one front door for every problem type.

:class:`SciductionEngine` turns the three per-application entry points
(`OgisSynthesizer`, `GameTime`, `SwitchingLogicSynthesizer`) into one
job-oriented service surface:

    engine = SciductionEngine(EngineConfig(pool_size=2))
    job = engine.submit(DeobfuscationProblem(task="multiply45", width=8))
    engine.submit(TimingAnalysisProblem(program="bounded_linear_search"))
    results = engine.run_batch()          # runs every pending job
    print(result_to_json(results[0]))

Within one process jobs run sequentially (the solvers are
single-threaded Python), but *sessions* persist: SMT-backed jobs lease a
pooled incremental solver from the engine's
:class:`~repro.api.pool.SolverPool`, routed by problem shape so the warm
caches a job inherits actually match the terms it asserts.  Scoped
leases guarantee the verdicts are independent of which session a job
lands on — a batch gives the same answers as running each job on a
fresh solver.

With ``EngineConfig(workers=N)`` (N > 1), :meth:`run_batch` fans the
batch out over a pool of worker *processes*, one ``SolverPool`` per
worker.  Problem specs are JSON-round-trippable, so they ship to the
workers as their wire dictionaries; results and certificates come back
as the existing JSON wire format (the in-process artifact object stays
behind — its ``repr`` and the problem-specific details survive).  Jobs
are bucketed onto workers by their shape key, so every shape's session
history — and therefore every result — is identical to the sequential
run; results are returned in submission order either way.  (When a batch
spans more distinct solver shapes than ``pool_size``, session evictions
depend on the cross-shape interleaving each pool observes, so per-job
*statistics* may differ between worker topologies; verdicts, artifacts
and certificates never do.)  A worker process that dies mid-job is
retired and replaced (the job retried once, then reported failed),
mirroring the pool's poisoned-session retry.

Per-job controls (both execution modes):

* ``max_conflicts`` — a job-wide CDCL conflict budget spanning all of the
  job's checks (distinct from ``EngineConfig.max_conflicts``, the
  per-check budget);
* ``timeout`` — a wall-clock limit enforced inside the SAT search loop
  for SMT-backed jobs and inside the reachability oracle's integration
  loop for simulation-backed (switching-logic) jobs;
* :meth:`SciductionEngine.cancel` — pending jobs can be cancelled until
  the batch reaches them; under ``workers > 1`` a submitted job can
  still be cancelled while it is queued behind an in-flight job.

Exhausted budgets, timeouts, and failures never raise out of
:meth:`~SciductionEngine.run_batch`; they are reported as structured
unsuccessful results (``details["outcome"]``) with the job marked
accordingly.
"""

from __future__ import annotations

import enum
import itertools
import multiprocessing
import time
from concurrent.futures import CancelledError, Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.api.config import EngineConfig
from repro.api.pool import SolverPool
from repro.api.problems import JobContext, ProblemSpec, problem_from_dict
from repro.api.results import json_safe, result_from_dict, result_to_dict
from repro.core.exceptions import BudgetExceededError, ReproError, SolverError
from repro.core.procedure import SciductionResult


class JobState(enum.Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    TIMED_OUT = "timed-out"
    BUDGET_EXHAUSTED = "budget-exhausted"
    CANCELLED = "cancelled"


@dataclass
class Job:
    """Handle for one submitted problem.

    The handle is returned by :meth:`SciductionEngine.submit` immediately
    and filled in by :meth:`SciductionEngine.run_batch`.
    """

    job_id: int
    problem: ProblemSpec
    max_conflicts: int | None = None
    timeout: float | None = None
    label: str | None = None
    state: JobState = JobState.PENDING
    result: SciductionResult | None = None
    error: str | None = None
    elapsed: float = 0.0
    # Transient parallel-execution state (parent side; never pickled —
    # only wire dictionaries cross the process boundary).
    _future: Future | None = field(default=None, repr=False, compare=False)
    _bucket: int = field(default=0, repr=False, compare=False)
    _crash_retried: bool = field(default=False, repr=False, compare=False)
    _result_wire: dict | None = field(default=None, repr=False, compare=False)

    @property
    def done(self) -> bool:
        """Whether the job has reached a terminal state."""
        return self.state not in (JobState.PENDING, JobState.RUNNING)

    def result_wire(self) -> dict | None:
        """The result's JSON wire form, or None while the job is open.

        Under ``workers > 1`` this is the *exact* dictionary produced by
        the worker process (so two runs of the same batch can be compared
        byte for byte); sequentially it is computed on demand.
        """
        if self._result_wire is not None:
            return self._result_wire
        if self.result is None:
            return None
        return result_to_dict(self.result)


# ---------------------------------------------------------------------------
# Worker-process machinery (workers > 1)
# ---------------------------------------------------------------------------

#: The per-process engine built by :func:`_initialize_worker`.  One engine —
#: and therefore one :class:`SolverPool` — lives for the whole worker
#: process, so warm sessions amortize across every job the worker runs.
_WORKER_ENGINE: "SciductionEngine | None" = None


def _initialize_worker(config_wire: dict) -> None:
    """Process-pool initializer: build this worker's engine from the wire.

    The worker engine is forced to ``workers=1`` — worker processes run
    their jobs sequentially; parallelism lives in the parent's executor.
    """
    global _WORKER_ENGINE
    _WORKER_ENGINE = SciductionEngine(
        EngineConfig.from_dict(dict(config_wire, workers=1))
    )


def _run_job_in_worker(payload: dict) -> dict:
    """Execute one job (wire form in, wire form out) in a worker process.

    Budget, deadline and statistics semantics are exactly the sequential
    engine's: the payload carries the *relative* timeout, the deadline
    clock starts when the job starts executing here, and the per-job
    statistics deltas are snapshotted by this process's lease — never by
    the parent — so parallel batches report per-job work, not
    pool-lifetime totals.
    """
    engine = _WORKER_ENGINE
    if engine is None:  # pragma: no cover — initializer always ran
        raise ReproError("worker process was not initialized")
    job = Job(
        job_id=payload["job_id"],
        problem=problem_from_dict(payload["problem"]),
        max_conflicts=payload["max_conflicts"],
        timeout=payload["timeout"],
        label=payload["label"],
    )
    engine._execute(job)
    assert job.result is not None
    return {
        "state": job.state.value,
        "error": job.error,
        "elapsed": job.elapsed,
        "result": result_to_dict(job.result),
    }


def _fork_context():
    """The ``fork`` multiprocessing context when available (else default).

    Forked workers inherit the parent's problem-type registry, so problem
    kinds registered at runtime (plugins, tests) remain resolvable in the
    workers; platforms without ``fork`` fall back to the default start
    method, where only import-time registrations are visible.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-POSIX platforms
        return None


class SciductionEngine:
    """Unified engine running declarative problem specs over pooled solvers.

    Args:
        config: engine configuration (solver flags, pool sizing); one
            config governs every job — problem specs carry only problem
            parameters.
        pool: inject a pre-built :class:`SolverPool` (e.g. to share
            sessions between engines); by default the engine owns one
            sized by ``config.pool_size``.
    """

    def __init__(self, config: EngineConfig | None = None, pool: SolverPool | None = None):
        self.config = config or EngineConfig()
        self.pool = pool or SolverPool(self.config)
        self._jobs: list[Job] = []
        self._job_ids = itertools.count(1)

    # -- job lifecycle -----------------------------------------------------

    def submit(
        self,
        problem: ProblemSpec | dict,
        max_conflicts: int | None = None,
        timeout: float | None = None,
        label: str | None = None,
    ) -> Job:
        """Queue a problem for the next :meth:`run_batch`.

        Args:
            problem: a spec instance, or its wire-format dictionary
                (dispatched through the problem-type registry).
            max_conflicts: job-wide CDCL conflict budget.
            timeout: wall-clock seconds before the job is preempted.
            label: free-form tag echoed into the result details.
        """
        if isinstance(problem, dict):
            problem = problem_from_dict(problem)
        if not isinstance(problem, ProblemSpec):
            raise ReproError(
                f"expected a ProblemSpec or wire dict, got {type(problem).__name__}"
            )
        job = Job(
            job_id=next(self._job_ids),
            problem=problem,
            max_conflicts=max_conflicts,
            timeout=timeout,
            label=label,
        )
        self._jobs.append(job)
        return job

    def cancel(self, job: Job) -> bool:
        """Cancel a job; returns whether the cancellation took.

        Pending jobs always cancel.  Under ``workers > 1`` a job already
        submitted to a worker can still be cancelled while it is queued
        behind another in-flight job (its future has not started); a job
        whose worker is already executing it cannot be cancelled.
        """
        if job.state is JobState.PENDING:
            self._mark_cancelled(job)
            return True
        if (
            job.state is JobState.RUNNING
            and job._future is not None
            and job._future.cancel()
        ):
            self._mark_cancelled(job)
            return True
        return False

    @staticmethod
    def _mark_cancelled(job: Job) -> None:
        job.state = JobState.CANCELLED
        job.result = SciductionResult(
            success=False, details={"outcome": "cancelled"}
        )

    @property
    def jobs(self) -> tuple[Job, ...]:
        """Every job ever submitted to this engine (read-only view)."""
        return tuple(self._jobs)

    # -- execution ---------------------------------------------------------

    def run(
        self,
        problem: ProblemSpec | dict,
        max_conflicts: int | None = None,
        timeout: float | None = None,
    ) -> SciductionResult:
        """Submit one problem and run it immediately."""
        job = self.submit(problem, max_conflicts=max_conflicts, timeout=timeout)
        self._execute(job)
        assert job.result is not None
        return job.result

    def run_batch(
        self, problems: list[ProblemSpec | dict] | None = None
    ) -> list[SciductionResult]:
        """Run every pending job (submitting ``problems`` first).

        Returns results in submission order — independent of the pool's
        session scheduling and of ``config.workers``.  Individual
        failures, exhausted budgets and timeouts are reported in the
        results, never raised.
        """
        for problem in problems or []:
            self.submit(problem)
        batch = [job for job in self._jobs if job.state is JobState.PENDING]
        if self.config.workers > 1 and len(batch) > 1:
            self._execute_batch_parallel(batch)
        else:
            for job in batch:
                self._execute(job)
        results = []
        for job in batch:
            assert job.result is not None
            results.append(job.result)
        return results

    # -- parallel execution ------------------------------------------------

    def _execute_batch_parallel(self, batch: list[Job]) -> None:
        """Fan ``batch`` out over worker processes with shape affinity.

        Jobs are bucketed by their problem's shape key (buckets assigned
        to workers round-robin in first-appearance order — deterministic,
        unlike a hash) and each bucket is served by a dedicated
        single-process executor, FIFO.  A shape's jobs therefore hit one
        worker, in submission order, on one warm session — exactly the
        session history the sequential engine produces — so parallel
        results match sequential results, and they are collected back in
        submission order regardless of which worker finishes first.
        """
        workers = min(self.config.workers, len(batch))
        config_wire = self.config.to_dict()
        bucket_of_shape: dict[str, int] = {}
        buckets: list[list[Job]] = [[] for _ in range(workers)]
        for job in batch:
            shape = job.problem.shape_key()
            if shape not in bucket_of_shape:
                # Deterministic least-loaded assignment: a new shape goes
                # to the worker with the fewest queued jobs so far (ties
                # break on the lower index).  Any shape→worker map keeps
                # results byte-identical — what matters for parity is that
                # one worker owns all of a shape's jobs, in order.
                bucket_of_shape[shape] = min(
                    range(workers), key=lambda index: (len(buckets[index]), index)
                )
            job._bucket = bucket_of_shape[shape]
            buckets[job._bucket].append(job)
        executors: list[ProcessPoolExecutor | None] = [None] * workers

        def executor_for(bucket: int) -> ProcessPoolExecutor:
            if executors[bucket] is None:
                executors[bucket] = ProcessPoolExecutor(
                    max_workers=1,
                    mp_context=_fork_context(),
                    initializer=_initialize_worker,
                    initargs=(config_wire,),
                )
            return executors[bucket]

        def submit(job: Job) -> None:
            job.state = JobState.RUNNING
            job._future = executor_for(job._bucket).submit(
                _run_job_in_worker,
                {
                    "job_id": job.job_id,
                    "problem": job.problem.to_dict(),
                    "max_conflicts": job.max_conflicts,
                    "timeout": job.timeout,
                    "label": job.label,
                },
            )

        def retire_worker(bucket: int) -> None:
            # Mirror of the pool's poisoned-session retirement: drop the
            # dead process, then resubmit the bucket's unfinished jobs to
            # a fresh worker (preserving their order).
            executor = executors[bucket]
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
                executors[bucket] = None
            for queued in buckets[bucket]:
                if queued.state is JobState.RUNNING:
                    submit(queued)

        try:
            for bucket_jobs in buckets:
                for job in bucket_jobs:
                    submit(job)
            for job in batch:
                self._collect_parallel(job, retire_worker)
        finally:
            # Waiting for worker teardown keeps interpreter shutdown clean
            # (an abandoned executor's atexit hook races its own pipes);
            # every job has been collected, so the workers are idle.
            for executor in executors:
                if executor is not None:
                    executor.shutdown(wait=True, cancel_futures=True)

    def _collect_parallel(self, job: Job, retire_worker) -> None:
        """Wait for one parallel job and fold its outcome into the handle."""
        while True:
            if job.state is JobState.CANCELLED:
                return  # cancel() already recorded the structured result
            assert job._future is not None
            try:
                payload = job._future.result()
            except CancelledError:
                return  # cancel() won the race while the job was queued
            except BrokenProcessPool:
                if not job._crash_retried:
                    job._crash_retried = True
                    retire_worker(job._bucket)
                    continue
                self._record_crash(job)
                retire_worker(job._bucket)
                return
            except Exception as error:  # noqa: BLE001 — batch jobs never raise
                # The worker returned an unrunnable-job error (e.g. a
                # problem kind not registered in the worker process).
                job.state = JobState.FAILED
                job.error = str(error)
                job.result = SciductionResult(
                    success=False,
                    details={"outcome": "failed", "error": str(error)},
                )
                self._stamp_engine_details(job)
                return
            job.state = JobState(payload["state"])
            job.error = payload["error"]
            job.elapsed = payload["elapsed"]
            job._result_wire = payload["result"]
            job.result = result_from_dict(payload["result"])
            return

    def _record_crash(self, job: Job) -> None:
        job.state = JobState.FAILED
        job.error = "worker process crashed (retry exhausted)"
        job.result = SciductionResult(
            success=False,
            details={"outcome": "failed", "error": job.error},
        )
        self._stamp_engine_details(job)

    def _stamp_engine_details(self, job: Job) -> None:
        assert job.result is not None
        job.result.details.setdefault("engine", {}).update(
            {
                "job_id": job.job_id,
                "label": job.label,
                "state": job.state.value,
                "pooled": job.problem.needs_solver,
                "session_reused": False,
            }
        )

    def _execute(self, job: Job) -> None:
        if job.state is not JobState.PENDING:
            return
        job.state = JobState.RUNNING
        deadline = (
            time.monotonic() + job.timeout if job.timeout is not None else None
        )
        start = time.perf_counter()
        retried = False
        while True:
            lease = (
                self.pool.acquire(shape=job.problem.shape_key())
                if job.problem.needs_solver
                else None
            )
            retire = False
            try:
                if lease is not None:
                    lease.solver.set_job_limits(
                        max_conflicts=job.max_conflicts, deadline=deadline
                    )
                context = JobContext(
                    config=self.config, lease=lease, deadline=deadline
                )
                result = job.problem.run(context)
                job.state = JobState.COMPLETED
            except BudgetExceededError as error:
                timed_out = deadline is not None and time.monotonic() >= deadline
                job.state = (
                    JobState.TIMED_OUT if timed_out else JobState.BUDGET_EXHAUSTED
                )
                job.error = str(error)
                details = {"outcome": job.state.value, "error": str(error)}
                if error.partial:
                    # Reusable partial progress (e.g. the OGIS example
                    # set); resubmitting the problem with it resumes the
                    # job instead of restarting from zero.
                    details["partial"] = json_safe(error.partial)
                result = SciductionResult(success=False, details=details)
            except SolverError as error:
                # A pooled session can be poisoned by an earlier tenant
                # (e.g. a variable redeclared at a different width).
                # Retire it and retry the job once on a fresh solver —
                # but only when the session actually had an earlier
                # tenant; a fresh solver failing the same way would just
                # repeat the job's side effects.
                retire = True
                if lease is not None and lease.reused and not retried:
                    retried = True
                    if lease.solver is not None:
                        lease.solver.set_job_limits()
                    self.pool.retire(lease)
                    continue
                job.state = JobState.FAILED
                job.error = str(error)
                result = SciductionResult(
                    success=False,
                    details={"outcome": "failed", "error": str(error)},
                )
            except Exception as error:  # noqa: BLE001 — batch jobs never raise
                job.state = JobState.FAILED
                job.error = str(error)
                result = SciductionResult(
                    success=False,
                    details={"outcome": "failed", "error": str(error)},
                )
            finally:
                if lease is not None and not lease.released:
                    lease.solver.set_job_limits()
                    job_smt = lease.smt_statistics()
                    job_sat = lease.sat_statistics()
                    if retire:
                        self.pool.retire(lease)
                    else:
                        self.pool.release(lease)
                else:
                    job_smt = job_sat = None
            break
        job.elapsed = time.perf_counter() - start
        result.details.setdefault("engine", {}).update(
            {
                "job_id": job.job_id,
                "label": job.label,
                "state": job.state.value,
                "pooled": job.problem.needs_solver,
                "session_reused": bool(lease is not None and lease.reused),
            }
        )
        if job_smt is not None:
            # Per-job accounting: deltas charged to this lease, never the
            # pooled solver's lifetime totals.
            result.details["engine"]["smt_job_statistics"] = {
                "checks": job_smt.checks,
                "sat_answers": job_smt.sat_answers,
                "unsat_answers": job_smt.unsat_answers,
                "variables_generated": job_smt.variables_generated,
                "clauses_generated": job_smt.clauses_generated,
            }
            result.details["engine"]["sat_job_statistics"] = {
                "conflicts": job_sat.conflicts,
                "decisions": job_sat.decisions,
                "propagations": job_sat.propagations,
                "learned_clauses": job_sat.learned_clauses,
            }
        job.result = result

    # -- reporting ---------------------------------------------------------

    def batch_report(self) -> list[dict]:
        """JSON-ready summaries of every finished job."""
        report = []
        for job in self._jobs:
            if job.result is None:
                continue
            entry = {
                "job_id": job.job_id,
                "label": job.label,
                "state": job.state.value,
                "elapsed": job.elapsed,
                "problem": job.problem.to_dict(),
                "result": result_to_dict(job.result),
            }
            report.append(entry)
        return report
