"""Shared cross-worker check-memo service.

:class:`~repro.smt.solver.SmtSolver` memoizes decided ``check`` answers
*per solver*: a warm shape-routed session answers a repeated query
without running the SAT search.  That memo dies with its solver — a
verdict decided by worker A is recomputed from scratch when the same
check arrives on worker B (a stolen shape queue, a re-planned batch on a
long-lived service, a session recycled past the pool bound).

This module lifts the memo out of the solver into a process-shared
store:

* :class:`SharedCheckMemo` is the store itself — a bounded LRU mapping
  from the *wire form* of a check (a structural digest of the asserted
  formulas, the ``extra`` assumptions and the solver's variable
  frontier) to the decided verdict plus the recorded model bits.  It
  lives in the parent process: sequential engines hold it directly,
  parallel engines serve it to their workers through a
  ``multiprocessing`` manager (:func:`start_shared_memo`).
* :class:`MemoClient` is the per-worker handle installed on a
  :class:`~repro.api.pool.SolverPool`: every solver the pool creates
  consults it *after* its own in-memory memo misses (read-through — a
  shared hit is copied into the local memo so the round trip is paid
  once per worker), and publishes every decided answer back.
* :func:`check_wire_key` builds the store key.  Keys are
  content-addressed — hash-consed terms are digested structurally, so
  two workers that assert the same formulas from the same variable
  frontier produce the same key even though their term objects live in
  different processes.

Soundness is the same argument as the solver-local memo: a check's
verdict is a pure function of the asserted formulas, and the recorded
model bits are exactly what the deterministic search would recompute —
*provided* the variable layout matches, which the frontier component of
the key guarantees for the deterministic same-shape job replays the
engine's scheduler produces (a shape's jobs always run on one worker, in
submission order, from a freshly sealed or rolled-back base scope).
UNKNOWN (budget-limited) answers are never published.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from multiprocessing.managers import BaseManager
from typing import Any

from repro.analysis.annotations import guarded_by
from repro.smt.wire import check_wire_key, term_digest  # noqa: F401 — re-export

# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


@dataclass
class SharedMemoStatistics:
    """Counters describing one :class:`SharedCheckMemo` over its lifetime."""

    lookups: int = 0
    hits: int = 0
    #: Hits whose entry was published by a *different* client than the
    #: requester — a verdict decided on worker A short-circuiting the
    #: same check on worker B.
    cross_worker_hits: int = 0
    publishes: int = 0
    #: Publishes dropped because the key was already present.
    duplicate_publishes: int = 0
    evictions: int = 0

    def as_dict(self) -> dict:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "cross_worker_hits": self.cross_worker_hits,
            "publishes": self.publishes,
            "duplicate_publishes": self.duplicate_publishes,
            "evictions": self.evictions,
        }


@guarded_by("_lock", "_entries", "_statistics")
class SharedCheckMemo:
    """Bounded LRU store of decided check answers, shared across workers.

    Entries map :func:`check_wire_key` keys to
    ``(verdict, model_bits, publisher)`` where ``verdict`` is the
    :class:`~repro.smt.solver.SmtResult` value string and ``model_bits``
    is the recorded SAT model (None for UNSAT).  The store is
    thread-safe; under a ``multiprocessing`` manager every method call is
    additionally serialized by the proxy layer.

    Args:
        capacity: maximum number of entries; the least-recently-used
            entry is evicted past the bound.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("shared memo capacity must be at least 1")
        self._capacity = capacity
        self._entries: OrderedDict[str, tuple[str, list[bool] | None, str]] = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._statistics = SharedMemoStatistics()

    def lookup(self, key: str, requester: str) -> tuple[str, list[bool] | None] | None:
        """The stored ``(verdict, model_bits)`` for ``key``, or None.

        A hit refreshes the entry's recency; a hit on an entry published
        by a different client is additionally counted as a cross-worker
        hit.
        """
        with self._lock:
            self._statistics.lookups += 1
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            verdict, model_bits, publisher = entry
            self._statistics.hits += 1
            if publisher != requester:
                self._statistics.cross_worker_hits += 1
            return verdict, model_bits

    def publish(
        self,
        key: str,
        verdict: str,
        model_bits: list[bool] | None,
        publisher: str,
    ) -> None:
        """Record a decided answer (first writer wins; LRU-bounded)."""
        with self._lock:
            if key in self._entries:
                self._statistics.duplicate_publishes += 1
                self._entries.move_to_end(key)
                return
            self._entries[key] = (verdict, model_bits, publisher)
            self._statistics.publishes += 1
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._statistics.evictions += 1

    def size(self) -> int:
        """Number of stored entries."""
        with self._lock:
            return len(self._entries)

    def capacity(self) -> int:
        """The LRU bound."""
        return self._capacity

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    def statistics(self) -> dict:
        """JSON-ready counter snapshot (includes current size)."""
        with self._lock:
            record = self._statistics.as_dict()
            record["entries"] = len(self._entries)
            record["capacity"] = self._capacity
            return record


@dataclass
class MemoClient:
    """One worker's handle on a (possibly manager-served) shared memo.

    This is the ``memo_backend`` consumed by
    :meth:`~repro.smt.solver.SmtSolver.set_memo_backend`: it stamps every
    store call with the worker's client id (which is how the store
    distinguishes cross-worker hits from same-worker ones) and absorbs
    transport failures — a dead manager degrades the shared memo to a
    no-op instead of poisoning in-flight jobs.
    """

    store: SharedCheckMemo  # or a manager proxy with the same methods
    client_id: str
    #: Set after the first transport failure; all later calls short-circuit.
    broken: bool = field(default=False, compare=False)

    def lookup(self, key: str) -> tuple[str, list[bool] | None] | None:
        if self.broken:
            return None
        try:
            return self.store.lookup(key, self.client_id)
        except Exception:
            self.broken = True
            return None

    def publish(self, key: str, verdict: str, model_bits: list[bool] | None) -> None:
        if self.broken:
            return
        try:
            self.store.publish(key, verdict, model_bits, self.client_id)
        except Exception:
            self.broken = True


# ---------------------------------------------------------------------------
# Manager plumbing (parallel engines)
# ---------------------------------------------------------------------------


class _MemoManager(BaseManager):
    """Manager serving one :class:`SharedCheckMemo` to worker processes."""


_MemoManager.register("SharedCheckMemo", SharedCheckMemo)


def start_shared_memo(
    capacity: int, context: Any | None = None
) -> tuple[_MemoManager, Any]:
    """Start a manager process hosting a :class:`SharedCheckMemo`.

    Returns ``(manager, proxy)``; the proxy is picklable and is handed to
    worker processes through their initializer, the manager must be kept
    alive (and eventually ``shutdown()``) by the caller.
    """
    manager = _MemoManager(ctx=context)
    manager.start()
    proxy = manager.SharedCheckMemo(capacity)  # type: ignore[attr-defined]
    return manager, proxy
