"""One configuration surface for the whole sciduction engine.

Before :mod:`repro.api`, the solver knobs introduced by the incremental
and query-shrinking passes (``reencode_each_check``, ``simplify_terms``,
``polarity_aware``, ``gc_dead_clauses``) were hand-threaded as loose
kwargs through :class:`~repro.ogis.encoding.SynthesisEncoder`,
:class:`~repro.ogis.synthesizer.OgisSynthesizer` and
:class:`~repro.cfg.ssa.PathConstraintBuilder`, each copy drifting
independently.  :class:`EngineConfig` replaces all of them: one frozen,
JSON-serializable dataclass that every layer consumes via
:meth:`EngineConfig.solver_options`.

The module deliberately imports nothing from the application layers so it
can be imported from anywhere in the package without cycles.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

from repro.core.exceptions import ReproError


@dataclass(frozen=True)
class EngineConfig:
    """All engine-level tuning knobs in one place.

    Attributes:
        simplify_terms: run the word-level simplifier over every formula
            before bit-blasting (ablation knob).
        polarity_aware: Plaisted–Greenbaum CNF for asserted formulas
            (ablation knob).
        gc_dead_clauses: dead-scope clause threshold triggering SAT
            database garbage collection; ``None`` disables it.
        reencode_each_check: rebuild a fresh SAT solver for every check
            (the pre-incremental escape hatch / benchmark baseline).
        adaptive_restarts: use glucose-style LBD-moving-average restarts
            instead of the default Luby sequence.
        max_conflicts: default per-check CDCL conflict budget (``None``
            = unlimited); per-*job* budgets are set at submit time and
            override nothing here — both limits apply independently.
        workers: number of worker *processes* backing
            :meth:`~repro.api.engine.SciductionEngine.run_batch`.  The
            default of 1 runs jobs sequentially in-process; ``workers > 1``
            fans the batch out over a process pool, one
            :class:`~repro.api.pool.SolverPool` per worker, with jobs
            routed to workers by problem shape so every shape's session
            history (and therefore every result) is identical to the
            sequential run.
        pool_size: maximum number of idle persistent solver sessions kept
            warm by the engine's :class:`~repro.api.pool.SolverPool`.
            Sessions are keyed by problem shape (see
            :meth:`~repro.api.problems.ProblemSpec.shape_key`), so the
            default of 4 lets a mixed stream keep one warm session per
            shape; the least-recently-used session is recycled past the
            limit.
        reuse_sessions: when False the pool hands out a fresh solver for
            every lease (the per-job-fresh baseline measured by the
            batch-throughput benchmark).
        release_clause_lbd: LBD retention threshold applied to a pooled
            session's learned clauses when a job releases its lease:
            learned clauses with LBD above the threshold are dropped, so
            the warm clause database stays lean enough that session reuse
            is a wall-time win, not just an encoding win.  The default of
            0 drops *all* learned clauses — together with the release-time
            heuristic reset this makes a warm session replay exactly the
            search a fresh solver would run, minus the encoding work;
            ``N >= 1`` additionally keeps glue/binary clauses with LBD ≤ N
            (cross-job lemma transfer, which can help or perturb);
            ``None`` disables the trim entirely.
        memoize_checks: let every solver memoize decided ``check``
            answers keyed by the exact asserted-formula sequence (see
            :class:`~repro.smt.solver.SmtSolver`).  On a warm shape-routed
            session a repeated job replays the same query sequence, so
            its checks answer from the memo without running the SAT
            search — this is the warm-cache hit that makes pooled
            throughput beat per-job-fresh solving.  Fresh solvers carry
            the same flag (one config governs both), they just never see
            a repeat within their one-job lifetime.
        shared_check_memo: additionally share decided check answers
            *across* solver sessions and worker processes through a
            :class:`~repro.api.memo.SharedCheckMemo` owned by the engine
            (workers reach it through a ``multiprocessing`` manager).
            Keys are the process-independent wire form of ``(assertions,
            extras, frontier)``, so a verdict decided on worker A
            short-circuits the same check on worker B — the situation a
            long-lived service creates whenever a problem shape moves
            between workers (re-planned batches, stolen shape queues,
            sessions recycled past the pool bound).  Requires
            ``memoize_checks``; ignored without it.
        shared_memo_size: LRU entry bound of the shared check memo.
        gc_freeze_sessions: move each pooled session's long-lived object
            graph (clause database, watch lists, bit-blast caches) into
            the cyclic garbage collector's permanent generation the first
            time the session is released (``gc.collect()`` then
            ``gc.freeze()``, the standard long-lived-service pattern).
            Without this, every generation-2 collection re-walks the warm
            sessions' graphs and session reuse loses its wall-time edge
            over fresh solvers.  The freeze affects the whole process:
            objects alive at freeze time are exempted from cyclic
            collection (reference counting still frees them normally).
        intern_table_limit: once the global hash-consing table exceeds
            this many entries, the pool evicts each finished job's
            interned terms at lease release and recycles the session
            that cached them (``None`` = never).  Below the limit,
            cross-job term sharing — and therefore bit-blast-cache
            amortization — is fully preserved; past it, memory is
            genuinely bounded at the cost of cold sessions.
        job_retry_limit: per-job budget for supervised retries — both a
            worker process crashing mid-job (parallel execution) and a
            poisoned pooled session failing a job (sequential
            execution) consume from it.  Once exhausted the job reaches
            a terminal ``failed`` state whose details carry the fault
            chain (one entry per attempt), so an operator can tell a
            persistent fault from a transient one.  0 disables retries.
        retry_backoff: base seconds slept before retry attempt ``n``
            (``retry_backoff * 2**(n-1)``, exponential).  The default
            of 0 retries immediately — correct for poisoned-session
            retries, which are deterministic; raise it on deployments
            where crashes are resource-driven and immediate retries
            would just crash again.
        intra_job_workers: number of thread lanes a single job may fan
            its independent SMT queries across (*within* one process —
            distinct from ``workers``, the cross-job process fleet).
            Today this drives GameTime's parallel feasibility sweeps:
            per-path verdict checks run on replica sessions
            (:meth:`~repro.api.pool.SolverPool.acquire_replica`), one
            lane per replica, while witness extraction stays on the
            job's primary session in path order — which is what keeps
            results byte-identical for every lane count (see
            ``docs/PARALLELISM.md``).  Lanes are additionally capped at
            ``pool_size - 1`` so intra-job replicas can never starve
            the cross-job session supply.  1 (the default) keeps the
            sweep single-threaded but still routes verdicts through one
            replica session, so per-job statistics are lane-invariant
            too.
        speculative_ogis: overlap each OGIS distinguishing-input query
            with a speculative synthesis round for the *next* candidate
            on a replica session.  The primary session always executes
            the exact sequential query trace and its answers alone are
            committed — the speculative lane's outcome is compared,
            counted (``speculation_wins`` / ``speculation_losses`` in
            :meth:`~repro.api.engine.SciductionEngine.statistics`), and
            discarded — so results, certificates and per-job statistics
            are byte-identical with the flag on or off.
    """

    simplify_terms: bool = True
    polarity_aware: bool = True
    gc_dead_clauses: int | None = 2000
    reencode_each_check: bool = False
    adaptive_restarts: bool = False
    max_conflicts: int | None = None
    workers: int = 1
    pool_size: int = 4
    reuse_sessions: bool = True
    release_clause_lbd: int | None = 0
    memoize_checks: bool = True
    shared_check_memo: bool = True
    shared_memo_size: int = 4096
    gc_freeze_sessions: bool = True
    intern_table_limit: int | None = 1_000_000
    job_retry_limit: int = 1
    retry_backoff: float = 0.0
    intra_job_workers: int = 1
    speculative_ogis: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ReproError("workers must be at least 1")
        if self.intra_job_workers < 1:
            raise ReproError("intra_job_workers must be at least 1")
        if self.shared_memo_size < 1:
            raise ReproError("shared_memo_size must be at least 1")
        if self.job_retry_limit < 0:
            raise ReproError("job_retry_limit must be non-negative")
        if self.retry_backoff < 0:
            raise ReproError("retry_backoff must be non-negative")

    def solver_options(self) -> dict:
        """Keyword arguments for :class:`~repro.smt.solver.SmtSolver`."""
        return {
            "max_conflicts": self.max_conflicts,
            "reencode_each_check": self.reencode_each_check,
            "simplify_terms": self.simplify_terms,
            "polarity_aware": self.polarity_aware,
            "gc_dead_clauses": self.gc_dead_clauses,
            "restart_strategy": "glucose" if self.adaptive_restarts else "luby",
            "memoize_checks": self.memoize_checks,
        }

    def to_dict(self) -> dict:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EngineConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are rejected so that config typos fail loudly.
        """
        known = {field.name for field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown EngineConfig fields: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_legacy(
        cls,
        reencode_each_check: bool = False,
        solver_options: dict | None = None,
    ) -> "EngineConfig":
        """Adapt the deprecated per-constructor kwargs to a config.

        ``solver_options`` may carry any of the ablation knobs
        (``simplify_terms`` / ``polarity_aware`` / ``gc_dead_clauses``)
        plus ``max_conflicts`` and ``restart_strategy``.
        """
        options = dict(solver_options or {})
        strategy = options.pop("restart_strategy", "luby")
        return cls(
            reencode_each_check=reencode_each_check,
            adaptive_restarts=strategy == "glucose",
            **options,
        )
