"""One configuration surface for the whole sciduction engine.

Before :mod:`repro.api`, the solver knobs introduced by the incremental
and query-shrinking passes (``reencode_each_check``, ``simplify_terms``,
``polarity_aware``, ``gc_dead_clauses``) were hand-threaded as loose
kwargs through :class:`~repro.ogis.encoding.SynthesisEncoder`,
:class:`~repro.ogis.synthesizer.OgisSynthesizer` and
:class:`~repro.cfg.ssa.PathConstraintBuilder`, each copy drifting
independently.  :class:`EngineConfig` replaces all of them: one frozen,
JSON-serializable dataclass that every layer consumes via
:meth:`EngineConfig.solver_options`.

The module deliberately imports nothing from the application layers so it
can be imported from anywhere in the package without cycles.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields


@dataclass(frozen=True)
class EngineConfig:
    """All engine-level tuning knobs in one place.

    Attributes:
        simplify_terms: run the word-level simplifier over every formula
            before bit-blasting (ablation knob).
        polarity_aware: Plaisted–Greenbaum CNF for asserted formulas
            (ablation knob).
        gc_dead_clauses: dead-scope clause threshold triggering SAT
            database garbage collection; ``None`` disables it.
        reencode_each_check: rebuild a fresh SAT solver for every check
            (the pre-incremental escape hatch / benchmark baseline).
        adaptive_restarts: use glucose-style LBD-moving-average restarts
            instead of the default Luby sequence.
        max_conflicts: default per-check CDCL conflict budget (``None``
            = unlimited); per-*job* budgets are set at submit time and
            override nothing here — both limits apply independently.
        pool_size: number of persistent solver sessions kept by the
            engine's :class:`~repro.api.pool.SolverPool`.
        reuse_sessions: when False the pool hands out a fresh solver for
            every lease (the per-job-fresh baseline measured by the
            batch-throughput benchmark).
        intern_table_limit: once the global hash-consing table exceeds
            this many entries, the pool evicts each finished job's
            interned terms at lease release and recycles the session
            that cached them (``None`` = never).  Below the limit,
            cross-job term sharing — and therefore bit-blast-cache
            amortization — is fully preserved; past it, memory is
            genuinely bounded at the cost of cold sessions.
    """

    simplify_terms: bool = True
    polarity_aware: bool = True
    gc_dead_clauses: int | None = 2000
    reencode_each_check: bool = False
    adaptive_restarts: bool = False
    max_conflicts: int | None = None
    pool_size: int = 1
    reuse_sessions: bool = True
    intern_table_limit: int | None = 1_000_000

    def solver_options(self) -> dict:
        """Keyword arguments for :class:`~repro.smt.solver.SmtSolver`."""
        return {
            "max_conflicts": self.max_conflicts,
            "reencode_each_check": self.reencode_each_check,
            "simplify_terms": self.simplify_terms,
            "polarity_aware": self.polarity_aware,
            "gc_dead_clauses": self.gc_dead_clauses,
            "restart_strategy": "glucose" if self.adaptive_restarts else "luby",
        }

    def to_dict(self) -> dict:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EngineConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are rejected so that config typos fail loudly.
        """
        known = {field.name for field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown EngineConfig fields: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_legacy(
        cls,
        reencode_each_check: bool = False,
        solver_options: dict | None = None,
    ) -> "EngineConfig":
        """Adapt the deprecated per-constructor kwargs to a config.

        ``solver_options`` may carry any of the ablation knobs
        (``simplify_terms`` / ``polarity_aware`` / ``gc_dead_clauses``)
        plus ``max_conflicts`` and ``restart_strategy``.
        """
        options = dict(solver_options or {})
        strategy = options.pop("restart_strategy", "luby")
        return cls(
            reencode_each_check=reencode_each_check,
            adaptive_restarts=strategy == "glucose",
            **options,
        )
