"""repro.api — the unified front door to the sciduction reproduction.

The paper presents timing analysis (Section 3), deobfuscation
(Section 4) and switching-logic synthesis (Section 5) as three instances
of one sciduction triple ⟨H, I, D⟩.  This package gives them one API to
match:

* :class:`EngineConfig` — every solver / engine knob in one frozen,
  JSON-serializable dataclass (replacing the kwargs formerly threaded
  through each application constructor);
* :class:`DeobfuscationProblem`, :class:`TimingAnalysisProblem`,
  :class:`SwitchingLogicProblem` — declarative, JSON-round-trippable
  problem specs, extensible through :func:`register_problem_type`;
* :class:`SolverPool` — persistent incremental SMT sessions leased per
  job, so learned clauses and bit-blast caches amortize across a batch;
* :class:`SciductionEngine` — ``submit`` / ``run`` / ``run_batch`` with
  per-job conflict budgets, wall-clock timeouts and cancellation, and
  results serializable with :func:`result_to_dict`.

Quickstart::

    from repro.api import (
        DeobfuscationProblem, EngineConfig, SciductionEngine,
        TimingAnalysisProblem,
    )

    engine = SciductionEngine(EngineConfig())
    engine.submit(DeobfuscationProblem(task="multiply45", width=8))
    engine.submit(TimingAnalysisProblem(
        program="modular_exponentiation",
        program_args={"exponent_bits": 4, "word_width": 16},
        bound=500,
    ))
    for result in engine.run_batch():
        print(result.success, result.verdict, result.certificate.statement())
"""

from repro.api.config import EngineConfig
from repro.api.engine import Job, JobState, SciductionEngine
from repro.api.pool import PoolStatistics, SolverLease, SolverPool
from repro.api.problems import (
    DeobfuscationProblem,
    JobContext,
    ProblemSpec,
    SwitchingLogicProblem,
    TimingAnalysisProblem,
    deobfuscation_task_names,
    problem_from_dict,
    problem_types,
    register_problem_type,
    timing_program_names,
)
from repro.api.results import (
    result_from_dict,
    result_to_dict,
    result_to_json,
    result_wire_canonical,
)

__all__ = [
    "DeobfuscationProblem",
    "EngineConfig",
    "Job",
    "JobContext",
    "JobState",
    "PoolStatistics",
    "ProblemSpec",
    "SciductionEngine",
    "SolverLease",
    "SolverPool",
    "SwitchingLogicProblem",
    "TimingAnalysisProblem",
    "deobfuscation_task_names",
    "problem_from_dict",
    "problem_types",
    "register_problem_type",
    "result_from_dict",
    "result_to_dict",
    "result_to_json",
    "result_wire_canonical",
    "timing_program_names",
]
