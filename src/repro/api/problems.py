"""Declarative, JSON-serializable problem specs for the engine.

The paper frames GameTime, OGIS deobfuscation and switching-logic
synthesis as instances of one sciduction triple ⟨H, I, D⟩; this module
gives the three applications one declarative *problem* vocabulary to
match.  A problem spec is a plain dataclass naming a registered scenario
plus its parameters — no callables, no solver handles — so specs can be
serialized, queued, and replayed:

    spec = DeobfuscationProblem(task="multiply45", width=8)
    data = spec.to_dict()              # wire form
    spec2 = problem_from_dict(data)    # round-trips

New problem types plug in through :func:`register_problem_type` without
touching the engine: subclasses declare a ``kind`` discriminator, how to
build their underlying :class:`~repro.core.procedure.SciductionProcedure`
from a :class:`JobContext`, and (optionally) how to post-process the
result.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Callable, ClassVar

from repro.api.config import EngineConfig
from repro.api.pool import SolverLease
from repro.core.exceptions import ReproError
from repro.core.procedure import SciductionProcedure, SciductionResult


@dataclass
class JobContext:
    """Everything a problem spec may draw on while building its procedure.

    Attributes:
        config: the engine configuration (one config per engine; problem
            specs carry *problem* parameters, never solver flags).
        lease: the pooled solver lease assigned to this job, or ``None``
            when the problem does not use SMT (or no pool is in play).
        deadline: ``time.monotonic()`` timestamp after which the job
            should be preempted.  SMT-backed jobs get it enforced inside
            the SAT loop via the lease; simulation-backed problems must
            wire it into their own deductive engine (see
            :meth:`SwitchingLogicProblem.build`).
    """

    config: EngineConfig = field(default_factory=EngineConfig)
    lease: SolverLease | None = None
    deadline: float | None = None

    def session(self) -> Any:
        """A job-scoped pooled solver session, or ``None`` without a lease."""
        if self.lease is None:
            return None
        return self.lease.session()

    def solver_factory(self) -> Callable | None:
        """Factory form of :meth:`session` for encoder-style consumers.

        The lease itself is returned (it is callable): encoders that know
        how to share a persistent base scope across jobs can detect the
        richer :meth:`~repro.api.pool.SolverLease.base_session` /
        ``seal_base`` protocol on it, while plain callers just call it.
        """
        if self.lease is None:
            return None
        return self.lease


class ProblemSpec:
    """Base class for declarative problem specifications.

    Concrete specs are dataclasses; ``kind`` is the wire discriminator
    used by the registry.  The default :meth:`run` builds the procedure
    and runs it, stamping the spec and the ⟨H, I, D⟩ description into the
    result's details.
    """

    #: Wire-format discriminator (unique per registered problem type).
    kind: ClassVar[str] = "abstract"
    #: Whether the job should be given a pooled SMT solver session.
    needs_solver: ClassVar[bool] = True

    def shape_key(self) -> str:
        """Routing key for shape-aware session placement.

        Jobs with equal shape keys produce structurally similar SMT
        encodings (same problem kind, same bit widths), so the
        :class:`~repro.api.pool.SolverPool` routes them to the session
        that last solved the same shape — its bit-blast caches and
        retained learned clauses then actually apply.  The engine's
        parallel executor also buckets jobs onto workers by this key,
        which keeps every shape's session history (and therefore every
        result) identical to the sequential run.  Subclasses refine the
        default (the bare ``kind``) with their width signature.
        """
        return self.kind

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        data = {"kind": self.kind}
        data.update(asdict(self))  # type: ignore[call-overload]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ProblemSpec":
        """Rebuild a spec from :meth:`to_dict` output (unknown keys fail)."""
        payload = {key: value for key, value in data.items() if key != "kind"}
        known = {spec_field.name for spec_field in fields(cls)}  # type: ignore[arg-type]
        unknown = set(payload) - known
        if unknown:
            raise ReproError(
                f"unknown fields for problem kind {cls.kind!r}: {sorted(unknown)}"
            )
        return cls(**payload)

    # -- execution --------------------------------------------------------

    def build(self, context: JobContext | None = None) -> SciductionProcedure:
        """Construct the underlying sciduction procedure."""
        raise NotImplementedError

    def run_kwargs(self) -> dict:
        """Extra keyword arguments for ``procedure.run()``."""
        return {}

    def finish(
        self, result: SciductionResult, procedure: SciductionProcedure
    ) -> SciductionResult:
        """Hook for per-problem post-processing (e.g. verdict checks)."""
        return result

    def run(self, context: JobContext | None = None) -> SciductionResult:
        """Build and run the procedure, annotating the result."""
        context = context or JobContext()
        procedure = self.build(context)
        result = procedure.run(**self.run_kwargs())
        result = self.finish(result, procedure)
        result.details.setdefault("problem", self.to_dict())
        result.details.setdefault("hid", procedure.describe())
        return result


#: Registry of problem types, keyed by their ``kind`` discriminator.
_PROBLEM_TYPES: dict[str, type[ProblemSpec]] = {}


def register_problem_type(cls: type[ProblemSpec]) -> type[ProblemSpec]:
    """Class decorator registering a spec under its ``kind``.

    Registration is what lets new scenarios plug into the engine without
    touching it: ``problem_from_dict`` (and therefore any queue/wire
    front end) dispatches purely on the registry.
    """
    if not cls.kind or cls.kind == "abstract":
        raise ReproError(f"{cls.__name__} must declare a concrete 'kind'")
    existing = _PROBLEM_TYPES.get(cls.kind)
    if existing is not None and existing is not cls:
        raise ReproError(f"problem kind {cls.kind!r} is already registered")
    _PROBLEM_TYPES[cls.kind] = cls
    return cls


def problem_types() -> dict[str, type[ProblemSpec]]:
    """A copy of the registry (kind → spec class)."""
    return dict(_PROBLEM_TYPES)


def problem_from_dict(data: dict) -> ProblemSpec:
    """Instantiate the right spec class for a wire-format dictionary."""
    kind = data.get("kind")
    if kind not in _PROBLEM_TYPES:
        raise ReproError(
            f"unknown problem kind {kind!r} "
            f"(registered: {sorted(_PROBLEM_TYPES)})"
        )
    return _PROBLEM_TYPES[kind].from_dict(data)


# ---------------------------------------------------------------------------
# Deobfuscation (paper Section 4)
# ---------------------------------------------------------------------------


def _deobfuscation_tasks() -> dict:
    """Named OGIS benchmark tasks (library, obfuscated, reference, arity)."""
    from repro.ogis import (
        insufficient_multiply45_library,
        interchange_library,
        interchange_obfuscated,
        interchange_reference,
        multiply45_library,
        multiply45_obfuscated,
        multiply45_reference,
    )

    return {
        "interchange": (
            interchange_library, interchange_obfuscated, interchange_reference, 2, 2,
        ),
        "multiply45": (
            multiply45_library, multiply45_obfuscated, multiply45_reference, 1, 1,
        ),
        # The Figure 7 failure mode: an insufficient library, so synthesis
        # either reports infeasibility or produces an artifact that fails
        # the a-posteriori equivalence check (verdict False).
        "multiply45_insufficient": (
            insufficient_multiply45_library, multiply45_obfuscated,
            multiply45_reference, 1, 1,
        ),
    }


@register_problem_type
@dataclass
class DeobfuscationProblem(ProblemSpec):
    """Recover a clean program from a named obfuscated I/O oracle.

    Attributes:
        task: registered task name (see :func:`deobfuscation_task_names`).
        width: synthesis bit width.
        seed: RNG seed for the initial oracle queries.
        max_iterations: OGIS candidate/distinguishing-input round budget.
        initial_examples: random seed inputs queried up front.
        examples: oracle-verified I/O examples seeding the loop, as
            ``[[inputs...], [outputs...]]`` pairs — the wire form of the
            ``partial["examples"]`` payload a budget-exhausted run leaves
            in its result details.  Resubmitting with them makes the job
            *resumable*: synthesis continues from the learned evidence
            instead of restarting from zero.
    """

    kind: ClassVar[str] = "deobfuscation"
    needs_solver: ClassVar[bool] = True

    task: str = "multiply45"
    width: int = 8
    seed: int = 0
    max_iterations: int = 32
    initial_examples: int = 1
    examples: list = field(default_factory=list)

    def shape_key(self) -> str:
        return f"{self.kind}/w{self.width}"

    def _task(self) -> tuple:
        tasks = _deobfuscation_tasks()
        if self.task not in tasks:
            raise ReproError(
                f"unknown deobfuscation task {self.task!r} "
                f"(available: {sorted(tasks)})"
            )
        return tasks[self.task]

    def build(self, context: JobContext | None = None) -> SciductionProcedure:
        from repro.ogis import OgisSynthesizer, ProgramIOOracle
        from repro.ogis.encoding import IOExample

        context = context or JobContext()
        library, obfuscated, _, num_inputs, num_outputs = self._task()
        oracle = ProgramIOOracle(
            lambda values: obfuscated(values, self.width),
            num_inputs,
            num_outputs,
            self.width,
        )
        return OgisSynthesizer(
            library(),
            oracle,
            width=self.width,
            max_iterations=self.max_iterations,
            initial_examples=self.initial_examples,
            seed=self.seed,
            config=context.config,
            solver_factory=context.solver_factory(),
            examples=[
                IOExample(inputs=tuple(inputs), outputs=tuple(outputs))
                for inputs, outputs in self.examples
            ],
        )

    def finish(
        self, result: SciductionResult, procedure: SciductionProcedure
    ) -> SciductionResult:
        # A-posteriori structure-hypothesis check (paper Section 6): the
        # verdict is whether the synthesized program is equivalent to the
        # reference semantics at the synthesis width.
        _, _, reference, _, _ = self._task()
        if result.success and result.artifact is not None:
            result.verdict = bool(
                result.artifact.equivalent_to(
                    lambda values: reference(values, self.width), width=self.width
                )
            )
        elif not result.success:
            result.verdict = False
        return result


def deobfuscation_task_names() -> list[str]:
    """Names accepted by :class:`DeobfuscationProblem`."""
    return sorted(_deobfuscation_tasks())


# ---------------------------------------------------------------------------
# Timing analysis (paper Section 3)
# ---------------------------------------------------------------------------


def _timing_programs() -> dict:
    """Named task programs for timing analysis."""
    from repro.cfg.programs import (
        absolute_difference,
        bounded_linear_search,
        conditional_cascade,
        figure4_toy,
        modular_exponentiation,
        saturating_add,
    )

    return {
        "figure4_toy": figure4_toy,
        "modular_exponentiation": modular_exponentiation,
        "conditional_cascade": conditional_cascade,
        "saturating_add": saturating_add,
        "absolute_difference": absolute_difference,
        "bounded_linear_search": bounded_linear_search,
    }


@register_problem_type
@dataclass
class TimingAnalysisProblem(ProblemSpec):
    """GameTime-style WCET analysis of a named task program.

    Attributes:
        program: registered program name (see
            :func:`timing_program_names`).
        program_args: keyword arguments for the program factory (e.g.
            ``{"exponent_bits": 4, "word_width": 16}``).
        bound: optional cycle bound for the ⟨TA⟩ decision problem; when
            given, the result's ``verdict`` answers "is the execution
            time always at most ``bound``?".
        trials: measurement budget (default: 3 × basis paths).
        seed: RNG seed for the measurement schedule.
        start_state: environment start state for measurements.
        distribution: additionally predict and measure *every* feasible
            path (the paper's Figure 6 distribution) and stamp the
            report into the result details.  This is the "single big
            job" shape: its per-path feasibility queries run through
            :meth:`~repro.cfg.ssa.PathConstraintBuilder.sweep`, so
            ``EngineConfig.intra_job_workers`` fans them across replica
            sessions while the result stays byte-identical to the
            sequential run.
        max_paths: enumeration cap for the distribution sweep.
    """

    kind: ClassVar[str] = "timing-analysis"
    needs_solver: ClassVar[bool] = True

    program: str = "modular_exponentiation"
    program_args: dict = field(default_factory=dict)
    bound: int | None = None
    trials: int | None = None
    seed: int = 0
    start_state: str = "cold"
    distribution: bool = False
    max_paths: int = 4096

    def shape_key(self) -> str:
        width = self.program_args.get("word_width", "default")
        return f"{self.kind}/{self.program}/w{width}"

    def build(self, context: JobContext | None = None) -> SciductionProcedure:
        from repro.gametime import GameTime

        context = context or JobContext()
        programs = _timing_programs()
        if self.program not in programs:
            raise ReproError(
                f"unknown timing-analysis program {self.program!r} "
                f"(available: {sorted(programs)})"
            )
        task = programs[self.program](**self.program_args)
        # The lease itself is the factory: the path-constraint builder
        # detects its base_session/seal_base protocol and keeps a
        # fingerprinted per-CFG base scope open across same-shape jobs
        # (frontier rollback + memoized feasibility verdicts), exactly
        # like the OGIS encoder's skeleton scope.
        return GameTime(
            task,
            start_state=self.start_state,
            trials=self.trials,
            seed=self.seed,
            config=context.config,
            solver_factory=context.solver_factory(),
        )

    def run_kwargs(self) -> dict:
        return {
            "bound": self.bound,
            "distribution": self.distribution,
            "max_paths": self.max_paths,
        }


def timing_program_names() -> list[str]:
    """Names accepted by :class:`TimingAnalysisProblem`."""
    return sorted(_timing_programs())


# ---------------------------------------------------------------------------
# Switching-logic synthesis (paper Section 5)
# ---------------------------------------------------------------------------


@register_problem_type
@dataclass
class SwitchingLogicProblem(ProblemSpec):
    """Synthesize safe switching guards for a named multi-modal system.

    The deductive engine here is numerical simulation, not SMT, so these
    jobs do not draw on the solver pool.

    Attributes:
        system: registered system name (currently ``"transmission"``,
            the paper's Figure 9 example).
        dwell_time: minimum dwell time (0 for Eq. 3, 5.0 for Eq. 4).
        omega_step: guard-grid precision on ω.
        integration_step: RK4 step size of the simulation oracle.
        horizon: per-query simulation horizon.
        validate_corners: re-check learned guard corners (slower; yields
            hypothesis evidence).
    """

    kind: ClassVar[str] = "switching-logic"
    needs_solver: ClassVar[bool] = False

    system: str = "transmission"
    dwell_time: float = 0.0
    omega_step: float = 0.1
    integration_step: float = 0.02
    horizon: float = 60.0
    validate_corners: bool = False

    def build(self, context: JobContext | None = None) -> SciductionProcedure:
        from repro.hybrid import make_transmission_synthesizer

        context = context or JobContext()
        if self.system != "transmission":
            raise ReproError(
                f"unknown switching-logic system {self.system!r} "
                "(available: ['transmission'])"
            )
        setup = make_transmission_synthesizer(
            dwell_time=self.dwell_time,
            omega_step=self.omega_step,
            integration_step=self.integration_step,
            horizon=self.horizon,
            validate_corners=self.validate_corners,
        )
        # Deadlines cannot be enforced in a SAT loop here — the deductive
        # engine is numerical simulation — so hand them to the
        # reachability oracle's own preemption hook.
        setup.synthesizer.set_deadline(context.deadline)
        return setup.synthesizer

    def finish(
        self, result: SciductionResult, procedure: SciductionProcedure
    ) -> SciductionResult:
        # The verdict mirrors success: every transition kept a non-empty
        # safe guard, i.e. the closed-loop system was made safe.
        if result.verdict is None:
            result.verdict = result.success
        return result
