"""Work-stealing scheduler for parallel batch execution.

PR 4's parallel executor assigned each problem shape to a worker once
(least-loaded at first appearance) and then never moved it.  That static
plan balances job *counts*, not job *durations*: on a skewed stream —
one shape with a few slow jobs next to shapes with many fast ones — the
fast workers drain and idle while the slow worker still has whole shape
queues it has not even started.

This module replaces the static plan with the same plan *plus work
stealing*:

* jobs are grouped into per-shape FIFO queues (submission order within a
  shape is preserved — a shape's session history is what makes parallel
  results byte-identical to sequential, see
  :meth:`repro.api.pool.SolverPool.acquire`);
* shapes are assigned to workers exactly as before (deterministic
  least-loaded at first appearance, with a per-batch rotation offset
  breaking ties so long-lived engines spread shapes over their workers
  across batches);
* workers are fed **one job at a time** from their own shapes (lowest
  submission index first, i.e. the same FIFO order the static executor
  used);
* a worker that runs out of its own jobs **steals a whole un-started
  shape queue** from another worker — never part of one, and never a
  shape whose first job has already been dispatched.  Stealing at shape
  granularity keeps every shape's full job sequence on a single worker,
  in submission order, which is exactly the invariant that makes the
  results (including per-job solver statistics) byte-identical to the
  sequential run; only *which* worker runs the sequence changes, and
  that is unobservable in the wire form.

The scheduler is transport-agnostic: the engine supplies callbacks for
claiming a job (which is also where cancellation is honoured), for
submitting it to a worker process, and for folding the outcome back into
the job handle.  Tests drive it with fake transports to pin the stealing
decisions deterministically.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import FIRST_COMPLETED, CancelledError, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterable


@dataclass
class SchedulerStatistics:
    """Counters over a scheduler's lifetime (all batches)."""

    batches: int = 0
    #: Jobs handed to worker processes (cancelled jobs are never dispatched).
    dispatched: int = 0
    #: Whole shape-queues moved to an idle worker.
    steals: int = 0
    #: Jobs contained in stolen shape-queues at steal time.
    stolen_jobs: int = 0
    #: Worker processes retired after a crash.
    crashed_workers: int = 0

    def as_dict(self) -> dict:
        return {
            "batches": self.batches,
            "dispatched": self.dispatched,
            "steals": self.steals,
            "stolen_jobs": self.stolen_jobs,
            "crashed_workers": self.crashed_workers,
        }


class ShapePlan:
    """Per-shape FIFO queues plus the shape→worker ownership map.

    Args:
        items: ``(shape_key, job)`` pairs in submission order.
        workers: number of workers to plan over.
        rotation: deterministic tie-break offset — worker
            ``rotation % workers`` is preferred when planned loads are
            equal.  The engine advances it once per batch so a repeated
            stream on a long-lived engine lands its shapes on different
            workers over time (which is what turns the shared check memo
            into a cross-worker cache instead of a per-worker one).
    """

    def __init__(
        self,
        items: Iterable[tuple[str, Any]],
        workers: int,
        rotation: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        #: shape → deque of (submission index, job), FIFO.
        self.queues: dict[str, deque] = {}
        #: shape → owning worker index.
        self.owner: dict[str, int] = {}
        #: Shapes whose first job has been dispatched (unstealable).
        self.started: set[str] = set()
        #: Worker → shapes it owns, in first-assignment order.
        self.worker_shapes: list[list[str]] = [[] for _ in range(workers)]
        loads = [0] * workers
        for sequence, (shape, job) in enumerate(items):
            queue = self.queues.get(shape)
            if queue is None:
                self.queues[shape] = queue = deque()
                worker = min(
                    range(workers),
                    key=lambda index: (loads[index], (index - rotation) % workers),
                )
                self.owner[shape] = worker
                self.worker_shapes[worker].append(shape)
            queue.append((sequence, job))
            loads[self.owner[shape]] += 1
        self.steals = 0
        self.stolen_jobs = 0

    def remaining(self) -> int:
        """Jobs not yet popped from any queue."""
        return sum(len(queue) for queue in self.queues.values())

    def next_job(self, worker: int) -> Any:
        """Pop the next job for ``worker`` (stealing if it has none), or None.

        Own shapes are served in global submission order (the head with
        the smallest submission index), matching the FIFO the static
        executor used.  Popping a shape's first job marks the shape
        started, which permanently pins its remaining jobs to ``worker``.
        """
        shape = self._next_own_shape(worker)
        if shape is None and self._steal_for(worker):
            shape = self._next_own_shape(worker)
        if shape is None:
            return None
        self.started.add(shape)
        return self.queues[shape].popleft()[1]

    def _next_own_shape(self, worker: int) -> str | None:
        best: str | None = None
        for shape in self.worker_shapes[worker]:
            queue = self.queues[shape]
            if queue and (best is None or queue[0][0] < self.queues[best][0][0]):
                best = shape
        return best

    def _steal_for(self, thief: int) -> bool:
        """Move the largest stealable shape queue to ``thief``.

        Stealable = non-empty, not started, owned by another worker.
        The largest queue maximizes the rebalancing win; ties break on
        first appearance (deterministic dict order).  Whole queues move —
        per-shape submission order is preserved because the queue itself
        is untouched, only its owner changes.
        """
        best: str | None = None
        for shape, queue in self.queues.items():
            if not queue or shape in self.started or self.owner[shape] == thief:
                continue
            if best is None or len(queue) > len(self.queues[best]):
                best = shape
        if best is None:
            return False
        victim = self.owner[best]
        self.worker_shapes[victim].remove(best)
        self.worker_shapes[thief].append(best)
        self.owner[best] = thief
        self.steals += 1
        self.stolen_jobs += len(self.queues[best])
        return True


class WorkStealingScheduler:
    """Drives one batch over worker processes with work stealing.

    The scheduler owns the dispatch loop only; everything stateful about
    jobs and workers is delegated:

    Args:
        transport: worker-process access — ``submit(worker, job) ->
            Future`` and ``retire(worker)`` (kill and forget a crashed
            worker's process; the next submit to that index builds a
            fresh one).
        claim: called before dispatch; returns False to skip the job
            (the engine uses this to honour cancellations and atomically
            transition PENDING → RUNNING).
        complete: ``complete(job, kind, value)`` with ``kind`` one of
            ``"payload"`` (worker result dictionary), ``"error"``
            (exception raised by the worker call), ``"crashed"`` (retry
            exhausted), ``"cancelled"`` (future cancelled externally).
        retry_crash: asked once per crash whether the job should be
            retried on a fresh worker; returning False routes the job to
            ``complete(..., "crashed", ...)``.
    """

    def __init__(
        self,
        transport: Any,
        claim: Callable[[Any], bool],
        complete: Callable[[Any, str, Any], None],
        retry_crash: Callable[[Any], bool],
        statistics: SchedulerStatistics | None = None,
    ) -> None:
        self._transport = transport
        self._claim = claim
        self._complete = complete
        self._retry_crash = retry_crash
        self.statistics = statistics or SchedulerStatistics()

    def run_batch(
        self,
        items: Iterable[tuple[str, Any]],
        workers: int,
        rotation: int = 0,
    ) -> ShapePlan:
        """Run ``items`` (``(shape, job)`` pairs, submission order) to completion."""
        plan = ShapePlan(items, workers, rotation)
        self.statistics.batches += 1
        inflight: dict[Future, tuple[int, object]] = {}

        def dispatch(worker: int) -> None:
            while True:
                job = plan.next_job(worker)
                if job is None:
                    return
                if not self._claim(job):
                    continue  # cancelled while queued; result already set
                try:
                    future = self._transport.submit(worker, job)
                except Exception as error:  # noqa: BLE001 — folded, never raised
                    # e.g. the worker fleet was closed mid-batch: the job
                    # still gets a structured failure instead of the
                    # batch raising, per the run_batch contract.
                    self._complete(job, "error", error)
                    continue
                inflight[future] = (worker, job)
                self.statistics.dispatched += 1
                return

        for worker in range(workers):
            dispatch(worker)
        while inflight:
            done, _ = wait(list(inflight), return_when=FIRST_COMPLETED)
            for future in done:
                worker, job = inflight.pop(future)
                resubmitted = False
                try:
                    payload = future.result()
                except CancelledError:
                    self._complete(job, "cancelled", None)
                except BrokenProcessPool:
                    self.statistics.crashed_workers += 1
                    self._transport.retire(worker)
                    if self._retry_crash(job):
                        try:
                            retry_future = self._transport.submit(worker, job)
                        except Exception:  # noqa: BLE001 — fleet closed
                            self._complete(job, "crashed", None)
                        else:
                            inflight[retry_future] = (worker, job)
                            resubmitted = True
                    else:
                        self._complete(job, "crashed", None)
                except Exception as error:  # noqa: BLE001 — folded, never raised
                    self._complete(job, "error", error)
                else:
                    self._complete(job, "payload", payload)
                if not resubmitted:
                    dispatch(worker)
        plan_steals = plan.steals
        self.statistics.steals += plan_steals
        self.statistics.stolen_jobs += plan.stolen_jobs
        return plan
