"""Intra-job thread lanes: fan one job's independent SMT queries out.

Every other parallel layer in the engine works *across* jobs (worker
processes, work stealing, the shared check memo); this module is the
substrate for parallelism *inside* one job — GameTime's parallel
feasibility sweeps (:meth:`repro.cfg.ssa.PathConstraintBuilder.sweep`)
and speculative OGIS (:class:`repro.ogis.synthesizer.OgisSynthesizer`).

The contract every user of this module must honor is the engine-wide
byte-parity guarantee: a job's committed results, certificates and
per-job statistics deltas may not depend on the lane count.  The two
features achieve that structurally —

* sweeps fan only *verdict* checks (semantic, hence lane-invariant)
  across replica sessions and re-extract witnesses on the job's primary
  session in path order, so the primary session's query sequence is a
  pure function of which paths are feasible;
* speculation runs the primary session's exact sequential query trace
  unchanged and only ever *compares* the speculative lane's outcome
  against the committed one.

Lanes are plain threads.  The solver sessions they drive are disjoint
(one replica lease per lane, acquired and released on the coordinating
thread), so the only shared mutable state is the global term intern
table — :func:`run_lanes` flips its sticky lock on
(:func:`repro.smt.terms.enable_intern_locking`) before the first
multi-lane fan-out.  On a GIL-bound interpreter the lanes interleave
rather than truly overlap; the point of the machinery is the
architecture and its parity contract, which a free-threaded build or a
native solver core can then exploit (see ``docs/PARALLELISM.md``).
"""

from __future__ import annotations

import threading
from typing import Callable, Generic, Sequence, TypeVar

from repro.smt.terms import enable_intern_locking

T = TypeVar("T")


def resolve_lanes(requested: int, pool_size: int) -> int:
    """The number of replica lanes a job may actually use.

    ``requested`` is ``EngineConfig.intra_job_workers``.  Lanes are
    capped at ``pool_size - 1`` so a job's replicas leave at least one
    pooled session slot for cross-job work (non-starvation), but never
    below one lane — the replica structure itself is load-bearing for
    statistics parity, so even ``intra_job_workers=1`` runs its verdict
    checks on one replica session.
    """
    return max(1, min(requested, pool_size - 1))


def partition(count: int, lanes: int) -> list[list[int]]:
    """Round-robin partition of item indices ``0..count-1`` over lanes.

    Deterministic by construction (lane ``k`` gets indices ``k``,
    ``k + lanes``, ...); empty buckets are dropped so callers never
    spawn an idle lane.
    """
    buckets = [list(range(lane, count, lanes)) for lane in range(lanes)]
    return [bucket for bucket in buckets if bucket]


def run_lanes(workers: Sequence[Callable[[], None]]) -> None:
    """Run lane workers to completion, one thread per extra lane.

    The first worker runs on the calling thread; workers beyond it get
    their own threads.  All lanes are joined before returning — even
    when a lane fails — so callers can release the lanes' replica
    leases immediately afterwards.  When several lanes raise, the
    lowest lane index wins: the surfaced error never depends on thread
    timing.
    """
    if not workers:
        return
    if len(workers) == 1:
        workers[0]()
        return
    enable_intern_locking()
    errors: list[BaseException | None] = [None] * len(workers)

    def lane(index: int) -> None:
        try:
            workers[index]()
        except BaseException as error:  # noqa: BLE001 — re-raised deterministically below
            errors[index] = error

    threads = [
        threading.Thread(target=lane, args=(index,), name=f"intra-lane-{index}")
        for index in range(1, len(workers))
    ]
    for thread in threads:
        thread.start()
    lane(0)
    for thread in threads:
        thread.join()
    for error in errors:
        if error is not None:
            raise error


class SpeculativeTask(Generic[T]):
    """One speculative computation running on its own thread.

    The task starts immediately; :meth:`outcome` joins the thread and
    returns ``(result, error)`` — exactly one of the two is set.  A
    speculative failure is an *outcome*, not an exception: the caller
    committed to a sequential trace that never needed the speculation,
    so the error's only legitimate effect is to disable further
    speculation (and be counted).
    """

    def __init__(self, work: Callable[[], T], name: str = "speculative-task") -> None:
        enable_intern_locking()
        self._work = work
        self._result: T | None = None
        self._error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, name=name)
        self._thread.start()

    def _run(self) -> None:
        try:
            self._result = self._work()
        except BaseException as error:  # noqa: BLE001 — surfaced via outcome()
            self._error = error

    def outcome(self) -> tuple[T | None, BaseException | None]:
        """Join the task and return ``(result, error)``."""
        self._thread.join()
        return self._result, self._error
