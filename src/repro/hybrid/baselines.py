"""Baseline guard estimators compared against the sciductive synthesizer.

Used by the ablation benchmarks:

* :class:`MonteCarloGuardEstimator` — sample candidate switching states
  uniformly at random inside the over-approximate guard, label each by
  simulation, and return the bounding box of the safe samples.  Unlike the
  binary-search hyperbox learner this gives no maximality or soundness
  guarantee (the bounding box of safe samples can easily contain unsafe
  states when the safe set is not a box, and it under-approximates the box
  when samples are sparse), and its query count grows with the requested
  confidence instead of logarithmically with the grid resolution.
* :class:`GridSweepGuardEstimator` — exhaustively label every grid point
  along each axis through the seed.  Sound under the same structure
  hypothesis as the learner but needs ``O(range / step)`` queries per axis
  instead of ``O(log(range / step))``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.exceptions import ReproError
from repro.core.hypothesis import GridSpec
from repro.core.inductive import Interval
from repro.core.oracle import LabelingOracle
from repro.hybrid.hyperbox import Hyperbox, bounding_box


@dataclass
class GuardEstimate:
    """A guard estimate plus the number of labeling queries spent."""

    box: Hyperbox
    queries: int


class MonteCarloGuardEstimator:
    """Bounding box of randomly sampled safe states (unsound baseline)."""

    name = "monte-carlo-guard"

    def __init__(self, grids: dict[str, GridSpec], samples: int = 200, seed: int = 0):
        if samples <= 0:
            raise ReproError("sample count must be positive")
        self.grids = dict(grids)
        self.samples = samples
        self._rng = random.Random(seed)

    def estimate(
        self,
        overapproximation: Hyperbox,
        oracle: LabelingOracle[dict[str, float], bool],
    ) -> GuardEstimate:
        """Sample, label, and return the bounding box of safe samples."""
        queries_before = oracle.query_count
        safe_points = []
        for _ in range(self.samples):
            point = {}
            for name in overapproximation.dimensions:
                interval = overapproximation.interval(name)
                value = self._rng.uniform(interval.low, interval.high)
                point[name] = self.grids[name].snap(value)
            if oracle.label(point):
                safe_points.append(point)
        box = bounding_box(safe_points, overapproximation.dimensions)
        return GuardEstimate(box=box, queries=oracle.query_count - queries_before)


class GridSweepGuardEstimator:
    """Exhaustive per-axis sweep through the seed (sound but expensive)."""

    name = "grid-sweep-guard"

    def __init__(self, grids: dict[str, GridSpec]):
        self.grids = dict(grids)

    def estimate(
        self,
        overapproximation: Hyperbox,
        oracle: LabelingOracle[dict[str, float], bool],
        seed: dict[str, float],
    ) -> GuardEstimate:
        """Sweep every grid point on each axis through the seed point."""
        queries_before = oracle.query_count
        snapped_seed = {
            name: self.grids[name].snap(value) for name, value in seed.items()
        }
        if not oracle.label(snapped_seed):
            empty = Hyperbox(
                tuple((name, Interval(1.0, 0.0)) for name in overapproximation.dimensions)
            )
            return GuardEstimate(
                box=empty, queries=oracle.query_count - queries_before
            )
        intervals = []
        for name in overapproximation.dimensions:
            bounds = overapproximation.interval(name)
            grid = self.grids[name]
            low = grid.snap(max(bounds.low, grid.low))
            high = grid.snap(min(bounds.high, grid.high))
            best_low = snapped_seed[name]
            best_high = snapped_seed[name]
            # Walk down from the seed until the first unsafe point.
            value = snapped_seed[name]
            while value - grid.step >= low - 1e-12:
                value = grid.snap(value - grid.step)
                point = dict(snapped_seed)
                point[name] = value
                if not oracle.label(point):
                    break
                best_low = value
            # Walk up from the seed until the first unsafe point.
            value = snapped_seed[name]
            while value + grid.step <= high + 1e-12:
                value = grid.snap(value + grid.step)
                point = dict(snapped_seed)
                point[name] = value
                if not oracle.label(point):
                    break
                best_high = value
            intervals.append((name, Interval(best_low, best_high)))
        return GuardEstimate(
            box=Hyperbox(tuple(intervals)),
            queries=oracle.query_count - queries_before,
        )
