"""The 3-gear automatic transmission example (paper Figure 9 / Section 5).

The plant has seven modes — Neutral plus three gears, each in accelerating
(``u = +1``) and decelerating (``d = -1``) flavours — over the continuous
state ``(θ, ω)`` (distance covered and speed).  The gear-``i`` efficiency is

    η_i(ω) = 0.99 · exp(-(ω - a_i)² / 64) + 0.01,   a_1, a_2, a_3 = 10, 20, 30

and the acceleration is the throttle times the efficiency.  The safety
property to enforce is

    φS = (ω ≥ 5 ⇒ η ≥ 0.5) ∧ (0 ≤ ω ≤ 60).

The switching-logic synthesis problem is to find the guards ``gN1U``,
``g12U`` ... making the closed-loop hybrid system safe (Eq. 3 of the
paper), optionally with a minimum dwell time of 5 seconds in each gear
mode (Eq. 4); Figure 10 plots speed and efficiency of the synthesized
system driven from Neutral up through the gears and back.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.hypothesis import GridSpec
from repro.hybrid.hyperbox import Hyperbox
from repro.hybrid.mds import Mode, MultiModalSystem, Transition
from repro.hybrid.ode import IntegratorConfig
from repro.hybrid.reachability import ReachabilityOracle
from repro.hybrid.synthesis import SwitchingLogicSynthesizer

#: Gear efficiency peaks (a_1, a_2, a_3 in the paper).
GEAR_PEAKS = {1: 10.0, 2: 20.0, 3: 30.0}

#: Safety parameters of φS.
MIN_EFFICIENT_SPEED = 5.0
MIN_EFFICIENCY = 0.5
MAX_SPEED = 60.0

#: Default target distance (θmax in the paper).
THETA_MAX = 1700.0


def efficiency(gear: int, omega: float) -> float:
    """The transmission efficiency η_i(ω) of the paper."""
    peak = GEAR_PEAKS[gear]
    return 0.99 * math.exp(-((omega - peak) ** 2) / 64.0) + 0.01


def efficiency_of_mode(mode: str, omega: float) -> float:
    """Efficiency of the active mode (1.0 — irrelevant — for Neutral)."""
    if mode == "N":
        return 1.0
    return efficiency(int(mode[1]), omega)


def safe_speed_range(gear: int) -> tuple[float, float]:
    """The ω interval on which gear ``gear`` satisfies φS (for ω ≥ 5).

    Solving ``η_i(ω) >= 0.5`` gives ``|ω - a_i| <= sqrt(64 ln(0.99/0.49))``;
    below ω = 5 the efficiency clause is vacuous, so the lower end is
    extended to 0 (clipped at 0) for the first gear.
    """
    radius = math.sqrt(64.0 * math.log(0.99 / (MIN_EFFICIENCY - 0.01)))
    low = GEAR_PEAKS[gear] - radius
    high = GEAR_PEAKS[gear] + radius
    if low <= MIN_EFFICIENT_SPEED:
        low = 0.0
    return max(low, 0.0), min(high, MAX_SPEED)


def _gear_dynamics(gear: int, throttle: float):
    """Vector field of a gear mode over the state (θ, ω)."""

    def field(state: np.ndarray) -> np.ndarray:
        omega = state[1]
        return np.array([omega, throttle * efficiency(gear, omega)])

    return field


def _neutral_dynamics(state: np.ndarray) -> np.ndarray:
    return np.zeros(2)


def transmission_safety(mode: str, state: np.ndarray) -> bool:
    """The safety property φS, evaluated against the active mode."""
    omega = float(state[1])
    if omega < 0.0 or omega > MAX_SPEED:
        return False
    if mode == "N":
        return True
    gear = int(mode[1])
    if omega >= MIN_EFFICIENT_SPEED and efficiency(gear, omega) < MIN_EFFICIENCY:
        return False
    return True


def build_transmission_system(
    dwell_time: float = 0.0, theta_max: float = THETA_MAX
) -> MultiModalSystem:
    """Build the 7-mode transmission MDS of Figure 9.

    Args:
        dwell_time: minimum dwell time for the six gear modes (0 for the
            plain safety problem of Eq. 3; 5 seconds for Eq. 4).
        theta_max: the target distance θmax.
    """
    modes = {"N": Mode("N", _neutral_dynamics, min_dwell=0.0)}
    for gear in (1, 2, 3):
        modes[f"G{gear}U"] = Mode(
            f"G{gear}U", _gear_dynamics(gear, +1.0), min_dwell=dwell_time
        )
        modes[f"G{gear}D"] = Mode(
            f"G{gear}D", _gear_dynamics(gear, -1.0), min_dwell=dwell_time
        )
    transitions = [
        Transition("gN1U", "N", "G1U"),
        Transition("g12U", "G1U", "G2U"),
        Transition("g23U", "G2U", "G3U"),
        Transition("g11D", "G1U", "G1D"),
        Transition("g22D", "G2U", "G2D"),
        Transition("g33D", "G3U", "G3D"),
        Transition("g11U", "G1D", "G1U"),
        Transition("g22U", "G2D", "G2U"),
        Transition("g33U", "G3D", "G3U"),
        Transition("g32D", "G3D", "G2D"),
        Transition("g21D", "G2D", "G1D"),
        Transition("g1ND", "G1D", "N"),
    ]
    return MultiModalSystem(
        name="automatic-transmission",
        state_names=("theta", "omega"),
        modes=modes,
        transitions=transitions,
        safety=transmission_safety,
        initial_mode="N",
        initial_state=np.array([0.0, 0.0]),
    )


def transmission_grids(
    omega_step: float = 0.01, theta_max: float = THETA_MAX
) -> dict[str, GridSpec]:
    """The finite-precision grids of the structure hypothesis."""
    return {
        "theta": GridSpec(low=0.0, high=theta_max, step=theta_max / 4.0),
        "omega": GridSpec(low=0.0, high=MAX_SPEED, step=omega_step),
    }


def initial_transmission_guards(theta_max: float = THETA_MAX) -> dict[str, Hyperbox]:
    """Over-approximate initial guards (paper Section 5.1).

    Every ordinary guard starts as the safety bound ``0 ≤ ω ≤ 60``; as in
    the paper, these guards constrain only the speed ω (the distance θ is
    monotonically increasing and unbounded, so constraining it would make
    the guards unreachable after long enough driving).  The
    return-to-neutral guard ``g1ND`` is the designated point
    ``θ = θmax ∧ ω = 0``.
    """
    wide = Hyperbox.from_bounds({"omega": (0.0, MAX_SPEED)})
    guards = {
        name: wide
        for name in (
            "gN1U", "g12U", "g23U", "g11D", "g22D", "g33D",
            "g11U", "g22U", "g33U", "g32D", "g21D",
        )
    }
    guards["g1ND"] = Hyperbox.from_bounds(
        {"theta": (theta_max, theta_max), "omega": (0.0, 0.0)}
    )
    return guards


def transmission_seeds() -> dict[str, dict[str, float]]:
    """Seed switching states for the hyperbox learner.

    For every transition entering a gear-``i`` mode the natural seed is the
    gear's efficiency peak ``ω = a_i`` (certainly safe when entering that
    gear); transitions into gear 1 additionally work from ``ω = 5`` so the
    dwell-time variant — where the peak may be unreachable — still has a
    safe seed.
    """
    return {
        "gN1U": {"theta": 0.0, "omega": 0.0},
        "g11U": {"theta": 0.0, "omega": 0.0},
        "g12U": {"theta": 0.0, "omega": GEAR_PEAKS[2]},
        "g22U": {"theta": 0.0, "omega": GEAR_PEAKS[2]},
        "g23U": {"theta": 0.0, "omega": GEAR_PEAKS[3]},
        "g33U": {"theta": 0.0, "omega": GEAR_PEAKS[3]},
        "g33D": {"theta": 0.0, "omega": GEAR_PEAKS[3]},
        "g32D": {"theta": 0.0, "omega": GEAR_PEAKS[2]},
        "g22D": {"theta": 0.0, "omega": GEAR_PEAKS[2]},
        "g21D": {"theta": 0.0, "omega": GEAR_PEAKS[1]},
        "g11D": {"theta": 0.0, "omega": GEAR_PEAKS[1]},
    }


@dataclass
class TransmissionSynthesisSetup:
    """Everything needed to run the transmission synthesis experiment."""

    system: MultiModalSystem
    synthesizer: SwitchingLogicSynthesizer
    grids: Mapping[str, GridSpec]


def make_transmission_synthesizer(
    dwell_time: float = 0.0,
    omega_step: float = 0.01,
    integration_step: float = 0.01,
    horizon: float = 80.0,
    theta_max: float = THETA_MAX,
    validate_corners: bool = False,
) -> TransmissionSynthesisSetup:
    """Assemble the synthesizer for the transmission example.

    Args:
        dwell_time: 0 for the Eq. 3 experiment, 5.0 for Eq. 4.
        omega_step: grid precision on ω (the paper's results are reported
            to two decimals, i.e. a 0.01 grid).
        integration_step: RK4 step size.
        horizon: per-query simulation horizon.
        theta_max: target distance.
        validate_corners: re-check learned guard corners (slower).
    """
    system = build_transmission_system(dwell_time=dwell_time, theta_max=theta_max)
    grids = transmission_grids(omega_step=omega_step, theta_max=theta_max)
    oracle = ReachabilityOracle(
        system,
        integrator=IntegratorConfig(step=integration_step, max_time=horizon),
        horizon=horizon,
        allow_no_exit=True,
    )
    synthesizer = SwitchingLogicSynthesizer(
        system=system,
        grids=grids,
        initial_guards=initial_transmission_guards(theta_max=theta_max),
        reachability=oracle,
        seeds=transmission_seeds(),
        frozen_guards={"g1ND"},
        validate_corners=validate_corners,
    )
    return TransmissionSynthesisSetup(system=system, synthesizer=synthesizer, grids=grids)


#: The guard intervals reported in Eq. (3) of the paper (ω bounds).
PAPER_EQ3_GUARDS: dict[str, tuple[float, float]] = {
    "gN1U": (0.0, 16.70),
    "g11U": (0.0, 16.70),
    "g12U": (13.29, 26.70),
    "g22U": (13.29, 26.70),
    "g23U": (23.29, 36.70),
    "g33U": (23.29, 36.70),
    "g33D": (23.29, 36.70),
    "g32D": (13.29, 26.70),
    "g22D": (13.29, 26.70),
    "g21D": (0.0, 16.70),
    "g11D": (0.0, 16.70),
}

#: The guard intervals reported in Eq. (4) (5-second dwell time per gear).
PAPER_EQ4_GUARDS: dict[str, tuple[float, float]] = {
    "gN1U": (0.0, 0.0),
    "g11U": (0.0, 0.0),
    "g1ND": (0.0, 0.0),
    "g12U": (13.29, 23.42),
    "g11D": (1.31, 16.70),
    "g23U": (26.70, 33.42),
    "g22D": (26.70, 26.70),
    "g33D": (36.70, 36.70),
    "g32D": (16.58, 26.70),
    "g33U": (23.29, 33.42),
    "g21D": (1.31, 16.70),
    "g22U": (13.29, 23.42),
}

#: The up-and-down gear schedule of Figure 10.
FIGURE10_SCHEDULE = ("gN1U", "g12U", "g23U", "g33D", "g32D", "g21D", "g1ND")
