"""Simulation-based reachability oracle (the deductive engine of Section 5).

Labeling a candidate switching state as safe or unsafe reduces to the
question: *"if we enter mode m in state s and follow its dynamics, will the
trajectory visit only safe states until some exit guard becomes true?"*
This is a reachability problem for a purely continuous ODE system with a
single initial condition — undecidable in general, but answerable in
practice by numerical simulation, which the paper therefore adopts as the
deductive engine (arguing that a numerical simulator performs deductive
reasoning: it applies rules about the underlying theory to solve a system
of constraints).

:class:`ReachabilityOracle` implements that query (with optional minimum
dwell time, for the dwell-time variant of the synthesis problem) and
exposes it as a :class:`~repro.core.oracle.LabelingOracle` so the hyperbox
learner can drive it directly.
"""

from __future__ import annotations

import time as _time

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.deductive import DeductiveAnswer, DeductiveEngine, DeductiveQuery
from repro.core.exceptions import BudgetExceededError
from repro.core.oracle import LabelingOracle
from repro.hybrid.hyperbox import Hyperbox
from repro.hybrid.mds import MultiModalSystem
from repro.hybrid.ode import IntegratorConfig, OdeIntegrator, euler_step, rk4_step


@dataclass
class ReachabilityQuery:
    """One labeling query: enter ``mode`` at ``state`` with these exit guards."""

    mode: str
    state: np.ndarray
    exit_guards: dict[str, Hyperbox]
    min_dwell: float = 0.0


@dataclass
class ReachabilityVerdict:
    """Outcome of a reachability/labeling query.

    Attributes:
        safe: the label — True iff the trajectory stays safe until it can
            take an exit transition (or, when ``allow_no_exit``, until the
            simulation horizon).
        exit_transition: the guard reached, when one was reached.
        exit_time: time at which the exit guard was reached.
        violation_time: time of the first safety violation, if any.
    """

    safe: bool
    exit_transition: str | None = None
    exit_time: float | None = None
    violation_time: float | None = None


class ReachabilityOracle(DeductiveEngine[ReachabilityQuery, ReachabilityVerdict]):
    """Answers safe/unsafe labeling queries by numerical simulation.

    Args:
        system: the multi-modal dynamical system.
        integrator: integration settings (step / method).
        horizon: maximum simulated time per query.
        allow_no_exit: when True (default), a trajectory that remains safe
            for the whole horizon without reaching any exit guard is
            labeled safe; when False it is labeled unsafe (forces progress).
    """

    name = "numerical-simulation-reachability"

    def __init__(
        self,
        system: MultiModalSystem,
        integrator: IntegratorConfig | None = None,
        horizon: float = 60.0,
        allow_no_exit: bool = True,
    ):
        super().__init__()
        self.system = system
        self.integrator = OdeIntegrator(integrator or IntegratorConfig())
        self.horizon = horizon
        self.allow_no_exit = allow_no_exit
        self.simulations = 0
        self._deadline: float | None = None

    # -- job limits -------------------------------------------------------------

    #: How many integration steps pass between deadline polls.  Checking
    #: the clock every step would dominate the (cheap) RK4 stepper; every
    #: 64 steps keeps preemption granularity under ~2 simulated seconds at
    #: the default step sizes while staying off the hot path.
    DEADLINE_POLL_STEPS = 64

    def set_deadline(self, deadline: float | None = None) -> None:
        """Install (or clear, with ``None``) a wall-clock preemption deadline.

        Analogous to :meth:`repro.smt.sat.CdclSolver.set_limits`: once
        ``time.monotonic()`` passes ``deadline``, every simulation query
        raises :class:`~repro.core.exceptions.BudgetExceededError` instead
        of running to its horizon.  This is how the engine layer
        (:mod:`repro.api`) preempts simulation-backed (switching-logic)
        jobs, whose deductive engine is this oracle rather than the SAT
        loop.
        """
        self._deadline = deadline

    def _check_deadline(self) -> None:
        if self._deadline is not None and _time.monotonic() >= self._deadline:
            raise BudgetExceededError(
                "reachability oracle deadline exceeded after "
                f"{self.simulations} simulation queries"
            )

    # -- core query ------------------------------------------------------------

    def label_state(
        self,
        mode: str,
        state: Sequence[float],
        exit_guards: Mapping[str, Hyperbox],
        min_dwell: float = 0.0,
    ) -> ReachabilityVerdict:
        """Simulate mode ``mode`` from ``state`` and decide safety.

        The trajectory is advanced with the configured fixed step; at every
        sample the safety predicate is checked, and once the dwell time has
        elapsed the exit guards are checked.  The first event decides the
        verdict.

        Raises:
            BudgetExceededError: when a deadline installed via
                :meth:`set_deadline` has passed (polled every
                :data:`DEADLINE_POLL_STEPS` integration steps).
        """
        self._check_deadline()
        self.simulations += 1
        system = self.system
        dynamics = system.modes[mode].dynamics
        step = self.integrator.config.step
        stepper = rk4_step if self.integrator.config.method == "rk4" else euler_step
        field = lambda s, t: dynamics(s)
        state_vector = np.array(state, dtype=float)
        non_empty_guards = [
            (name, guard) for name, guard in exit_guards.items() if not guard.is_empty
        ]
        time = 0.0
        steps_since_poll = 0
        while True:
            steps_since_poll += 1
            if steps_since_poll >= self.DEADLINE_POLL_STEPS:
                steps_since_poll = 0
                self._check_deadline()
            if not system.is_safe(mode, state_vector):
                return ReachabilityVerdict(safe=False, violation_time=time)
            if time >= min_dwell - 1e-12:
                for name, guard in non_empty_guards:
                    if guard.contains_vector(state_vector, system.state_names):
                        return ReachabilityVerdict(
                            safe=True, exit_transition=name, exit_time=time
                        )
            if time >= self.horizon:
                return ReachabilityVerdict(safe=self.allow_no_exit)
            state_vector = stepper(field, state_vector, time, step)
            time += step

    # -- DeductiveEngine interface -------------------------------------------------

    def _answer(
        self, query: DeductiveQuery[ReachabilityQuery]
    ) -> DeductiveAnswer[ReachabilityVerdict]:
        payload = query.payload
        verdict = self.label_state(
            payload.mode, payload.state, payload.exit_guards, payload.min_dwell
        )
        return DeductiveAnswer(decided=True, verdict=verdict.safe, witness=verdict)

    def lightweightness(self) -> str:
        return (
            "decides point-initialised continuous reachability by simulation, a "
            "strict special case of the (undecidable) hybrid synthesis problem"
        )


class SwitchingStateLabeler(LabelingOracle[dict[str, float], bool]):
    """Adapter: labels candidate switching states for one entry transition.

    The hyperbox learner works over name→value points; this oracle fixes
    the target mode, the current exit-guard estimates and the dwell time,
    and forwards each point to the :class:`ReachabilityOracle`.
    """

    name = "switching-state-labeler"

    def __init__(
        self,
        oracle: ReachabilityOracle,
        mode: str,
        exit_guards: Mapping[str, Hyperbox],
        min_dwell: float = 0.0,
        max_queries: int | None = None,
    ):
        super().__init__(max_queries=max_queries)
        self.oracle = oracle
        self.mode = mode
        self.exit_guards = dict(exit_guards)
        self.min_dwell = min_dwell

    def _label(self, example: dict[str, float]) -> bool:
        state = np.array(
            [example[name] for name in self.oracle.system.state_names], dtype=float
        )
        verdict = self.oracle.label_state(
            self.mode, state, self.exit_guards, self.min_dwell
        )
        return verdict.safe
