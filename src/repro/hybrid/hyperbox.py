"""Hyperboxes on a discrete grid (the structure hypothesis of Section 5).

The switching-logic synthesis structure hypothesis restricts transition
guards to axis-aligned hyperboxes whose vertices lie on a known discrete
grid — equivalently, conjunctions of interval constraints with
finite-precision constants.  This module provides the hyperbox type used
for guards, together with the grid bookkeeping shared by the learner and
the synthesizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.core.exceptions import StructureHypothesisError
from repro.core.hypothesis import GridSpec, StructureHypothesis
from repro.core.inductive import Interval


@dataclass(frozen=True)
class Hyperbox:
    """An axis-aligned box: one closed interval per named dimension.

    An empty interval on any dimension makes the whole box empty.
    """

    intervals: tuple[tuple[str, Interval], ...]

    @classmethod
    def from_bounds(cls, bounds: Mapping[str, tuple[float, float]]) -> "Hyperbox":
        """Build a hyperbox from ``{dimension: (low, high)}``."""
        return cls(
            tuple((name, Interval(low, high)) for name, (low, high) in bounds.items())
        )

    @classmethod
    def point(cls, values: Mapping[str, float]) -> "Hyperbox":
        """A degenerate box containing exactly one point."""
        return cls.from_bounds({name: (value, value) for name, value in values.items()})

    # -- accessors --------------------------------------------------------

    @property
    def dimensions(self) -> tuple[str, ...]:
        """Dimension names, in declaration order."""
        return tuple(name for name, _ in self.intervals)

    def interval(self, dimension: str) -> Interval:
        """The interval of ``dimension``.

        Raises:
            KeyError: when the dimension is absent.
        """
        for name, interval in self.intervals:
            if name == dimension:
                return interval
        raise KeyError(dimension)

    @property
    def is_empty(self) -> bool:
        """True iff the box contains no points."""
        return any(interval.empty for _, interval in self.intervals)

    def volume(self) -> float:
        """Product of interval widths (0 for empty or degenerate boxes)."""
        if self.is_empty:
            return 0.0
        result = 1.0
        for _, interval in self.intervals:
            result *= interval.width
        return result

    # -- membership and algebra ------------------------------------------------

    def contains(self, point: Mapping[str, float], tol: float = 1e-9) -> bool:
        """True iff ``point`` (a name→value mapping) lies in the box."""
        if self.is_empty:
            return False
        for name, interval in self.intervals:
            if name not in point:
                raise StructureHypothesisError(f"point is missing dimension {name!r}")
            if not (interval.low - tol <= point[name] <= interval.high + tol):
                return False
        return True

    def contains_vector(
        self, vector: Sequence[float], order: Sequence[str], tol: float = 1e-9
    ) -> bool:
        """Membership test for a state vector given the dimension order."""
        return self.contains(dict(zip(order, vector)), tol=tol)

    def intersect(self, other: "Hyperbox") -> "Hyperbox":
        """Intersection with another box over the same dimensions."""
        if self.dimensions != other.dimensions:
            raise StructureHypothesisError("cannot intersect boxes over different dimensions")
        intervals = []
        for (name, mine), (_, theirs) in zip(self.intervals, other.intervals):
            intervals.append(
                (name, Interval(max(mine.low, theirs.low), min(mine.high, theirs.high)))
            )
        return Hyperbox(tuple(intervals))

    def equals(self, other: "Hyperbox", tol: float = 1e-9) -> bool:
        """Approximate equality (used to detect fixpoints)."""
        if self.dimensions != other.dimensions:
            return False
        if self.is_empty and other.is_empty:
            return True
        for (name, mine), (_, theirs) in zip(self.intervals, other.intervals):
            if abs(mine.low - theirs.low) > tol or abs(mine.high - theirs.high) > tol:
                return False
        return True

    def center(self) -> dict[str, float]:
        """The centre point of the box."""
        if self.is_empty:
            raise StructureHypothesisError("empty box has no centre")
        return {
            name: (interval.low + interval.high) / 2.0
            for name, interval in self.intervals
        }

    def corners(self) -> Iterator[dict[str, float]]:
        """Iterate over the 2^n corner points."""
        if self.is_empty:
            return
        names = self.dimensions
        choices = [(interval.low, interval.high) for _, interval in self.intervals]
        total = 1 << len(names)
        for index in range(total):
            yield {
                name: choices[position][(index >> position) & 1]
                for position, name in enumerate(names)
            }

    def snapped(self, grids: Mapping[str, GridSpec]) -> "Hyperbox":
        """Snap every endpoint to its dimension's grid."""
        intervals = []
        for name, interval in self.intervals:
            grid = grids[name]
            if interval.empty:
                intervals.append((name, interval))
            else:
                intervals.append(
                    (name, Interval(grid.snap(interval.low), grid.snap(interval.high)))
                )
        return Hyperbox(tuple(intervals))

    def describe(self, precision: int = 2) -> str:
        """Compact human-readable rendering, e.g. ``0.00 <= omega <= 16.70``."""
        if self.is_empty:
            return "(empty)"
        pieces = []
        for name, interval in self.intervals:
            if abs(interval.width) < 10 ** (-precision) / 2:
                pieces.append(f"{name} = {interval.low:.{precision}f}")
            else:
                pieces.append(
                    f"{interval.low:.{precision}f} <= {name} <= {interval.high:.{precision}f}"
                )
        return " and ".join(pieces)

    def as_bounds(self) -> dict[str, tuple[float, float]]:
        """Return ``{dimension: (low, high)}``."""
        return {name: (interval.low, interval.high) for name, interval in self.intervals}


class HyperboxHypothesis(StructureHypothesis[Hyperbox]):
    """Structure hypothesis: guards are hyperboxes with grid-aligned vertices."""

    name = "hyperbox-guards-on-grid"

    def __init__(self, grids: Mapping[str, GridSpec]):
        self.grids = dict(grids)

    def contains(self, artifact: Hyperbox) -> bool:
        if artifact.is_empty:
            return True
        if set(artifact.dimensions) != set(self.grids):
            return False
        for name, interval in artifact.intervals:
            grid = self.grids[name]
            if not grid.contains(interval.low, tol=1e-6) or not grid.contains(
                interval.high, tol=1e-6
            ):
                return False
        return True

    def is_strict_restriction(self) -> bool | None:
        # Arbitrary regions of R^n are allowed in the unconstrained class.
        return True

    def describe(self) -> str:
        axes = ", ".join(
            f"{name}: [{grid.low}, {grid.high}] step {grid.step}"
            for name, grid in self.grids.items()
        )
        return f"hyperboxes with vertices on the grid ({axes})"


def bounding_box(
    points: Sequence[Mapping[str, float]], dimensions: Sequence[str]
) -> Hyperbox:
    """Smallest hyperbox containing ``points`` (used by the sampling baseline)."""
    if not points:
        return Hyperbox(tuple((name, Interval(1.0, 0.0)) for name in dimensions))
    lows = {name: min(point[name] for point in points) for name in dimensions}
    highs = {name: max(point[name] for point in points) for name in dimensions}
    return Hyperbox.from_bounds({name: (lows[name], highs[name]) for name in dimensions})
