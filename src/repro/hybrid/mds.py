"""Multi-modal dynamical systems and hybrid automata (paper Section 5).

A multi-modal dynamical system (MDS) is a plant that can operate in a
finite set of modes; within each mode the continuous state evolves
according to a known ODE.  Adding *switching logic* — a guard (here: a
hyperbox) on every transition between modes — turns the MDS into a hybrid
automaton.  The synthesis problem of Section 5 is to find guards making
the hybrid automaton safe.

This module provides the MDS/hybrid-automaton data model and a closed-loop
simulator used both for the Figure 10 trace and for validating synthesized
switching logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.exceptions import SimulationError
from repro.hybrid.hyperbox import Hyperbox
from repro.hybrid.ode import IntegratorConfig, OdeIntegrator, euler_step, rk4_step

#: A mode's vector field: f(state) -> derivative.
ModeDynamics = Callable[[np.ndarray], np.ndarray]

#: The safety property: safe(mode_name, state) -> bool.  Mode-dependent
#: because quantities such as the transmission efficiency depend on the
#: active mode.
SafetyPredicate = Callable[[str, np.ndarray], bool]


@dataclass(frozen=True)
class Mode:
    """One operating mode of the plant.

    Attributes:
        name: mode name (e.g. ``"G1U"``).
        dynamics: the intra-mode vector field over the continuous state.
        min_dwell: minimum time the system must remain in the mode before
            taking any outgoing transition (0 for plain safety synthesis;
            5 seconds for the paper's dwell-time variant).
    """

    name: str
    dynamics: ModeDynamics
    min_dwell: float = 0.0


@dataclass(frozen=True)
class Transition:
    """A mode switch, identified by its guard name (e.g. ``"g12U"``)."""

    name: str
    source: str
    target: str


@dataclass
class MultiModalSystem:
    """A multi-modal dynamical system (no switching logic yet).

    Attributes:
        name: system name.
        state_names: names of the continuous state variables, fixing the
            order used in state vectors.
        modes: the operating modes, keyed by name.
        transitions: the allowed mode switches.
        safety: the safety predicate (mode-dependent).
        initial_mode: mode in which execution starts.
        initial_state: the initial continuous state.
    """

    name: str
    state_names: tuple[str, ...]
    modes: dict[str, Mode]
    transitions: list[Transition]
    safety: SafetyPredicate
    initial_mode: str
    initial_state: np.ndarray

    def __post_init__(self) -> None:
        for transition in self.transitions:
            if transition.source not in self.modes or transition.target not in self.modes:
                raise SimulationError(
                    f"transition {transition.name} references unknown modes"
                )
        if self.initial_mode not in self.modes:
            raise SimulationError(f"unknown initial mode {self.initial_mode!r}")
        self.initial_state = np.array(self.initial_state, dtype=float)

    def transition_named(self, name: str) -> Transition:
        """Look up a transition by guard name."""
        for transition in self.transitions:
            if transition.name == name:
                return transition
        raise SimulationError(f"unknown transition {name!r}")

    def exits_of(self, mode: str) -> list[Transition]:
        """Outgoing transitions of ``mode``."""
        return [t for t in self.transitions if t.source == mode]

    def entries_of(self, mode: str) -> list[Transition]:
        """Incoming transitions of ``mode``."""
        return [t for t in self.transitions if t.target == mode]

    def state_dict(self, state: np.ndarray) -> dict[str, float]:
        """Convert a state vector to a name→value mapping."""
        return dict(zip(self.state_names, (float(v) for v in state)))

    def is_safe(self, mode: str, state: np.ndarray) -> bool:
        """Evaluate the safety predicate."""
        return bool(self.safety(mode, state))


#: Switching logic: one guard hyperbox per transition name.
SwitchingLogic = dict[str, Hyperbox]


@dataclass
class HybridTracePoint:
    """One sample of a hybrid execution."""

    time: float
    mode: str
    state: np.ndarray


@dataclass
class HybridTrace:
    """A closed-loop execution of the hybrid automaton.

    Attributes:
        points: sampled (time, mode, state) triples.
        transitions_taken: the guard names taken, in order.
        safe: whether the safety predicate held at every sample.
    """

    points: list[HybridTracePoint] = field(default_factory=list)
    transitions_taken: list[str] = field(default_factory=list)
    safe: bool = True

    @property
    def final_state(self) -> np.ndarray:
        """State at the end of the trace."""
        if not self.points:
            raise SimulationError("empty trace")
        return self.points[-1].state

    @property
    def final_time(self) -> float:
        """Time at the end of the trace."""
        return self.points[-1].time if self.points else 0.0

    def mode_intervals(self) -> list[tuple[str, float, float]]:
        """Return ``(mode, enter_time, exit_time)`` for each mode visit."""
        if not self.points:
            return []
        intervals: list[tuple[str, float, float]] = []
        current_mode = self.points[0].mode
        enter_time = self.points[0].time
        for point in self.points[1:]:
            if point.mode != current_mode:
                intervals.append((current_mode, enter_time, point.time))
                current_mode = point.mode
                enter_time = point.time
        intervals.append((current_mode, enter_time, self.points[-1].time))
        return intervals

    def series(self, extractor: Callable[[str, np.ndarray], float]) -> list[tuple[float, float]]:
        """Extract a (time, value) series, e.g. the efficiency of Fig. 10."""
        return [
            (point.time, extractor(point.mode, point.state)) for point in self.points
        ]


class HybridAutomaton:
    """An MDS equipped with switching logic (guards on its transitions)."""

    def __init__(
        self,
        system: MultiModalSystem,
        switching_logic: SwitchingLogic,
        integrator: IntegratorConfig | None = None,
    ):
        self.system = system
        self.switching_logic = dict(switching_logic)
        self.integrator = OdeIntegrator(integrator or IntegratorConfig())
        missing = [
            t.name for t in system.transitions if t.name not in self.switching_logic
        ]
        if missing:
            raise SimulationError(f"missing guards for transitions: {missing}")

    def guard(self, transition_name: str) -> Hyperbox:
        """The guard hyperbox of a transition."""
        return self.switching_logic[transition_name]

    def guard_holds(self, transition_name: str, state: np.ndarray) -> bool:
        """Whether the guard of ``transition_name`` holds in ``state``."""
        return self.guard(transition_name).contains_vector(
            state, self.system.state_names
        )

    # -- schedule-driven simulation -----------------------------------------------

    def simulate_schedule(
        self,
        schedule: Sequence[str],
        horizon: float = 500.0,
        switch_policy: str = "latest",
        record_interval: float | None = None,
    ) -> HybridTrace:
        """Drive the automaton through a prescribed sequence of transitions.

        This is the execution mode behind the paper's Figure 10: the
        transmission is made to switch from Neutral up through the gears
        and back down, taking the listed transitions in order.

        Args:
            schedule: guard names to take, in order (each must leave the
                current mode).
            horizon: overall time budget.
            switch_policy: ``"latest"`` (default) stays in the mode until
                the guard is about to stop holding — or the next step would
                violate safety — before switching; ``"asap"`` switches at
                the first instant the guard holds and the dwell time has
                elapsed.
            record_interval: sampling period of the returned trace
                (defaults to the integrator step).

        Returns:
            A :class:`HybridTrace`.
        """
        if switch_policy not in {"latest", "asap"}:
            raise SimulationError(f"unknown switch policy {switch_policy!r}")
        step = self.integrator.config.step
        stepper = rk4_step if self.integrator.config.method == "rk4" else euler_step
        record_interval = record_interval or step
        system = self.system
        mode_name = system.initial_mode
        state = np.array(system.initial_state, dtype=float)
        time = 0.0
        trace = HybridTrace()
        trace.points.append(HybridTracePoint(time, mode_name, state.copy()))
        last_record = time
        schedule_index = 0
        time_in_mode = 0.0

        while time < horizon and schedule_index < len(schedule):
            transition = system.transition_named(schedule[schedule_index])
            if transition.source != mode_name:
                raise SimulationError(
                    f"scheduled transition {transition.name} does not leave mode {mode_name}"
                )
            mode = system.modes[mode_name]
            if not system.is_safe(mode_name, state):
                trace.safe = False
            guard_now = self.guard_holds(transition.name, state)
            dwell_ok = time_in_mode >= mode.min_dwell - 1e-9
            should_switch = False
            if guard_now and dwell_ok:
                if switch_policy == "asap":
                    should_switch = True
                else:
                    # Peek one step ahead: switch if the guard (or safety)
                    # would stop holding, or if the mode's dynamics make no
                    # progress (e.g. Neutral), in which case waiting longer
                    # changes nothing.
                    next_state = stepper(
                        lambda s, t: mode.dynamics(s), state, time, step
                    )
                    stalled = bool(np.allclose(next_state, state, atol=1e-12))
                    if (
                        stalled
                        or not self.guard_holds(transition.name, next_state)
                        or not system.is_safe(mode_name, next_state)
                    ):
                        should_switch = True
            if should_switch:
                trace.transitions_taken.append(transition.name)
                mode_name = transition.target
                time_in_mode = 0.0
                trace.points.append(HybridTracePoint(time, mode_name, state.copy()))
                schedule_index += 1
                continue
            state = stepper(lambda s, t: mode.dynamics(s), state, time, step)
            time += step
            time_in_mode += step
            if time - last_record >= record_interval - 1e-12:
                if not system.is_safe(mode_name, state):
                    trace.safe = False
                trace.points.append(HybridTracePoint(time, mode_name, state.copy()))
                last_record = time
        trace.points.append(HybridTracePoint(time, mode_name, state.copy()))
        return trace
