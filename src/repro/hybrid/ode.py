"""Numerical ODE integration (the deductive engine substrate of Section 5).

The switching-logic synthesis procedure labels candidate switching states
as safe or unsafe by *numerical simulation* of the intra-mode continuous
dynamics — the paper argues that a numerical simulator is a deductive
engine (it solves systems of constraints by applying rules about the
underlying theory).  The paper used a MATLAB simulator; this module
provides a classic fixed-step fourth-order Runge–Kutta integrator with
event (predicate) detection, which is more than accurate enough for the
smooth transmission dynamics of the paper's example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.exceptions import SimulationError

#: A vector field: f(state, time) -> derivative (both numpy arrays).
VectorField = Callable[[np.ndarray, float], np.ndarray]

#: A predicate over (state, time), used for event detection.
StatePredicate = Callable[[np.ndarray, float], bool]


@dataclass
class Trajectory:
    """A sampled trajectory of an ODE system.

    Attributes:
        times: sample times (monotonically increasing).
        states: state vectors, one row per sample time.
        terminated_by_event: whether integration stopped because the stop
            predicate became true (as opposed to reaching the horizon).
    """

    times: list[float] = field(default_factory=list)
    states: list[np.ndarray] = field(default_factory=list)
    terminated_by_event: bool = False

    def append(self, time: float, state: np.ndarray) -> None:
        """Record one sample."""
        self.times.append(time)
        self.states.append(np.array(state, dtype=float))

    @property
    def final_state(self) -> np.ndarray:
        """The last recorded state."""
        if not self.states:
            raise SimulationError("empty trajectory")
        return self.states[-1]

    @property
    def final_time(self) -> float:
        """The last recorded time."""
        if not self.times:
            raise SimulationError("empty trajectory")
        return self.times[-1]

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(times, states)`` as numpy arrays."""
        return np.asarray(self.times), np.stack(self.states, axis=0)

    def __len__(self) -> int:
        return len(self.times)


def rk4_step(field: VectorField, state: np.ndarray, time: float, step: float) -> np.ndarray:
    """One classical Runge–Kutta (RK4) step."""
    k1 = field(state, time)
    k2 = field(state + 0.5 * step * k1, time + 0.5 * step)
    k3 = field(state + 0.5 * step * k2, time + 0.5 * step)
    k4 = field(state + step * k3, time + step)
    return state + (step / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


def euler_step(field: VectorField, state: np.ndarray, time: float, step: float) -> np.ndarray:
    """One forward-Euler step (kept for convergence-order tests)."""
    return state + step * field(state, time)


@dataclass(frozen=True)
class IntegratorConfig:
    """Configuration of the fixed-step integrator.

    Attributes:
        step: integration step size (seconds).
        max_time: maximum integration horizon per call.
        method: ``"rk4"`` or ``"euler"``.
    """

    step: float = 0.01
    max_time: float = 1000.0
    method: str = "rk4"

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise SimulationError("integrator step must be positive")
        if self.max_time <= 0:
            raise SimulationError("integration horizon must be positive")
        if self.method not in {"rk4", "euler"}:
            raise SimulationError(f"unknown integration method {self.method!r}")


class OdeIntegrator:
    """Fixed-step ODE integrator with optional event detection."""

    def __init__(self, config: IntegratorConfig | None = None):
        self.config = config or IntegratorConfig()
        self._stepper = rk4_step if self.config.method == "rk4" else euler_step

    def integrate(
        self,
        field: VectorField,
        initial_state: Sequence[float],
        start_time: float = 0.0,
        horizon: float | None = None,
        stop_when: StatePredicate | None = None,
        record: bool = True,
    ) -> Trajectory:
        """Integrate ``field`` from ``initial_state``.

        Args:
            field: the vector field.
            initial_state: initial state vector.
            start_time: initial time.
            horizon: integration duration (defaults to ``config.max_time``).
            stop_when: optional predicate; integration stops at the first
                sample where it holds (the sample is included).
            record: when False only the first and last samples are kept
                (cheaper for long labeling runs).

        Returns:
            The sampled :class:`Trajectory`.
        """
        horizon = horizon if horizon is not None else self.config.max_time
        if horizon < 0:
            raise SimulationError("horizon must be non-negative")
        state = np.array(initial_state, dtype=float)
        time = float(start_time)
        end_time = time + horizon
        trajectory = Trajectory()
        trajectory.append(time, state)
        if stop_when is not None and stop_when(state, time):
            trajectory.terminated_by_event = True
            return trajectory
        while time < end_time - 1e-12:
            step = min(self.config.step, end_time - time)
            state = self._stepper(field, state, time, step)
            time += step
            if record or len(trajectory.times) < 2:
                trajectory.append(time, state)
            else:
                trajectory.times[-1] = time
                trajectory.states[-1] = np.array(state, dtype=float)
            if stop_when is not None and stop_when(state, time):
                trajectory.terminated_by_event = True
                break
        return trajectory
