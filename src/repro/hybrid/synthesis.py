"""Switching logic synthesis for safety (and dwell time) — paper Section 5.

The overall sciductive procedure operates inside a fixpoint loop
(paper Section 5.2, last paragraph):

1. initialise every transition guard with an over-approximate hyperbox
   (the safety region for ordinary guards; the designated point for the
   "return to neutral" guard of the transmission example);
2. for every transition entering a mode ``m``, shrink its guard to the
   maximal hyperbox of *safe switching states*: states from which the
   intra-mode trajectory stays safe until it can take one of ``m``'s exit
   transitions (whose guards are the current estimates), respecting the
   mode's minimum dwell time;
3. repeat until no guard changes — since guards only shrink and all
   endpoints live on a finite grid, the loop terminates.

Safe/unsafe labels come from the numerical-simulation reachability oracle
(the deductive engine); the per-guard shrinking is hyperbox learning by
binary search (the inductive engine); the hyperbox-on-a-grid restriction
is the structure hypothesis.  If the structure hypothesis holds and the
simulator is ideal, the result is sound and complete (paper Section 5.3);
the synthesizer additionally performs corner validation of every learned
guard as a-posteriori evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.exceptions import ReproError
from repro.core.hypothesis import GridSpec, HypothesisValidityEvidence
from repro.core.procedure import SciductionProcedure, SciductionResult
from repro.hybrid.hyperbox import Hyperbox, HyperboxHypothesis
from repro.hybrid.learner import HyperboxLearner
from repro.hybrid.mds import MultiModalSystem, SwitchingLogic
from repro.hybrid.reachability import ReachabilityOracle, SwitchingStateLabeler


@dataclass
class SynthesisReport:
    """Outcome of switching-logic synthesis.

    Attributes:
        switching_logic: the synthesized guard for every transition.
        iterations: number of fixpoint iterations performed.
        labeling_queries: total number of simulation (labeling) queries.
        corner_checks_passed: whether every learned guard's corners were
            re-validated as safe (structure-hypothesis evidence).
        empty_guards: transitions whose guard collapsed to the empty box
            (their seed state turned out to be unsafe).
    """

    switching_logic: SwitchingLogic
    iterations: int
    labeling_queries: int
    corner_checks_passed: bool
    empty_guards: list[str] = field(default_factory=list)

    def describe(self, precision: int = 2) -> dict[str, str]:
        """Human-readable guard table (Eq. 3 / Eq. 4 of the paper)."""
        return {
            name: box.describe(precision) for name, box in self.switching_logic.items()
        }


class SwitchingLogicSynthesizer(SciductionProcedure[SwitchingLogic]):
    """Synthesizes hyperbox guards making a multi-modal system safe.

    Args:
        system: the multi-modal dynamical system.
        grids: finite-precision grid per state dimension (the structure
            hypothesis requires guard vertices to lie on this grid).
        initial_guards: over-approximate guard per transition (every safe
            guard must be contained in it).
        seeds: per-transition seed states believed safe (a point in the
            guard from which the binary search starts).  Transitions
            without a seed default to the centre of their initial guard.
        reachability: the simulation-based labeling oracle.
        frozen_guards: transition names whose guards are fixed a priori
            and never shrunk (e.g. the ``θ = θmax ∧ ω = 0`` return-to-
            neutral guard of the transmission example).
        max_iterations: bound on fixpoint iterations.
        validate_corners: whether to re-check the corners of every learned
            guard (extra simulations; provides hypothesis evidence).
    """

    name = "switching-logic-synthesis"

    def __init__(
        self,
        system: MultiModalSystem,
        grids: Mapping[str, GridSpec],
        initial_guards: Mapping[str, Hyperbox],
        reachability: ReachabilityOracle,
        seeds: Mapping[str, Mapping[str, float]] | None = None,
        frozen_guards: set[str] | None = None,
        max_iterations: int = 10,
        validate_corners: bool = True,
    ):
        self.system = system
        self.grids = dict(grids)
        self.initial_guards = {
            name: box.snapped(self.grids) for name, box in initial_guards.items()
        }
        missing = [
            t.name for t in system.transitions if t.name not in self.initial_guards
        ]
        if missing:
            raise ReproError(f"missing initial guards for transitions: {missing}")
        self.reachability = reachability
        self.seeds = {name: dict(seed) for name, seed in (seeds or {}).items()}
        self.frozen_guards = set(frozen_guards or ())
        self.max_iterations = max_iterations
        self.validate_corners = validate_corners
        self.learner = HyperboxLearner(self.grids)
        self._corner_checks_passed = True
        super().__init__(
            hypothesis=HyperboxHypothesis(self.grids),
            inductive=None,
            deductive=reachability,
        )

    # -- job limits ---------------------------------------------------------------

    def set_deadline(self, deadline: float | None = None) -> None:
        """Install a wall-clock deadline on the underlying simulation oracle.

        The deductive engine of this procedure is numerical simulation, so
        a timeout cannot be enforced inside a SAT loop the way the
        SMT-backed procedures do it; instead the reachability oracle polls
        the clock between integration steps and raises
        :class:`~repro.core.exceptions.BudgetExceededError` once the
        deadline has passed.  The engine layer calls this when a
        switching-logic job is submitted with a ``timeout``.
        """
        self.reachability.set_deadline(deadline)

    # -- soundness ----------------------------------------------------------------

    def hypothesis_evidence(self) -> HypothesisValidityEvidence:
        evidence = HypothesisValidityEvidence(
            hypothesis_name=self.hypothesis.name,
            proved=False,
            argument=(
                "valid when intra-mode dynamics are monotone in each state "
                "variable and guard constants have finite precision (paper Sec. 5.2)"
            ),
        )
        if self.validate_corners:
            evidence.checked_instances += 1
            evidence.add_note(
                "corner re-validation "
                + ("passed" if self._corner_checks_passed else "FAILED")
            )
            if not self._corner_checks_passed:
                evidence.counterexample = "a learned guard corner was labeled unsafe"
        return evidence

    def soundness_argument(self) -> str:
        return (
            "guards start from over-approximations and only shrink to states the "
            "(ideal) simulator labels safe w.r.t. the current exit guards, so at "
            "the fixpoint every reachable switching state is safe (paper Sec. 5.3)"
        )

    # -- the fixpoint loop -------------------------------------------------------------

    def _seed_for(self, transition_name: str, guard: Hyperbox) -> dict[str, float]:
        if transition_name in self.seeds:
            return dict(self.seeds[transition_name])
        return guard.center()

    def synthesize(self) -> SynthesisReport:
        """Run the fixpoint loop and return the synthesized switching logic."""
        guards: SwitchingLogic = dict(self.initial_guards)
        queries_before = self.reachability.simulations
        empty_guards: list[str] = []
        iterations = 0
        for iteration in range(1, self.max_iterations + 1):
            iterations = iteration
            changed = False
            for transition in self.system.transitions:
                if transition.name in self.frozen_guards:
                    continue
                current = guards[transition.name]
                if current.is_empty:
                    continue
                target_mode = self.system.modes[transition.target]
                exit_guards = {
                    exit_transition.name: guards[exit_transition.name]
                    for exit_transition in self.system.exits_of(transition.target)
                }
                labeler = SwitchingStateLabeler(
                    self.reachability,
                    mode=transition.target,
                    exit_guards=exit_guards,
                    min_dwell=target_mode.min_dwell,
                )
                seed = self._seed_for(transition.name, current)
                result = self.learner.learn(current, labeler, seed)
                new_guard = (
                    result.box
                    if result.box.is_empty
                    else result.box.intersect(current).snapped(self.grids)
                )
                if not result.seed_was_safe:
                    if transition.name not in empty_guards:
                        empty_guards.append(transition.name)
                if not new_guard.equals(current):
                    guards[transition.name] = new_guard
                    changed = True
            if not changed:
                break
        if self.validate_corners:
            self._corner_checks_passed = self._validate(guards)
        return SynthesisReport(
            switching_logic=guards,
            iterations=iterations,
            labeling_queries=self.reachability.simulations - queries_before,
            corner_checks_passed=self._corner_checks_passed,
            empty_guards=empty_guards,
        )

    def _validate(self, guards: SwitchingLogic) -> bool:
        """Re-check every guard's corners against the final guard estimates."""
        all_passed = True
        for transition in self.system.transitions:
            if transition.name in self.frozen_guards:
                continue
            guard = guards[transition.name]
            if guard.is_empty:
                continue
            target_mode = self.system.modes[transition.target]
            exit_guards = {
                exit_transition.name: guards[exit_transition.name]
                for exit_transition in self.system.exits_of(transition.target)
            }
            labeler = SwitchingStateLabeler(
                self.reachability,
                mode=transition.target,
                exit_guards=exit_guards,
                min_dwell=target_mode.min_dwell,
            )
            if not self.learner.validate_corners(guard, labeler):
                all_passed = False
        return all_passed

    # -- SciductionProcedure interface --------------------------------------------------

    def describe(self) -> dict[str, str]:
        return {
            "procedure": self.name,
            "H": self.hypothesis.describe(),
            "I": "hyperbox learning (binary search) from safe/unsafe labeled states",
            "D": "numerical ODE simulation as a reachability oracle",
        }

    def _run(self, **_: object) -> SciductionResult[SwitchingLogic]:
        report = self.synthesize()
        success = all(
            not box.is_empty
            for name, box in report.switching_logic.items()
        )
        return SciductionResult(
            success=success,
            artifact=report.switching_logic,
            iterations=report.iterations,
            oracle_queries=report.labeling_queries,
            deductive_queries=self.reachability.statistics.queries,
            details={
                "guards": report.describe(),
                "corner_checks_passed": report.corner_checks_passed,
                "empty_guards": report.empty_guards,
            },
        )
