"""Hyperbox learning from labeled points (the inductive engine of Section 5).

Given an over-approximate guard (a hyperbox known to contain every safe
switching state), a membership oracle labeling individual states as safe
or unsafe, and a seed state believed safe, the learner finds the maximal
grid-aligned hyperbox of safe states around the seed by binary search on
each face — the hyperbox-learning strategy of Goldman & Kearns referenced
by the paper.  Under the structure hypothesis (the safe switching states
form a grid-aligned hyperbox, guaranteed by monotone intra-mode dynamics
and finite-precision recording), the result is exactly the safe set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import InductionError
from repro.core.hypothesis import GridSpec
from repro.core.inductive import BinarySearchIntervalLearner, Interval
from repro.core.oracle import FunctionLabelingOracle, LabelingOracle
from repro.hybrid.hyperbox import Hyperbox


@dataclass
class HyperboxLearningResult:
    """Outcome of one hyperbox-learning call.

    Attributes:
        box: the learned hyperbox (empty when the seed was unsafe).
        queries: number of labeling queries issued.
        seed_was_safe: whether the seed point was labeled safe.
    """

    box: Hyperbox
    queries: int
    seed_was_safe: bool


class HyperboxLearner:
    """Learns a maximal safe hyperbox inside an over-approximation.

    Args:
        grids: one :class:`~repro.core.hypothesis.GridSpec` per state
            dimension (the finite-precision grid of the structure
            hypothesis).
    """

    def __init__(self, grids: dict[str, GridSpec]):
        if not grids:
            raise InductionError("at least one dimension is required")
        self.grids = dict(grids)

    def learn(
        self,
        overapproximation: Hyperbox,
        oracle: LabelingOracle[dict[str, float], bool],
        seed: dict[str, float],
    ) -> HyperboxLearningResult:
        """Learn the maximal safe box around ``seed`` inside the given box.

        The search proceeds dimension by dimension: for each dimension the
        maximal safe interval through the seed (holding the other
        coordinates at their seed values) is found by binary search on the
        grid restricted to the over-approximation.  Under the hyperbox
        structure hypothesis the product of these intervals is the maximal
        safe box; a final corner check validates the result on the learned
        box's extreme points.

        Returns:
            A :class:`HyperboxLearningResult`; the box is empty when the
            seed itself is labeled unsafe.
        """
        queries_before = oracle.query_count
        snapped_seed = {
            name: self.grids[name].snap(value) for name, value in seed.items()
        }
        if not overapproximation.contains(snapped_seed):
            raise InductionError("seed lies outside the over-approximate guard")
        if not oracle.label(snapped_seed):
            empty = Hyperbox(
                tuple(
                    (name, Interval(1.0, 0.0))
                    for name in overapproximation.dimensions
                )
            )
            return HyperboxLearningResult(
                box=empty,
                queries=oracle.query_count - queries_before,
                seed_was_safe=False,
            )
        intervals: list[tuple[str, Interval]] = []
        for name in overapproximation.dimensions:
            bounds = overapproximation.interval(name)
            grid = self.grids[name]
            # Restrict the search grid to the over-approximation.
            local_grid = GridSpec(
                low=grid.snap(max(bounds.low, grid.low)),
                high=grid.snap(min(bounds.high, grid.high)),
                step=grid.step,
            )

            def label_point(value: float, axis: str = name) -> bool:
                point = dict(snapped_seed)
                point[axis] = value
                return oracle.label(point)

            axis_oracle = FunctionLabelingOracle(label_point, name=f"axis-{name}")
            learner = BinarySearchIntervalLearner(local_grid, axis_oracle)
            interval = learner.learn(snapped_seed[name])
            intervals.append((name, interval))
        box = Hyperbox(tuple(intervals))
        return HyperboxLearningResult(
            box=box,
            queries=oracle.query_count - queries_before,
            seed_was_safe=True,
        )

    def validate_corners(
        self,
        box: Hyperbox,
        oracle: LabelingOracle[dict[str, float], bool],
    ) -> bool:
        """Check that every corner of ``box`` is labeled safe.

        Under a valid structure hypothesis this always succeeds; a failure
        is evidence that the hypothesis is invalid for the system at hand
        (recorded by the synthesizer in its soundness certificate).
        """
        if box.is_empty:
            return True
        return all(oracle.label(corner) for corner in box.corners())
