"""Flow-sensitive rules over the CFG: LOCK02, BLK01, RES01.

``LOCK02`` — lock-state dataflow.  For ``@guarded_by`` classes, every
    mutation of a guarded field must happen with the declared lock in
    the *must-held* set (intersection over all paths) — a branch that
    can reach the mutation unlocked is a finding even if another branch
    locks.  Locks taken by explicit ``.acquire()`` that can reach an
    exception exit without ``.release()`` are flagged separately.

``BLK01`` — blocking calls under a lock.  Socket I/O, ``os.fsync``,
    ``subprocess.*``, ``time.sleep`` and untimed ``Condition.wait``
    while *any* inventory lock may be held (union over paths) is a
    latency/deadlock hazard in the service and cluster layers.

``RES01`` — resource leaks on exception edges.  Local names bound to a
    closeable constructor (``FramedSocket``, ``socket.*``, ``open``)
    must be closed, returned, stored, or handed off on every path —
    including the exception edges of every statement between creation
    and the ownership transfer.

All three run on the same CFG (:mod:`repro.analysis.cfg`) with the same
driver (:mod:`repro.analysis.dataflow`); what differs is the lattice
and the join direction.
"""

from __future__ import annotations

import ast

from repro.analysis.cfg import (
    CFG,
    KIND_EXIT,
    KIND_RAISE,
    KIND_STMT,
    KIND_WITH_ENTER,
    KIND_WITH_EXIT,
    CFGNode,
    build_cfg,
)
from repro.analysis.common import (
    MUTATING_METHODS,
    Finding,
    GuardDeclaration,
    _innermost_self_attribute,
    _self_attribute,
    holds_lock,
    parse_guarded_by,
    walk_shallow,
)
from repro.analysis.dataflow import Solution, solve

#: Socket-ish method names that block on the network (BLK01).
BLOCKING_SOCKET_METHODS = frozenset(
    {
        "recv", "recv_into", "recvfrom", "recvfrom_into",
        "send", "sendall", "sendto", "accept", "connect",
    }
)

#: ``subprocess`` entry points that block on a child process (BLK01).
BLOCKING_SUBPROCESS = frozenset(
    {"run", "call", "check_call", "check_output", "Popen"}
)

#: ``module.function`` calls that block, keyed by module name (BLK01).
_BLOCKING_MODULE_CALLS = {
    ("os", "fsync"): "os.fsync()",
    ("time", "sleep"): "time.sleep()",
}

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


# ---------------------------------------------------------------------------
# Lock inventory
# ---------------------------------------------------------------------------


class LockInventory:
    """The ``self.X`` locks a class owns, with condition aliases."""

    def __init__(self, locks: set[str], aliases: dict[str, str]) -> None:
        self.locks = locks
        self.aliases = aliases

    def canonical(self, attribute: str | None) -> str | None:
        """The underlying lock for an attribute, or None if not a lock."""
        if attribute is None:
            return None
        if attribute in self.aliases:
            return self.aliases[attribute]
        if attribute in self.locks:
            return attribute
        return None

    def __bool__(self) -> bool:
        return bool(self.locks)


def collect_lock_inventory(
    node: ast.ClassDef, declaration: GuardDeclaration | None
) -> LockInventory:
    """Locks assigned anywhere in the class plus the declared guard."""
    locks: set[str] = set()
    aliases: dict[str, str] = {}
    for statement in ast.walk(node):
        value: ast.expr | None = None
        targets: list[ast.expr] = []
        if isinstance(statement, ast.Assign):
            value, targets = statement.value, statement.targets
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            value, targets = statement.value, [statement.target]
        if not isinstance(value, ast.Call):
            continue
        constructor: str | None = None
        func = value.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "threading"
        ):
            constructor = func.attr
        elif isinstance(func, ast.Name):
            constructor = func.id
        if constructor not in ("Lock", "RLock", "Condition"):
            continue
        for target in targets:
            attribute = _self_attribute(target)
            if attribute is None:
                continue
            if constructor == "Condition" and value.args:
                underlying = _self_attribute(value.args[0])
                if underlying is not None:
                    aliases[attribute] = underlying
                    locks.add(underlying)
                    continue
            locks.add(attribute)
    if declaration is not None:
        locks.add(declaration.lock)
        for alias in declaration.aliases:
            aliases.setdefault(alias, declaration.lock)
    return LockInventory(locks, aliases)


# ---------------------------------------------------------------------------
# Lock-state dataflow (shared by LOCK02 and BLK01)
# ---------------------------------------------------------------------------


def _lock_method_call(node: ast.AST) -> tuple[str, str] | None:
    """``(attribute, "acquire"|"release")`` for ``self.X.acquire()`` calls."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return None
    if node.func.attr not in ("acquire", "release"):
        return None
    attribute = _self_attribute(node.func.value)
    if attribute is None:
        return None
    return attribute, node.func.attr


class _LockStateAnalysis:
    """Held-lock sets; ``must=True`` intersects, ``must=False`` unions."""

    def __init__(
        self,
        inventory: LockInventory,
        entry: frozenset[str],
        must: bool,
    ) -> None:
        self._inventory = inventory
        self._entry = entry
        self._must = must

    def initial(self) -> frozenset[str]:
        return self._entry

    def join(self, left: frozenset[str], right: frozenset[str]) -> frozenset[str]:
        return left & right if self._must else left | right

    def _with_locks(self, payload: ast.AST | None) -> set[str]:
        acquired: set[str] = set()
        if isinstance(payload, (ast.With, ast.AsyncWith)):
            for item in payload.items:
                canonical = self._inventory.canonical(
                    _self_attribute(item.context_expr)
                )
                if canonical is not None:
                    acquired.add(canonical)
        return acquired

    def transfer(
        self, node: CFGNode, state: frozenset[str]
    ) -> tuple[frozenset[str], frozenset[str]]:
        if node.kind == KIND_WITH_ENTER:
            return state | self._with_locks(node.payload), state
        if node.kind == KIND_WITH_EXIT:
            released = state - self._with_locks(node.payload)
            return released, released
        if node.kind == KIND_STMT and node.payload is not None:
            out = state
            for sub in walk_shallow(node.payload):
                call = _lock_method_call(sub)
                if call is None:
                    continue
                canonical = self._inventory.canonical(call[0])
                if canonical is None:
                    continue
                if call[1] == "acquire":
                    out = out | {canonical}
                else:
                    out = out - {canonical}
            # Exception during the statement: an acquire may not have
            # happened yet; a completed release has.  Conservatively use
            # the pre-state for acquires, the post-state for releases.
            exceptional = state if len(out) > len(state) else out
            return out, exceptional
        return state, state


class _AcquireSiteAnalysis:
    """May-analysis of explicit ``.acquire()`` sites: ``(lock, line)``."""

    def __init__(self, inventory: LockInventory) -> None:
        self._inventory = inventory

    def initial(self) -> frozenset[tuple[str, int]]:
        return frozenset()

    def join(
        self,
        left: frozenset[tuple[str, int]],
        right: frozenset[tuple[str, int]],
    ) -> frozenset[tuple[str, int]]:
        return left | right

    def transfer(
        self, node: CFGNode, state: frozenset[tuple[str, int]]
    ) -> tuple[frozenset[tuple[str, int]], frozenset[tuple[str, int]]]:
        if node.kind != KIND_STMT or node.payload is None:
            return state, state
        out = state
        for sub in walk_shallow(node.payload):
            call = _lock_method_call(sub)
            if call is None:
                continue
            canonical = self._inventory.canonical(call[0])
            if canonical is None:
                continue
            if call[1] == "acquire":
                out = out | {(canonical, getattr(sub, "lineno", node.line))}
            else:
                out = frozenset(
                    entry for entry in out if entry[0] != canonical
                )
        # An exception inside the statement: treat acquires as not taken
        # (pre-state) so the acquire line itself doesn't self-report.
        return out, state if len(out) > len(state) else out


# ---------------------------------------------------------------------------
# LOCK02 — guarded mutations on every path, releases on exception edges
# ---------------------------------------------------------------------------


def _guarded_mutations(
    payload: ast.AST, fields: set[str]
) -> list[tuple[ast.AST, str]]:
    """(node, field) pairs where the payload mutates a guarded field."""
    mutations: list[tuple[ast.AST, str]] = []
    for sub in walk_shallow(payload):
        targets: list[ast.expr] = []
        if isinstance(sub, ast.Assign):
            targets = sub.targets
        elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
            targets = [sub.target]
        elif isinstance(sub, ast.Delete):
            targets = sub.targets
        for target in targets:
            field = _innermost_self_attribute(target)
            if field in fields:
                mutations.append((sub, field))  # type: ignore[arg-type]
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in MUTATING_METHODS
        ):
            field = _innermost_self_attribute(sub.func.value)
            if field in fields:
                mutations.append((sub, field))  # type: ignore[arg-type]
    return mutations


def _check_lock02_function(
    function: _FunctionNode,
    cfg: CFG,
    inventory: LockInventory,
    declaration: GuardDeclaration | None,
    entry_locks: frozenset[str],
    check_mutations: bool,
    method_label: str,
    path: str,
    findings: list[Finding],
) -> None:
    if check_mutations and declaration is not None:
        must = solve(cfg, _LockStateAnalysis(inventory, entry_locks, must=True))
        required = inventory.canonical(declaration.lock) or declaration.lock
        for node in cfg.nodes:
            if node.kind != KIND_STMT or node.payload is None:
                continue
            state = must.at(node.index)
            if state is None or required in state:
                continue
            for site, field in _guarded_mutations(
                node.payload, declaration.fields
            ):
                findings.append(
                    Finding(
                        "LOCK02",
                        path,
                        getattr(site, "lineno", node.line),
                        f"mutation of guarded field {field!r} in "
                        f"{method_label!r} is reachable without holding "
                        f"self.{declaration.lock} — lock every path or "
                        f"declare @holds({declaration.lock!r})",
                    )
                )
    leaks: Solution[frozenset[tuple[str, int]]] = solve(
        cfg, _AcquireSiteAnalysis(inventory)
    )
    at_raise = leaks.at(cfg.raise_exit)
    if at_raise:
        for lock, line in sorted(at_raise):
            findings.append(
                Finding(
                    "LOCK02",
                    path,
                    line,
                    f"self.{lock}.acquire() in {method_label!r} may not be "
                    "released on an exception path — use `with` or "
                    "try/finally",
                )
            )


# ---------------------------------------------------------------------------
# BLK01 — blocking calls while a lock is held
# ---------------------------------------------------------------------------


def collect_blocking_imports(tree: ast.Module) -> dict[str, str]:
    """Bare names bound to blocking functions by ``from … import …``."""
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom):
            continue
        for alias in node.names:
            description = _BLOCKING_MODULE_CALLS.get(
                (node.module or "", alias.name)
            )
            if description is not None:
                names[alias.asname or alias.name] = description
            if node.module == "subprocess" and alias.name in BLOCKING_SUBPROCESS:
                names[alias.asname or alias.name] = f"subprocess.{alias.name}()"
    return names


def _blocking_calls(
    payload: ast.AST, bare_names: dict[str, str]
) -> list[tuple[int, str]]:
    """(line, description) for each blocking call in a node payload."""
    calls: list[tuple[int, str]] = []
    for sub in walk_shallow(payload):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        line = getattr(sub, "lineno", 0)
        if isinstance(func, ast.Name):
            description = bare_names.get(func.id)
            if description is not None:
                calls.append((line, description))
            continue
        if not isinstance(func, ast.Attribute):
            continue
        base = func.value.id if isinstance(func.value, ast.Name) else None
        if base is not None:
            module_call = _BLOCKING_MODULE_CALLS.get((base, func.attr))
            if module_call is not None:
                calls.append((line, module_call))
                continue
            if base == "subprocess" and func.attr in BLOCKING_SUBPROCESS:
                calls.append((line, f"subprocess.{func.attr}()"))
                continue
        if func.attr in BLOCKING_SOCKET_METHODS:
            calls.append((line, f".{func.attr}()"))
            continue
        if func.attr == "wait":
            has_timeout = bool(sub.args) or any(
                keyword.arg == "timeout"
                and not (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is None
                )
                for keyword in sub.keywords
            )
            if not has_timeout:
                calls.append((line, ".wait() without a timeout"))
    return calls


def _payload_expressions(node: CFGNode) -> ast.AST | None:
    """The AST to scan for calls at a node (with headers included)."""
    if node.kind == KIND_WITH_ENTER and isinstance(
        node.payload, (ast.With, ast.AsyncWith)
    ):
        return node.payload
    if node.kind == KIND_STMT:
        return node.payload
    return None


def _check_blk01_function(
    function: _FunctionNode,
    cfg: CFG,
    inventory: LockInventory,
    entry_locks: frozenset[str],
    bare_names: dict[str, str],
    method_label: str,
    path: str,
    findings: list[Finding],
) -> None:
    may = solve(cfg, _LockStateAnalysis(inventory, entry_locks, must=False))
    for node in cfg.nodes:
        payload = _payload_expressions(node)
        if payload is None:
            continue
        state = may.at(node.index)
        if not state:
            continue
        held = ", ".join(f"self.{lock}" for lock in sorted(state))
        scan: ast.AST = payload
        if node.kind == KIND_WITH_ENTER and isinstance(
            payload, (ast.With, ast.AsyncWith)
        ):
            # Only the context expressions run at this point.
            module = ast.Module(
                body=[
                    ast.Expr(value=item.context_expr)
                    for item in payload.items
                ],
                type_ignores=[],
            )
            scan = module
        for line, description in _blocking_calls(scan, bare_names):
            findings.append(
                Finding(
                    "BLK01",
                    path,
                    line or node.line,
                    f"blocking call {description} in {method_label!r} while "
                    f"holding {held} — move the I/O outside the lock or "
                    "justify with an allow entry",
                )
            )


# ---------------------------------------------------------------------------
# RES01 — closeable resources escaping without close() on some path
# ---------------------------------------------------------------------------


def _resource_constructor(value: ast.expr) -> str | None:
    """A human label if ``value`` constructs a closeable resource."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "open(...)"
        if func.id == "FramedSocket":
            return "FramedSocket(...)"
        return None
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id == "FramedSocket" and func.attr == "connect":
            return "FramedSocket.connect(...)"
        if func.value.id == "socket" and func.attr in (
            "socket", "create_connection", "create_server",
        ):
            return f"socket.{func.attr}(...)"
    return None


_Resource = tuple[str, int, str]  # (name, creation line, label)


def _escaping_names(expression: ast.AST) -> set[str]:
    """Names used in positions that transfer or consume ownership.

    A bare name as the *receiver* of an attribute access (``link.recv()``,
    ``link.close()``) is a use, not a transfer; anything else — call
    argument, return value, container element, attribute store — hands
    the object to code that now owns closing it.
    """
    names: set[str] = set()
    stack: list[ast.AST] = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            continue  # receiver position
        if isinstance(node, ast.Name):
            names.add(node.id)
            continue
        stack.extend(ast.iter_child_nodes(node))
    return names


class _ResourceAnalysis:
    """May-analysis of open resources bound to simple local names."""

    def initial(self) -> frozenset[_Resource]:
        return frozenset()

    def join(
        self, left: frozenset[_Resource], right: frozenset[_Resource]
    ) -> frozenset[_Resource]:
        return left | right

    def _transfer_stmt(
        self, payload: ast.AST, state: frozenset[_Resource]
    ) -> tuple[frozenset[_Resource], frozenset[_Resource]]:
        closed: set[str] = set()
        escaped: set[str] = set()
        created: list[_Resource] = []
        rebound: set[str] = set()
        for sub in walk_shallow(payload):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in ("close", "shutdown")
                and isinstance(sub.func.value, ast.Name)
            ):
                if sub.func.attr == "close":
                    closed.add(sub.func.value.id)
        if isinstance(payload, (ast.Assign, ast.AnnAssign)):
            value = payload.value
            targets = (
                payload.targets
                if isinstance(payload, ast.Assign)
                else [payload.target]
            )
            if value is not None:
                label = _resource_constructor(value)
                for target in targets:
                    if isinstance(target, ast.Name):
                        rebound.add(target.id)
                        if label is not None:
                            created.append(
                                (target.id, getattr(payload, "lineno", 0), label)
                            )
                    elif (
                        isinstance(target, ast.Tuple)
                        and target.elts
                        and isinstance(target.elts[0], ast.Name)
                        and isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Attribute)
                        and value.func.attr == "accept"
                    ):
                        # conn, addr = listener.accept()
                        rebound.add(target.elts[0].id)
                        created.append(
                            (
                                target.elts[0].id,
                                getattr(payload, "lineno", 0),
                                ".accept()",
                            )
                        )
                    else:
                        escaped |= _escaping_names(target)
                escaped |= _escaping_names(value)
        elif isinstance(payload, ast.Delete):
            for target in payload.targets:
                if isinstance(target, ast.Name):
                    closed.add(target.id)
        elif isinstance(payload, (ast.With, ast.AsyncWith)):
            for item in payload.items:
                escaped |= _escaping_names(item.context_expr)
        else:
            escaped |= _escaping_names(payload)
        survivors = frozenset(
            resource
            for resource in state
            if resource[0] not in closed
            and resource[0] not in escaped
            and resource[0] not in rebound
        )
        normal = survivors | frozenset(created)
        # On the exception edge the creation may not have completed (or
        # the binding not happened), so new resources are not added.
        return normal, survivors

    def transfer(
        self, node: CFGNode, state: frozenset[_Resource]
    ) -> tuple[frozenset[_Resource], frozenset[_Resource]]:
        if node.payload is None:
            return state, state
        if node.kind not in (KIND_STMT, KIND_WITH_ENTER):
            return state, state
        return self._transfer_stmt(node.payload, state)


def _check_res01_function(
    function: _FunctionNode,
    cfg: CFG,
    method_label: str,
    path: str,
    findings: list[Finding],
) -> None:
    solution = solve(cfg, _ResourceAnalysis())
    reported: dict[tuple[str, int], str] = {}
    at_raise = solution.at(cfg.raise_exit)
    if at_raise:
        for name, line, label in sorted(at_raise):
            reported[(name, line)] = (
                f"{label} bound to {name!r} in {method_label!r} may escape "
                "on an exception path without close() — close it in an "
                "except/finally before the exception leaves"
            )
    at_exit = solution.at(cfg.exit)
    if at_exit:
        for name, line, label in sorted(at_exit):
            reported.setdefault(
                (name, line),
                f"{label} bound to {name!r} in {method_label!r} reaches the "
                "end of the function without close(), return, or handoff",
            )
    for (name, line), message in sorted(reported.items()):
        findings.append(Finding("RES01", path, line, message))


# ---------------------------------------------------------------------------
# Per-module driver
# ---------------------------------------------------------------------------


def _functions_with_nested(
    body: list[ast.stmt],
) -> list[tuple[_FunctionNode, bool]]:
    """(function, is_nested) for each def, recursing into nested defs."""
    found: list[tuple[_FunctionNode, bool]] = []

    def descend(function: _FunctionNode) -> None:
        for sub in ast.walk(function):
            if sub is not function and isinstance(
                sub, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                found.append((sub, True))

    for statement in body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            found.append((statement, False))
            descend(statement)
    return found


def check_flow_rules(
    tree: ast.Module,
    path: str,
    io_sensitive: bool,
) -> list[Finding]:
    """Run LOCK02 everywhere and BLK01/RES01 where ``io_sensitive``."""
    findings: list[Finding] = []
    bare_blocking = collect_blocking_imports(tree) if io_sensitive else {}

    def run_checks(
        function: _FunctionNode,
        nested: bool,
        inventory: LockInventory,
        declaration: GuardDeclaration | None,
        label: str,
    ) -> None:
        cfg = build_cfg(function)
        entry_locks: frozenset[str] = frozenset()
        if not nested:
            # @holds(lock) asserts the lock at runtime (see annotations);
            # the dataflow trusts it by seeding the entry state.  A
            # nested closure runs at an unknown later time, so it starts
            # over with nothing held — the LOCK01 semantics, kept.
            held = holds_lock(function)
            if held is not None:
                entry_locks = frozenset({inventory.canonical(held) or held})
        if function.name not in ("__init__", "__new__", "__post_init__"):
            _check_lock02_function(
                function,
                cfg,
                inventory,
                declaration,
                entry_locks,
                check_mutations=declaration is not None,
                method_label=label,
                path=path,
                findings=findings,
            )
        if io_sensitive:
            _check_blk01_function(
                function,
                cfg,
                inventory,
                entry_locks,
                bare_blocking,
                label,
                path,
                findings,
            )
            _check_res01_function(function, cfg, label, path, findings)

    empty = LockInventory(set(), {})
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            declaration = parse_guarded_by(node)
            inventory = collect_lock_inventory(node, declaration)
            for function, nested in _functions_with_nested(node.body):
                run_checks(
                    function,
                    nested,
                    inventory,
                    declaration,
                    f"{node.name}.{function.name}",
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            run_checks(node, False, empty, None, node.name)
            for function, _ in _functions_with_nested([node])[1:]:
                run_checks(function, True, empty, None, function.name)
    return findings
