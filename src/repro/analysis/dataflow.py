"""A small worklist fixpoint driver over :mod:`repro.analysis.cfg`.

An analysis supplies three things:

* ``initial()`` — the state at the function entry;
* ``join(a, b)`` — merge of two predecessor contributions
  (intersection for a *must* analysis, union for a *may* analysis);
* ``transfer(node, state)`` — the effect of one CFG node, returning
  ``(normal_out, exceptional_out)`` so e.g. a ``with_enter`` can model
  "acquired on the normal edge, not acquired if ``__enter__`` raised".

States must be immutable and comparable (``frozenset`` in practice);
:func:`solve` iterates edge propagation to a fixpoint and returns the
*in*-state of every node (``None`` for unreachable nodes).  With
monotone transfers over a finite lattice this terminates; a generous
iteration cap turns a non-monotone checker bug into a loud failure
instead of a hang.
"""

from __future__ import annotations

from typing import Generic, Protocol, TypeVar

from repro.analysis.cfg import CFG, CFGNode

S = TypeVar("S")


class FlowAnalysis(Protocol[S]):
    """What :func:`solve` needs from a concrete analysis."""

    def initial(self) -> S: ...

    def join(self, left: S, right: S) -> S: ...

    def transfer(self, node: CFGNode, state: S) -> tuple[S, S]: ...


class FixpointDiverged(RuntimeError):
    """The solver exceeded its iteration budget (non-monotone transfer)."""


class Solution(Generic[S]):
    """Per-node in-states of a solved analysis."""

    def __init__(self, states: list[S | None]) -> None:
        self._states = states

    def at(self, index: int) -> S | None:
        return self._states[index]


def solve(cfg: CFG, analysis: FlowAnalysis[S]) -> Solution[S]:
    """Run ``analysis`` to a fixpoint; returns every node's in-state."""
    states: list[S | None] = [None] * len(cfg.nodes)
    states[cfg.entry] = analysis.initial()
    worklist: list[int] = [cfg.entry]
    budget = 64 * (len(cfg.nodes) + 1) * (len(cfg.nodes) + 1)
    while worklist:
        budget -= 1
        if budget < 0:
            raise FixpointDiverged(
                f"dataflow fixpoint did not converge over {len(cfg.nodes)} nodes"
            )
        index = worklist.pop()
        state = states[index]
        if state is None:
            continue
        normal_out, exceptional_out = analysis.transfer(cfg.nodes[index], state)
        for target, exceptional in cfg.edges[index]:
            contribution = exceptional_out if exceptional else normal_out
            existing = states[target]
            merged = (
                contribution
                if existing is None
                else analysis.join(existing, contribution)
            )
            if merged != existing:
                states[target] = merged
                worklist.append(target)
    return Solution(states)
