"""Shared lint vocabulary: findings, AST helpers, guard declarations.

Split out of :mod:`repro.analysis.lint` so the flow-sensitive checkers
(:mod:`repro.analysis.flowrules`, :mod:`repro.analysis.proto`) can share
the same primitives without a circular import — ``lint`` orchestrates
them, they must not import ``lint`` back.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

#: Method names whose call on a guarded attribute mutates it (LOCK02).
MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "popitem",
    "setdefault", "update", "add", "discard", "appendleft", "popleft",
    "extendleft", "rotate", "move_to_end", "sort", "reverse",
}


@dataclass(frozen=True)
class Finding:
    """One lint finding, pointing at a source line."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.rule}  {self.path}:{self.line}  {self.message}"


def _self_attribute(node: ast.AST) -> str | None:
    """The attribute name for a ``self.X`` expression, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _innermost_self_attribute(node: ast.AST) -> str | None:
    """``self.X`` at the base of an attribute/subscript chain, else None.

    ``self._statistics.lookups`` and ``self._entries[key]`` both resolve
    to their base attribute — mutating a member *of* guarded state is a
    mutation of the guarded state.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        found = _self_attribute(node)
        if found is not None:
            return found
        node = node.value
    return None


def _decorator_name(node: ast.AST) -> str | None:
    """Base name of a decorator expression (``holds(...)`` → ``holds``)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _string_args(call: ast.Call) -> list[str]:
    return [
        arg.value
        for arg in call.args
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
    ]


@dataclass
class GuardDeclaration:
    """A parsed ``@guarded_by(lock, *fields, aliases=…)`` declaration."""

    lock: str
    fields: set[str]
    aliases: set[str]


def parse_guarded_by(node: ast.ClassDef) -> GuardDeclaration | None:
    """The class's ``@guarded_by`` declaration, if syntactically present."""
    for decorator in node.decorator_list:
        if (
            isinstance(decorator, ast.Call)
            and _decorator_name(decorator) == "guarded_by"
        ):
            names = _string_args(decorator)
            if len(names) < 2:
                return None
            aliases: set[str] = set()
            for keyword in decorator.keywords:
                if keyword.arg == "aliases" and isinstance(
                    keyword.value, (ast.Tuple, ast.List)
                ):
                    aliases = {
                        element.value
                        for element in keyword.value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    }
            return GuardDeclaration(names[0], set(names[1:]), aliases)
    return None


def holds_lock(node: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    """The lock named by a ``@holds(...)`` decorator, if present."""
    for decorator in node.decorator_list:
        if (
            isinstance(decorator, ast.Call)
            and _decorator_name(decorator) == "holds"
        ):
            names = _string_args(decorator)
            if names:
                return names[0]
    return None


def walk_shallow(node: ast.AST) -> list[ast.AST]:
    """Every descendant of ``node`` without entering nested scopes.

    A nested function, lambda or class body runs at a different time (or
    never); flow-sensitive facts about the enclosing statement do not
    apply inside it, so checkers scan statement payloads with this
    instead of :func:`ast.walk`.  The scope-introducing node itself is
    yielded (so a payload that *is* a ``FunctionDef`` contributes its
    own name/decorators and nothing else).
    """
    found: list[ast.AST] = []
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        found.append(current)
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Only decorators and defaults evaluate where the def stands.
            stack.extend(current.decorator_list)
            stack.extend(current.args.defaults)
            stack.extend(d for d in current.args.kw_defaults if d is not None)
            continue
        if isinstance(current, ast.Lambda):
            stack.extend(current.args.defaults)
            stack.extend(d for d in current.args.kw_defaults if d is not None)
            continue
        if isinstance(current, ast.ClassDef):
            stack.extend(current.decorator_list)
            stack.extend(current.bases)
            stack.extend(keyword.value for keyword in current.keywords)
            continue
        stack.extend(ast.iter_child_nodes(current))
    return found
