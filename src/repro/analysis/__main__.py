"""CLI for the analysis gate: ``python -m repro.analysis``.

Runs the project lint over ``src/repro`` and, when mypy is importable,
the typed-core check (``mypy.ini`` holds the per-module strictness
table).  Exit status is non-zero if either layer reports a problem —
this is the command the CI ``analysis`` job blocks on, and the one to
run locally before pushing.

Options:
    ``--root PATH``   lint a different package root (defaults to the
                      installed ``repro`` package directory)
    ``--no-mypy``     skip the mypy layer even if mypy is installed
    ``--summary PATH``  also write a markdown findings table (defaults
                      to ``$GITHUB_STEP_SUMMARY`` when set)
    ``--format {text,json,sarif}``  stdout rendering; ``json`` and
                      ``sarif`` print one machine-readable document and
                      move the human status line to stderr
    ``--sarif PATH``  additionally write a SARIF 2.1.0 log (what the CI
                      job uploads as an artifact), whatever ``--format``
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.common import Finding
from repro.analysis.lint import iter_rules, run_lint
from repro.analysis.report import findings_to_json, findings_to_sarif

#: Packages the typed-core gate checks (see mypy.ini for strictness).
MYPY_PACKAGES = (
    "repro.api",
    "repro.service",
    "repro.analysis",
    "repro.cluster",
    "repro.testing",
)

#: Single modules promoted into the strict set (``-m``, not ``-p``).
MYPY_MODULES = ("repro.smt.wire",)


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def _repo_root() -> Path:
    return _package_root().parent.parent


def _render_summary(findings: list[Finding], mypy_status: str) -> str:
    lines = ["## repro.analysis gate", ""]
    if findings:
        lines += [
            f"**{len(findings)} finding(s)**",
            "",
            "| rule | location | message |",
            "| --- | --- | --- |",
        ]
        for finding in findings:
            message = finding.message.replace("|", "\\|")
            lines.append(
                f"| {finding.rule} | `{finding.path}:{finding.line}` | {message} |"
            )
    else:
        lines.append("**Lint clean** — no findings.")
    lines += ["", f"**mypy:** {mypy_status}", "", "Rules checked:", ""]
    for rule, description in iter_rules():
        lines.append(f"- `{rule}` — {description}")
    return "\n".join(lines) + "\n"


def _run_mypy() -> tuple[bool, str]:
    """(ok, status text) for the typed-core gate.

    mypy is a dev-only dependency: when it is not installed (e.g. a bare
    runtime container) the lint layer still runs and the typed gate is
    reported as skipped rather than failing the world.
    """
    if importlib.util.find_spec("mypy") is None:
        return True, "skipped (mypy not installed)"
    command = [
        sys.executable,
        "-m",
        "mypy",
        "--config-file",
        str(_repo_root() / "mypy.ini"),
    ]
    for package in MYPY_PACKAGES:
        command += ["-p", package]
    for module in MYPY_MODULES:
        command += ["-m", module]
    completed = subprocess.run(
        command,
        capture_output=True,
        text=True,
        cwd=_repo_root(),
    )
    output = (completed.stdout + completed.stderr).strip()
    if completed.returncode == 0:
        targets = ", ".join(MYPY_PACKAGES + MYPY_MODULES)
        return True, f"clean ({targets})"
    sys.stderr.write(output + "\n")
    tail = output.splitlines()[-1] if output else "mypy failed"
    return False, f"FAILED — {tail}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Run the repro invariant lint and typed-core gates.",
    )
    parser.add_argument("--root", type=Path, default=None)
    parser.add_argument("--no-mypy", action="store_true")
    parser.add_argument(
        "--summary",
        type=Path,
        default=os.environ.get("GITHUB_STEP_SUMMARY") or None,
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="render",
    )
    parser.add_argument("--sarif", type=Path, default=None)
    options = parser.parse_args(argv)

    findings = run_lint(options.root)

    if options.no_mypy:
        mypy_ok, mypy_status = True, "skipped (--no-mypy)"
    else:
        mypy_ok, mypy_status = _run_mypy()

    if options.render == "json":
        sys.stdout.write(findings_to_json(findings, mypy_status))
    elif options.render == "sarif":
        sys.stdout.write(findings_to_sarif(findings, iter_rules()))
    else:
        for finding in findings:
            print(finding.render())

    if options.sarif is not None:
        options.sarif.write_text(
            findings_to_sarif(findings, iter_rules()), encoding="utf-8"
        )

    if options.summary is not None:
        with open(options.summary, "a", encoding="utf-8") as handle:
            handle.write(_render_summary(findings, mypy_status))

    status = (
        f"repro.analysis: {len(findings)} lint finding(s); mypy: {mypy_status}"
    )
    # Keep stdout a single parseable document for machine formats.
    stream = sys.stderr if options.render != "text" else sys.stdout
    print(status, file=stream)
    return 1 if (findings or not mypy_ok) else 0


if __name__ == "__main__":
    raise SystemExit(main())
