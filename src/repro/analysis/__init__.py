"""Static and dynamic analysis gates for the concurrent engine.

The engine's headline guarantee — byte-identical results across the
sequential, pooled, parallel and HTTP execution paths — rests on
invariants that used to live only in docstrings: wire-form purity at the
worker process boundary, deterministic iteration feeding digests and
scheduler plans, and lock discipline around the engine/queue/memo shared
state.  This package enforces them mechanically:

* :mod:`repro.analysis.lint` — stdlib-``ast`` checkers run over the
  source tree (``python -m repro.analysis``); every rule encodes a
  failure class that has actually bitten a previous PR.
* :mod:`repro.analysis.cfg` / :mod:`repro.analysis.dataflow` — a
  per-function control-flow graph builder and a worklist fixpoint
  solver; the substrate for the flow-sensitive rules.
* :mod:`repro.analysis.flowrules` — the flow-sensitive rule families
  (LOCK02 lock-state dataflow, BLK01 blocking-I/O-under-lock, RES01
  exception-path resource tracking).
* :mod:`repro.analysis.proto` — PROTO01, cluster wire-vocabulary
  conformance against :data:`repro.cluster.protocol.PROTOCOL_OPS`.
* :mod:`repro.analysis.lockcheck` — an opt-in instrumented lock layer
  that records the per-thread acquisition graph at runtime, fails on
  cycles (potential deadlock) and on ``@holds``-annotated methods called
  without their declared lock.  The scheduler/queue/memo/service test
  suites enable it through a pytest fixture.
* :mod:`repro.analysis.annotations` — the ``@holds`` / ``@guarded_by``
  declaration convention both layers consume.

The CI ``analysis`` job runs the lint gate plus mypy (per-module
strictness, see ``mypy.ini``) and blocks on any finding.
"""

from repro.analysis.annotations import guarded_by, holds
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.common import Finding
from repro.analysis.dataflow import FixpointDiverged, Solution, solve
from repro.analysis.lint import run_lint
from repro.analysis.lockcheck import (
    LockDisciplineViolation,
    LockOrderViolation,
    instrument,
)

__all__ = [
    "CFG",
    "Finding",
    "FixpointDiverged",
    "LockDisciplineViolation",
    "LockOrderViolation",
    "Solution",
    "build_cfg",
    "guarded_by",
    "holds",
    "instrument",
    "run_lint",
    "solve",
]
