"""PROTO01 — cluster wire-vocabulary conformance.

The cluster speaks JSON frames tagged with an ``"op"`` key; the
vocabulary is *declared once* in :mod:`repro.cluster.protocol`
(:class:`~repro.cluster.protocol.OpSpec`) and this checker holds every
use to it:

* every dict literal containing an ``"op"`` key in a cluster module is
  a frame-construction site: the op must resolve to a declared name
  (string literal or ``OP_*`` constant), every required field of that
  op must be present in the literal, and the module must be a declared
  *sender* of the op;
* every dispatch comparison against an op expression (a
  ``….get("op")`` call, or a local name assigned from one) must
  compare against declared ops only;
* per module, the set of ops it dispatches on must equal the set of
  ops the registry declares it a *receiver* of — an unhandled declared
  op and a handler for an undeclared op both fail (the coverage check
  runs over all modules at once; see :func:`check_op_coverage`).

The checker is deliberately decoupled from the registry's home: it
takes any mapping of name → spec-like objects plus a constant-name
table, so fixture tests can feed it toy vocabularies.
"""

from __future__ import annotations

import ast
from typing import Iterable, Mapping, Protocol

from repro.analysis.common import Finding


class OpSpecLike(Protocol):
    """Structural view of :class:`repro.cluster.protocol.OpSpec`."""

    name: str
    required: tuple[str, ...]
    senders: tuple[str, ...]
    receivers: tuple[str, ...]


def _resolve_op(
    value: ast.expr, constants: Mapping[str, str]
) -> tuple[str | None, bool]:
    """(op name, resolvable) for an op-valued expression.

    ``resolvable`` is False when the expression is something the checker
    cannot statically evaluate (a variable, a call) — those are reported
    as non-literal ops at construction sites and skipped at dispatch
    sites (comparing an op against e.g. None is legitimate).
    """
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return value.value, True
    if isinstance(value, ast.Name) and value.id in constants:
        return constants[value.id], True
    if isinstance(value, ast.Attribute) and value.attr in constants:
        return constants[value.attr], True
    return None, False


def _is_op_get(node: ast.AST) -> bool:
    """Whether ``node`` is a ``….get("op")`` call."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and len(node.args) >= 1
        and isinstance(node.args[0], ast.Constant)
        and node.args[0].value == "op"
    )


def _comparator_values(node: ast.expr) -> Iterable[ast.expr]:
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return list(node.elts)
    return [node]


class _ProtocolChecker(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        module: str,
        registry: Mapping[str, OpSpecLike],
        constants: Mapping[str, str],
    ) -> None:
        self.path = path
        self.module = module
        self.registry = registry
        self.constants = constants
        self.findings: list[Finding] = []
        self.handled: set[str] = set()
        #: Local names assigned from an ``….get("op")`` expression.
        self._op_names: set[str] = set()

    # -- frame-construction sites -----------------------------------------

    def visit_Dict(self, node: ast.Dict) -> None:
        keys: list[str] = []
        has_splat = False
        op_value: ast.expr | None = None
        for key, value in zip(node.keys, node.values):
            if key is None:
                has_splat = True
                continue
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.append(key.value)
                if key.value == "op":
                    op_value = value
        if op_value is not None:
            self._check_frame(node, op_value, keys, has_splat)
        self.generic_visit(node)

    def _check_frame(
        self,
        node: ast.Dict,
        op_value: ast.expr,
        keys: list[str],
        has_splat: bool,
    ) -> None:
        op, resolvable = _resolve_op(op_value, self.constants)
        if not resolvable:
            self.findings.append(
                Finding(
                    "PROTO01",
                    self.path,
                    node.lineno,
                    "frame op must be a string literal or a declared OP_* "
                    "constant so the vocabulary stays statically checkable",
                )
            )
            return
        spec = self.registry.get(op or "")
        if spec is None:
            self.findings.append(
                Finding(
                    "PROTO01",
                    self.path,
                    node.lineno,
                    f"frame op {op!r} is not declared in the protocol "
                    "registry (repro.cluster.protocol.PROTOCOL_OPS)",
                )
            )
            return
        missing = sorted(set(spec.required) - set(keys))
        if missing and not has_splat:
            self.findings.append(
                Finding(
                    "PROTO01",
                    self.path,
                    node.lineno,
                    f"frame op {op!r} is missing required field(s) "
                    f"{missing} declared by the protocol registry",
                )
            )
        if self.module not in spec.senders:
            self.findings.append(
                Finding(
                    "PROTO01",
                    self.path,
                    node.lineno,
                    f"module {self.module!r} constructs op {op!r} frames "
                    f"but the registry declares senders {list(spec.senders)}",
                )
            )

    # -- dispatch sites ----------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                if _is_op_get(node.value):
                    self._op_names.add(target.id)
                else:
                    self._op_names.discard(target.id)
        self.generic_visit(node)

    def _is_op_expr(self, node: ast.expr) -> bool:
        if _is_op_get(node):
            return True
        return isinstance(node, ast.Name) and node.id in self._op_names

    def visit_Compare(self, node: ast.Compare) -> None:
        sides = [node.left, *node.comparators]
        op_sides = [side for side in sides if self._is_op_expr(side)]
        if op_sides:
            for side in sides:
                if self._is_op_expr(side):
                    continue
                for value in _comparator_values(side):
                    resolved, resolvable = _resolve_op(value, self.constants)
                    if not resolvable:
                        continue  # e.g. `op is None`
                    if resolved not in self.registry:
                        self.findings.append(
                            Finding(
                                "PROTO01",
                                self.path,
                                node.lineno,
                                f"dispatch on op {resolved!r} which is not "
                                "declared in the protocol registry",
                            )
                        )
                        continue
                    self.handled.add(resolved or "")
        self.generic_visit(node)


def check_protocol_usage(
    tree: ast.Module,
    path: str,
    module: str,
    registry: Mapping[str, OpSpecLike],
    constants: Mapping[str, str],
) -> tuple[list[Finding], set[str]]:
    """Per-module PROTO01 checks; returns (findings, handled op names)."""
    checker = _ProtocolChecker(path, module, registry, constants)
    checker.visit(tree)
    return checker.findings, checker.handled


def check_op_coverage(
    handled_by_module: Mapping[str, set[str]],
    module_paths: Mapping[str, str],
    registry: Mapping[str, OpSpecLike],
) -> list[Finding]:
    """Cross-module exhaustiveness: receivers handle exactly their ops."""
    findings: list[Finding] = []
    for module in sorted(handled_by_module):
        declared = {
            name
            for name, spec in registry.items()
            if module in spec.receivers
        }
        handled = handled_by_module[module]
        path = module_paths.get(module, module)
        for name in sorted(declared - handled):
            findings.append(
                Finding(
                    "PROTO01",
                    path,
                    1,
                    f"module {module!r} is a declared receiver of op "
                    f"{name!r} but never dispatches on it — handle it or "
                    "amend the registry",
                )
            )
        for name in sorted(handled - declared):
            findings.append(
                Finding(
                    "PROTO01",
                    path,
                    1,
                    f"module {module!r} dispatches on op {name!r} but the "
                    f"registry does not declare it a receiver — handle the "
                    "op in the declared module or amend the registry",
                )
            )
    return findings
