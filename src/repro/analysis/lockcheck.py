"""Runtime lock-order and lock-discipline instrumentation.

PR 5 left the engine with three concurrency layers — HTTP handler
threads, the queue's runner thread, and the parallel scheduler's
dispatch loop — coordinating through a handful of per-instance locks.
A lock-order inversion between any two of them (thread 1 takes A then B,
thread 2 takes B then A) deadlocks only under the right interleaving,
which a test suite essentially never produces.  This module makes the
*order* observable instead of the deadlock:

* :func:`instrument` swaps the ``threading`` module *reference* of the
  targeted modules for a shim whose ``Lock``/``RLock`` return
  :class:`InstrumentedLock` wrappers.  Only locks created by the
  targeted modules while instrumentation is active are wrapped — the
  rest of the process (pytest internals, executors) keeps real locks.
* Every wrapped acquisition records an edge ``held → wanted`` in a
  global acquisition graph, grouped by the lock's *allocation site* (so
  two engine instances contribute to the same node, which is what makes
  ABBA inversions between instances of the same classes visible).  An
  edge that closes a cycle raises :class:`LockOrderViolation` *before*
  blocking — the test fails instead of hanging.
* :func:`assert_holds` backs the ``@holds`` declaration from
  :mod:`repro.analysis.annotations`: entering an annotated method
  without its declared (instrumented) lock raises
  :class:`LockDisciplineViolation`.

Every violation is also recorded on the active :class:`LockRegistry`, so
the pytest fixture enabling the instrumentation can fail the test even
if the raise was swallowed by application-level error folding (the
engine deliberately converts job exceptions into structured results).
"""

from __future__ import annotations

import os
import sys
import threading
from contextlib import contextmanager
from types import ModuleType
from typing import Any, Iterator

from repro.core.exceptions import ReproError


class LockOrderViolation(ReproError):
    """Acquiring this lock would close a cycle in the acquisition graph."""


class LockDisciplineViolation(ReproError):
    """A ``@holds``-annotated method ran without its declared lock."""


_THIS_FILE = os.path.abspath(__file__)


def _allocation_label() -> str:
    """``file.py:line`` of the first frame outside this module.

    Grouping the acquisition graph by allocation site (rather than lock
    instance) is what lets two *instances* of the same classes witness
    an ABBA inversion: every ``SciductionEngine._state_lock`` maps to
    one node regardless of which engine object owns it.
    """
    frame = sys._getframe(1)
    while frame is not None:
        filename = os.path.abspath(frame.f_code.co_filename)
        if filename != _THIS_FILE:
            return f"{os.path.basename(filename)}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"  # pragma: no cover — there is always a caller


class LockRegistry:
    """Acquisition graph + per-thread held set of one instrumentation run."""

    def __init__(self) -> None:
        #: label → set of labels acquired while it was held.
        self.edges: dict[str, set[str]] = {}
        #: Human-readable records of every violation observed.
        self.violations: list[str] = []
        self._graph_lock = threading.Lock()
        self._tls = threading.local()

    # -- held-set bookkeeping (per thread) ---------------------------------

    def _held(self) -> list[list[Any]]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = self._tls.held = []
        return held

    def holds(self, lock: "InstrumentedLock") -> bool:
        """Whether the calling thread currently holds ``lock``."""
        return any(entry[0] is lock for entry in self._held())

    def held_labels(self) -> list[str]:
        """Labels of the locks the calling thread holds, oldest first."""
        return [entry[1] for entry in self._held()]

    # -- acquisition events ------------------------------------------------

    def before_acquire(self, lock: "InstrumentedLock") -> None:
        """Record ``held → lock`` edges and fail on a cycle, pre-block.

        Called before a *blocking* acquire: raising here turns a
        would-be deadlock into a test failure instead of a hang.
        Reentrant acquisitions (the lock is already held by this
        thread) add no edges.
        """
        held = self._held()
        if any(entry[0] is lock for entry in held):
            return
        target = lock.label
        for entry in held:
            source = entry[1]
            if source == target:
                continue
            with self._graph_lock:
                cycle = self._path_exists(target, source)
                self.edges.setdefault(source, set()).add(target)
            if cycle:
                message = (
                    f"lock-order cycle: acquiring {target!r} while holding "
                    f"{source!r}, but {target!r} → … → {source!r} was "
                    f"previously recorded (held here: {self.held_labels()})"
                )
                self.violations.append(message)
                raise LockOrderViolation(message)

    def _path_exists(self, start: str, goal: str) -> bool:
        """Reachability in the acquisition graph (caller holds the lock)."""
        stack, seen = [start], {start}
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            for child in self.edges.get(node, ()):
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return False

    def on_acquired(self, lock: "InstrumentedLock") -> None:
        held = self._held()
        for entry in held:
            if entry[0] is lock:
                entry[2] += 1
                return
        held.append([lock, lock.label, 1])

    def on_released(self, lock: "InstrumentedLock") -> None:
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index][0] is lock:
                held[index][2] -= 1
                if held[index][2] == 0:
                    del held[index]
                return

    def on_released_all(self, lock: "InstrumentedLock") -> None:
        """Drop every recursion level of ``lock`` (Condition.wait path)."""
        self._tls.held = [e for e in self._held() if e[0] is not lock]

    def record_discipline_violation(self, message: str) -> None:
        self.violations.append(message)


class InstrumentedLock:
    """A ``threading.Lock``/``RLock`` that reports to a :class:`LockRegistry`.

    Implements the full lock protocol plus the private hooks
    ``threading.Condition`` uses (``_is_owned`` / ``_release_save`` /
    ``_acquire_restore``), so instrumented locks compose with conditions
    exactly like real ones — including held-set bookkeeping across
    ``Condition.wait``.
    """

    def __init__(self, registry: LockRegistry, inner: Any, label: str) -> None:
        self._registry = registry
        self._inner = inner
        self.label = label

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if blocking:
            self._registry.before_acquire(self)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._registry.on_acquired(self)
        return acquired

    def release(self) -> None:
        self._registry.on_released(self)
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    # -- threading.Condition integration -----------------------------------

    def _is_owned(self) -> bool:
        if hasattr(self._inner, "_is_owned"):
            return self._inner._is_owned()
        return self._registry.holds(self)

    def _release_save(self) -> Any:
        self._registry.on_released_all(self)
        if hasattr(self._inner, "_release_save"):
            return self._inner._release_save()
        self._inner.release()
        return None

    def _acquire_restore(self, state: Any) -> None:
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(state)
        else:
            self._inner.acquire()
        self._registry.on_acquired(self)


class _ThreadingShim:
    """Stand-in for the ``threading`` module inside instrumented modules.

    ``Lock``/``RLock`` return instrumented wrappers labelled by their
    allocation site; ``Condition`` builds a real condition over an
    instrumented lock; everything else delegates to the real module.
    """

    def __init__(self, registry: LockRegistry) -> None:
        self._registry = registry

    def Lock(self) -> InstrumentedLock:  # noqa: N802 — mirrors threading
        return InstrumentedLock(
            self._registry, threading.Lock(), _allocation_label()
        )

    def RLock(self) -> InstrumentedLock:  # noqa: N802
        return InstrumentedLock(
            self._registry, threading.RLock(), _allocation_label()
        )

    def Condition(self, lock: Any = None) -> "threading.Condition":  # noqa: N802
        return threading.Condition(lock if lock is not None else self.RLock())

    def __getattr__(self, name: str) -> Any:
        return getattr(threading, name)


#: The registry of the innermost active :func:`instrument` block.
_ACTIVE: LockRegistry | None = None


def active() -> bool:
    """Whether lock instrumentation is currently enabled."""
    return _ACTIVE is not None


def active_registry() -> LockRegistry | None:
    """The active registry, or None outside :func:`instrument`."""
    return _ACTIVE


def assert_holds(instance: Any, lock_name: str, where: str) -> None:
    """Verify a ``@holds`` declaration against the live held set.

    Only instrumented locks can be queried; objects built before
    instrumentation (or outside it) are skipped — the declaration then
    remains a statically-checked contract only.
    """
    registry = _ACTIVE
    if registry is None:
        return
    lock = getattr(instance, lock_name, None)
    if not isinstance(lock, InstrumentedLock):
        return
    if not registry.holds(lock):
        message = (
            f"{where} declares @holds({lock_name!r}) but the calling thread "
            f"does not hold it (held: {registry.held_labels()})"
        )
        registry.record_discipline_violation(message)
        raise LockDisciplineViolation(message)


@contextmanager
def instrument(*modules: ModuleType) -> Iterator[LockRegistry]:
    """Instrument lock creation inside ``modules`` for the block's duration.

    Each module's ``threading`` attribute is swapped for the shim, so
    locks the module creates while the block is active are wrapped;
    locks created before (or by untargeted modules) stay real and are
    simply invisible to the analysis.  Nested instrumentation is not
    supported — the innermost registry would steal the outer one's
    events — and raises.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise ReproError("lock instrumentation is already active")
    registry = LockRegistry()
    shim = _ThreadingShim(registry)
    saved: list[tuple[ModuleType, Any]] = []
    for module in modules:
        saved.append((module, module.__dict__.get("threading")))
        setattr(module, "threading", shim)
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = None
        for module, previous in saved:
            setattr(module, "threading", previous)
