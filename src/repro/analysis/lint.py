"""Stdlib-``ast`` invariant lint for the sciduction engine.

Every rule here encodes an invariant that a previous PR shipped a fix
for — the lint exists so the *next* violation is caught at gate time,
not bisected out of a byte-parity failure:

``ND01`` — nondeterministic iteration.  Wire digests, scheduler plans
    and result payloads must not depend on Python ``set`` iteration
    order (or ``vars()``/``globals()``/``os.environ`` order).  Iterating
    a set directly — in a ``for`` loop, a comprehension, ``list()`` /
    ``tuple()`` / ``enumerate()`` / ``iter()``, or ``str.join`` — is
    flagged in deterministic modules, including sets reaching the site
    through module-level constants, class-level constants, and
    set-annotated parameters; wrap the expression in ``sorted(...)``.

``WC01`` — clock reads in deterministic modules.  Wall-clock *and*
    monotonic reads both perturb solver-path determinism unless the
    site is a sanctioned budget/deadline/elapsed read, which must carry
    an inline allowlist entry naming the invariant it satisfies.

``WIRE01`` — process-boundary purity.  Dataclasses that cross the
    worker process boundary (problem specs registered with
    ``register_problem_type``, or classes defining both ``to_dict`` and
    ``from_dict``) must hold only JSON-shaped fields: no callables,
    locks, futures, solver handles or sets.

``LOCK02`` / ``BLK01`` / ``RES01`` — flow-sensitive rules over a
    per-function CFG (see :mod:`repro.analysis.flowrules`): guarded
    fields provably locked on *every* path reaching a mutation, no
    blocking I/O while a lock is held in the service/cluster layers,
    and no closeable resource escaping on an exception edge.

``PROTO01`` — cluster wire-vocabulary conformance (see
    :mod:`repro.analysis.proto`): every ``{"op": …}`` frame and every
    op dispatch checked against the registry declared in
    :mod:`repro.cluster.protocol`, plus cross-module coverage.

``AL00``/``AL01`` — allowlist hygiene.  An
    ``# analysis: allow[RULE] reason`` comment must carry a non-empty
    reason (``AL00``) and must actually suppress a finding on its line
    (``AL01``) — the gate has *zero unexplained allowlist entries* by
    construction.

Suppression: put ``# analysis: allow[ND01] <why this is sound>`` on the
physical line the finding is reported at.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from repro.analysis.common import (
    Finding,
    _decorator_name,
    _self_attribute,
)
from repro.analysis.flowrules import check_flow_rules
from repro.analysis.proto import (
    OpSpecLike,
    check_op_coverage,
    check_protocol_usage,
)

#: Module path prefixes (relative to the scan root, ``/``-separated)
#: subject to the determinism rules ND01/WC01.  The application layers
#: (``ogis``/``gametime``/``hybrid``/``platform``) legitimately consume
#: randomness and measured time; the solver core, engine, and service
#: must not.
DETERMINISTIC_PREFIXES = (
    "smt/",
    "core/",
    "api/",
    "service/",
    "analysis/",
    "cluster/",
)

#: Prefixes where the blocking-I/O and resource rules apply (BLK01 /
#: RES01): the layers that own sockets, files and long-held locks.
IO_SENSITIVE_PREFIXES = (
    "service/",
    "cluster/",
)

#: Cluster modules whose wire usage PROTO01 checks, by relative path.
PROTO_MODULES = {
    "cluster/protocol.py": "protocol",
    "cluster/coordinator.py": "coordinator",
    "cluster/node.py": "node",
    "cluster/memod.py": "memod",
    "cluster/memoclient.py": "memoclient",
}

#: ``module.attr`` clock reads flagged by WC01 (plus bare-name imports).
CLOCK_CALLS = {
    "time": {
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns", "localtime",
        "gmtime", "ctime", "strftime",
    },
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}

#: Annotation atoms accepted in wire-crossing dataclass fields (WIRE01).
WIRE_SAFE_NAMES = {
    "str", "int", "float", "bool", "None", "dict", "list", "tuple",
    "Dict", "List", "Tuple", "Optional", "Union", "Any", "ClassVar",
    "Mapping", "Sequence",
}

_ALLOW_RE = re.compile(r"#\s*analysis:\s*allow\[([A-Z]+\d+)\]\s*(.*?)\s*$")


# ---------------------------------------------------------------------------
# ND01 — nondeterministic iteration
# ---------------------------------------------------------------------------


class _SetTracker(ast.NodeVisitor):
    """Collects ``self.X`` attributes that are sets, per class body."""

    def __init__(self) -> None:
        self.set_attrs: set[str] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            attr = _self_attribute(target)
            if attr is not None and _is_set_expr(node.value, {}, set()):
                self.set_attrs.add(attr)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        attr = _self_attribute(node.target)
        if attr is not None and _annotation_is_set(node.annotation):
            self.set_attrs.add(attr)
        self.generic_visit(node)


def _annotation_is_set(annotation: ast.AST) -> bool:
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in ("Set", "FrozenSet", "AbstractSet")
    return isinstance(annotation, ast.Name) and annotation.id in (
        "set", "frozenset", "Set", "FrozenSet", "AbstractSet",
    )


def _is_set_expr(
    node: ast.AST, local_sets: dict[str, bool], class_set_attrs: set[str]
) -> bool:
    """Whether ``node`` statically evaluates to an unordered collection."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset", "vars", "globals", "locals"):
            return True
    if isinstance(node, ast.Attribute):
        if (
            node.attr == "environ"
            and isinstance(node.value, ast.Name)
            and node.value.id == "os"
        ):
            return True
        attr = _self_attribute(node)
        if attr is not None and attr in class_set_attrs:
            return True
    if isinstance(node, ast.Name):
        return local_sets.get(node.id, False)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)
    ):
        return _is_set_expr(node.left, local_sets, class_set_attrs) or _is_set_expr(
            node.right, local_sets, class_set_attrs
        )
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in (
            "difference", "union", "intersection", "symmetric_difference",
        ):
            return _is_set_expr(node.func.value, local_sets, class_set_attrs)
    return False


def _module_level_sets(tree: ast.Module) -> dict[str, bool]:
    """Module-level names statically known to hold sets, in textual order."""
    known: dict[str, bool] = {}
    for statement in tree.body:
        if isinstance(statement, ast.Assign):
            is_set = _is_set_expr(statement.value, known, set())
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    known[target.id] = is_set
        elif isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            known[statement.target.id] = _annotation_is_set(
                statement.annotation
            ) or (
                statement.value is not None
                and _is_set_expr(statement.value, known, set())
            )
    return known


class _NondeterminismChecker(ast.NodeVisitor):
    """Flags iteration whose order depends on set/hash ordering."""

    def __init__(
        self, path: str, findings: list[Finding], tree: ast.Module
    ) -> None:
        self.path = path
        self.findings = findings
        #: Module-level names known to hold sets — visible in functions
        #: unless shadowed by a local binding or a parameter.
        self.module_sets: dict[str, bool] = _module_level_sets(tree)
        #: Names in the current scope currently known to hold sets.
        self.local_sets: dict[str, bool] = {}
        #: ``self.X`` attributes of the enclosing class known to be sets.
        self.class_set_attrs: set[str] = set()
        #: Generator expressions feeding directly into ``set(...)`` /
        #: ``frozenset(...)`` — unordered-to-unordered, so order-free.
        self._order_free: set[ast.AST] = set()

    def _flag(self, node: ast.AST, context: str) -> None:
        self.findings.append(
            Finding(
                "ND01",
                self.path,
                getattr(node, "lineno", 0),
                f"iteration over an unordered collection ({context}); wrap "
                "in sorted(...) or restructure — hash order must never "
                "reach digests, plans, or wire forms",
            )
        )

    def _is_set(self, node: ast.AST) -> bool:
        return _is_set_expr(node, self.local_sets, self.class_set_attrs)

    # -- scope bookkeeping -------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        tracker = _SetTracker()
        outer = self.class_set_attrs
        class_sets = set()
        for statement in node.body:
            tracker.visit(statement)
            # Class-level set constants (KINDS = frozenset(...)) are
            # reached as self.KINDS from methods.
            if isinstance(statement, ast.Assign):
                if _is_set_expr(statement.value, self.module_sets, set()):
                    class_sets.update(
                        target.id
                        for target in statement.targets
                        if isinstance(target, ast.Name)
                    )
            elif isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                if _annotation_is_set(statement.annotation) or (
                    statement.value is not None
                    and _is_set_expr(statement.value, self.module_sets, set())
                ):
                    class_sets.add(statement.target.id)
        self.class_set_attrs = tracker.set_attrs | class_sets
        self.generic_visit(node)
        self.class_set_attrs = outer

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        outer = self.local_sets
        # A function sees module-level set constants; its parameters
        # shadow them (and set-annotated parameters are sets).
        scope = dict(self.module_sets)
        arguments = node.args
        for arg in (
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
            *([arguments.vararg] if arguments.vararg else []),
            *([arguments.kwarg] if arguments.kwarg else []),
        ):
            scope[arg.arg] = arg.annotation is not None and _annotation_is_set(
                arg.annotation
            )
        self.local_sets = scope
        self.generic_visit(node)
        self.local_sets = outer

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self._is_set(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.local_sets[target.id] = is_set
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            self.local_sets[node.target.id] = _annotation_is_set(
                node.annotation
            ) or (node.value is not None and self._is_set(node.value))
        self.generic_visit(node)

    # -- iteration contexts ------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if self._is_set(node.iter):
            self._flag(node.iter, "for loop")
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.AST) -> None:
        if node not in self._order_free:
            for generator in getattr(node, "generators", []):
                if self._is_set(generator.iter):
                    self._flag(generator.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set from a set is order-free; only materializing an
        # *ordered* sequence from one is flagged.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in ("set", "frozenset")
            and node.args
            and isinstance(node.args[0], ast.GeneratorExp)
        ):
            # Materializing an unordered collection from an unordered
            # source — mirror of the SetComp exemption.
            self._order_free.add(node.args[0])
        if (
            isinstance(func, ast.Name)
            and func.id in ("list", "tuple", "enumerate", "iter")
            and node.args
            and self._is_set(node.args[0])
        ):
            self._flag(node, f"{func.id}()")
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and node.args
            and self._is_set(node.args[0])
        ):
            self._flag(node, "str.join")
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# WC01 — clock reads
# ---------------------------------------------------------------------------


class _ClockChecker(ast.NodeVisitor):
    """Flags clock reads; sanctioned deadline sites carry allow entries."""

    def __init__(self, path: str, findings: list[Finding]) -> None:
        self.path = path
        self.findings = findings
        #: Bare names bound to clock functions by ``from time import …``.
        self.clock_names: set[str] = set()

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        functions = CLOCK_CALLS.get(node.module or "")
        if functions:
            for alias in node.names:
                if alias.name in functions:
                    self.clock_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        flagged: str | None = None
        if isinstance(func, ast.Attribute):
            base = func.value
            base_name = None
            if isinstance(base, ast.Name):
                base_name = base.id
            elif isinstance(base, ast.Attribute):  # datetime.datetime.now
                base_name = base.attr
            if base_name in CLOCK_CALLS and func.attr in CLOCK_CALLS[base_name]:
                flagged = f"{base_name}.{func.attr}"
        elif isinstance(func, ast.Name) and func.id in self.clock_names:
            flagged = func.id
        if flagged is not None:
            self.findings.append(
                Finding(
                    "WC01",
                    self.path,
                    node.lineno,
                    f"clock read {flagged}() in a deterministic module; "
                    "only sanctioned budget/deadline/elapsed sites may read "
                    "the clock — allow with `# analysis: allow[WC01] <why>`",
                )
            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# WIRE01 — process-boundary purity
# ---------------------------------------------------------------------------


def _annotation_names(annotation: ast.AST) -> Iterator[str]:
    """Every atom name referenced by an annotation expression."""
    if isinstance(annotation, ast.Constant):
        if isinstance(annotation.value, str):
            try:
                yield from _annotation_names(
                    ast.parse(annotation.value, mode="eval").body
                )
            except SyntaxError:
                yield annotation.value
        elif annotation.value is None:
            yield "None"
        return
    if isinstance(annotation, ast.Name):
        yield annotation.id
        return
    if isinstance(annotation, ast.Attribute):
        yield annotation.attr
        return
    if isinstance(annotation, ast.Subscript):
        yield from _annotation_names(annotation.value)
        yield from _annotation_names(annotation.slice)
        return
    if isinstance(annotation, ast.Tuple):
        for element in annotation.elts:
            yield from _annotation_names(element)
        return
    if isinstance(annotation, ast.BinOp):
        yield from _annotation_names(annotation.left)
        yield from _annotation_names(annotation.right)
        return


def _is_classvar(annotation: ast.AST) -> bool:
    names = list(_annotation_names(annotation))
    return bool(names) and names[0] == "ClassVar"


class _WireChecker(ast.NodeVisitor):
    """Checks wire-crossing dataclasses for non-JSON field types."""

    def __init__(self, path: str, findings: list[Finding]) -> None:
        self.path = path
        self.findings = findings

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._is_wire_class(node):
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                if not isinstance(statement.target, ast.Name):
                    continue
                if _is_classvar(statement.annotation):
                    continue
                bad = sorted(
                    name
                    for name in _annotation_names(statement.annotation)
                    if name not in WIRE_SAFE_NAMES
                )
                if bad:
                    self.findings.append(
                        Finding(
                            "WIRE01",
                            self.path,
                            statement.lineno,
                            f"field {statement.target.id!r} of wire-crossing "
                            f"class {node.name!r} has non-JSON type atoms "
                            f"{bad}; specs/configs must ship as pure wire "
                            "dictionaries across the worker boundary",
                        )
                    )
        self.generic_visit(node)

    @staticmethod
    def _is_wire_class(node: ast.ClassDef) -> bool:
        if any(
            _decorator_name(decorator) == "register_problem_type"
            for decorator in node.decorator_list
        ):
            return True
        methods = {
            statement.name
            for statement in node.body
            if isinstance(statement, ast.FunctionDef)
        }
        return "to_dict" in methods and "from_dict" in methods


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def _parse_allows(source: str, path: str) -> tuple[dict[int, str], list[Finding]]:
    """Allowlist entries by line, plus AL00 findings for missing reasons.

    Uses ``tokenize`` so only actual comments count — the allow pattern
    appearing inside a string literal or docstring (e.g. in this very
    module's documentation) is not an allowlist entry.
    """
    allows: dict[int, str] = {}
    findings: list[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return {}, []  # the ast parse reports the syntax error
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _ALLOW_RE.search(token.string)
        if match is None:
            continue
        number = token.start[0]
        rule, reason = match.group(1), match.group(2)
        if not reason:
            findings.append(
                Finding(
                    "AL00",
                    path,
                    number,
                    f"allowlist entry for {rule} has no reason; every entry "
                    "must name the invariant it satisfies",
                )
            )
            continue
        allows[number] = rule
    return allows, findings


def lint_source(
    source: str,
    path: str,
    deterministic: bool = True,
    io_sensitive: bool = True,
    proto_module: str | None = None,
    proto_registry: Mapping[str, OpSpecLike] | None = None,
    proto_constants: Mapping[str, str] | None = None,
    handled_ops: dict[str, set[str]] | None = None,
) -> list[Finding]:
    """Lint one module's source text; ``path`` is used for reporting.

    ``deterministic`` gates ND01/WC01 and ``io_sensitive`` gates
    BLK01/RES01 (the directory-driven defaults come from
    :func:`run_lint`).  When ``proto_module`` names a cluster module and
    a registry is supplied, PROTO01 construction/dispatch checks run;
    the ops the module dispatches on are recorded into ``handled_ops``
    for the cross-module coverage pass.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [Finding("SYN", path, error.lineno or 0, f"syntax error: {error.msg}")]
    raw: list[Finding] = []
    if deterministic:
        _NondeterminismChecker(path, raw, tree).visit(tree)
        _ClockChecker(path, raw).visit(tree)
    _WireChecker(path, raw).visit(tree)
    raw.extend(check_flow_rules(tree, path, io_sensitive))
    if proto_module is not None and proto_registry is not None:
        proto_findings, handled = check_protocol_usage(
            tree, path, proto_module, proto_registry, proto_constants or {}
        )
        raw.extend(proto_findings)
        if handled_ops is not None:
            handled_ops.setdefault(proto_module, set()).update(handled)
    allows, findings = _parse_allows(source, path)
    used: set[int] = set()
    for finding in raw:
        if allows.get(finding.line) == finding.rule:
            used.add(finding.line)
            continue
        findings.append(finding)
    for line, rule in allows.items():
        if line not in used:
            findings.append(
                Finding(
                    "AL01",
                    path,
                    line,
                    f"stale allowlist entry for {rule}: it suppresses no "
                    "finding on this line — remove it",
                )
            )
    return findings


def _protocol_registry() -> tuple[
    Mapping[str, OpSpecLike] | None, Mapping[str, str] | None
]:
    """The declared cluster vocabulary, if importable."""
    try:
        from repro.cluster import protocol as cluster_protocol
    except Exception:  # pragma: no cover — broken tree mid-refactor
        return None, None
    return cluster_protocol.OPS_BY_NAME, cluster_protocol.OP_CONSTANTS


def run_lint(root: Path | None = None) -> list[Finding]:
    """Lint every module under ``root`` (default: the installed package).

    Returns findings sorted by path, line, rule.
    """
    if root is None:
        root = Path(__file__).resolve().parent.parent
    registry, constants = _protocol_registry()
    findings: list[Finding] = []
    handled_ops: dict[str, set[str]] = {}
    module_paths: dict[str, str] = {}
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        proto_module = PROTO_MODULES.get(relative) if registry else None
        if proto_module is not None:
            module_paths[proto_module] = relative
        findings.extend(
            lint_source(
                path.read_text(encoding="utf-8"),
                relative,
                deterministic=relative.startswith(DETERMINISTIC_PREFIXES),
                io_sensitive=relative.startswith(IO_SENSITIVE_PREFIXES),
                proto_module=proto_module,
                proto_registry=registry,
                proto_constants=constants,
                handled_ops=handled_ops,
            )
        )
    if registry is not None and handled_ops:
        findings.extend(check_op_coverage(handled_ops, module_paths, registry))
    findings.sort(key=lambda finding: (finding.path, finding.line, finding.rule))
    return findings


def iter_rules() -> Iterable[tuple[str, str]]:
    """(rule, one-line description) pairs for reporting."""
    return (
        ("ND01", "nondeterministic iteration over unordered collections"),
        ("WC01", "clock read outside sanctioned budget/deadline sites"),
        ("WIRE01", "non-JSON field in a wire-crossing dataclass"),
        ("LOCK02", "guarded mutation reachable without the declared lock"),
        ("BLK01", "blocking I/O while holding a lock"),
        ("RES01", "closeable resource escaping without close()"),
        ("PROTO01", "cluster frame/dispatch outside the declared registry"),
        ("AL00", "allowlist entry without a reason"),
        ("AL01", "stale allowlist entry"),
    )
