"""Intra-procedural control-flow graphs over the stdlib AST.

One :class:`CFG` per function body.  Nodes are statements plus a few
synthetic points; edges are ``(target, is_exception)`` pairs so a
dataflow analysis can propagate *different* states along the normal and
the exceptional out-edge of the same statement (see
:mod:`repro.analysis.dataflow`).

Shape of the graph:

* ``entry`` / ``exit`` / ``raise`` — one each per function.  ``exit``
  collects every normal completion (falling off the end, ``return``);
  ``raise`` collects every exception that escapes the function.
* every simple statement becomes one ``stmt`` node carrying the
  statement as its payload, with a normal edge to its successor and an
  exception edge to the innermost active handler target (an except
  dispatch, a ``with`` cleanup, a ``finally`` copy, or ``raise``).
* ``if``/``while``/``for`` headers become ``stmt`` nodes whose payload
  is just the test/iterator *expression* — body statements get their
  own nodes, so a checker scanning a payload never sees a nested body.
* ``with`` produces a ``with_enter`` node (context expressions; its
  exception edge models ``__enter__`` raising *before* acquisition), a
  normal ``with_exit`` on the fall-through path, and a second
  ``with_exit`` cleanup node that exceptional edges from the body route
  through — so an analysis sees the lock released on both paths.
  ``break``/``continue``/``return`` out of a ``with`` are routed
  through synthetic ``with_exit`` nodes for every level they unwind.
* ``try`` builds a ``catch`` dispatch node feeding each handler's
  ``handler`` node (payload: the handler's type expression).  When any
  handler exists, exceptions from the body are assumed caught — a
  deliberate approximation, documented in ``docs/ANALYSIS.md``, that
  keeps the close-and-reraise idiom clean under RES01.  ``finally`` is
  duplicated: one copy on the normal path, one on the exceptional path
  (so a release in ``finally`` is seen by both).

Known approximations (all conservative for the rules built on top):
``return``/``break`` inside ``try/finally`` skip the ``finally`` copy;
``match`` statements are treated as opaque single statements.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Node kinds; checkers dispatch on these.
KIND_ENTRY = "entry"
KIND_EXIT = "exit"
KIND_RAISE = "raise"
KIND_STMT = "stmt"
KIND_WITH_ENTER = "with_enter"
KIND_WITH_EXIT = "with_exit"
KIND_CATCH = "catch"
KIND_HANDLER = "handler"
KIND_FINALLY = "finally"


@dataclass
class CFGNode:
    """One control-flow point; ``payload`` is the AST to scan, if any."""

    index: int
    kind: str
    payload: ast.AST | None = None
    line: int = 0


@dataclass
class CFG:
    """A function's control-flow graph (entry/exit/raise are fixed)."""

    nodes: list[CFGNode] = field(default_factory=list)
    #: Per-node successor list: ``(target index, is_exception_edge)``.
    edges: list[list[tuple[int, bool]]] = field(default_factory=list)
    entry: int = 0
    exit: int = 1
    raise_exit: int = 2


@dataclass
class _LoopFrame:
    continue_target: int
    with_depth: int
    breaks: list[int] = field(default_factory=list)


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self._with_stack: list[ast.With | ast.AsyncWith] = []
        self._loops: list[_LoopFrame] = []

    # -- graph primitives --------------------------------------------------

    def _node(self, kind: str, payload: ast.AST | None = None) -> int:
        index = len(self.cfg.nodes)
        line = getattr(payload, "lineno", 0) if payload is not None else 0
        self.cfg.nodes.append(CFGNode(index, kind, payload, line))
        self.cfg.edges.append([])
        return index

    def _edge(self, source: int, target: int, exceptional: bool = False) -> None:
        self.cfg.edges[source].append((target, exceptional))

    # -- construction ------------------------------------------------------

    def build(self, body: list[ast.stmt]) -> CFG:
        entry = self._node(KIND_ENTRY)
        self.cfg.entry = entry
        self.cfg.exit = self._node(KIND_EXIT)
        self.cfg.raise_exit = self._node(KIND_RAISE)
        outs = self._body(body, [entry], self.cfg.raise_exit)
        for out in outs:
            self._edge(out, self.cfg.exit)
        return self.cfg

    def _body(
        self, statements: list[ast.stmt], preds: list[int], exc: int
    ) -> list[int]:
        for statement in statements:
            preds = self._stmt(statement, preds, exc)
        return preds

    def _unwind(self, preds: list[int], to_depth: int) -> list[int]:
        """Route ``preds`` through ``with_exit`` nodes down to ``to_depth``."""
        for context in reversed(self._with_stack[to_depth:]):
            node = self._node(KIND_WITH_EXIT, context)
            for pred in preds:
                self._edge(pred, node)
            preds = [node]
        return preds

    def _stmt(self, statement: ast.stmt, preds: list[int], exc: int) -> list[int]:
        if isinstance(statement, ast.If):
            return self._if(statement, preds, exc)
        if isinstance(statement, ast.While):
            return self._loop(statement.test, statement.body, statement.orelse, preds, exc)
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            return self._loop(statement.iter, statement.body, statement.orelse, preds, exc)
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            return self._with(statement, preds, exc)
        if isinstance(statement, ast.Try):
            return self._try(statement, preds, exc)
        if isinstance(statement, ast.Return):
            node = self._simple(statement, preds, exc)
            outs = self._unwind([node], 0)
            for out in outs:
                self._edge(out, self.cfg.exit)
            return []
        if isinstance(statement, ast.Raise):
            node = self._node(KIND_STMT, statement)
            for pred in preds:
                self._edge(pred, node)
            self._edge(node, exc, exceptional=True)
            return []
        if isinstance(statement, ast.Break):
            frame = self._loops[-1]
            node = self._node(KIND_STMT, statement)
            for pred in preds:
                self._edge(pred, node)
            frame.breaks.extend(self._unwind([node], frame.with_depth))
            return []
        if isinstance(statement, ast.Continue):
            frame = self._loops[-1]
            node = self._node(KIND_STMT, statement)
            for pred in preds:
                self._edge(pred, node)
            for out in self._unwind([node], frame.with_depth):
                self._edge(out, frame.continue_target)
            return []
        return [self._simple(statement, preds, exc)]

    def _simple(self, payload: ast.AST, preds: list[int], exc: int) -> int:
        node = self._node(KIND_STMT, payload)
        for pred in preds:
            self._edge(pred, node)
        self._edge(node, exc, exceptional=True)
        return node

    def _if(self, statement: ast.If, preds: list[int], exc: int) -> list[int]:
        test = self._simple(statement.test, preds, exc)
        then_outs = self._body(statement.body, [test], exc)
        if statement.orelse:
            else_outs = self._body(statement.orelse, [test], exc)
        else:
            else_outs = [test]
        return then_outs + else_outs

    def _loop(
        self,
        header: ast.expr,
        body: list[ast.stmt],
        orelse: list[ast.stmt],
        preds: list[int],
        exc: int,
    ) -> list[int]:
        head = self._simple(header, preds, exc)
        self._loops.append(_LoopFrame(head, len(self._with_stack)))
        body_outs = self._body(body, [head], exc)
        for out in body_outs:
            self._edge(out, head)
        frame = self._loops.pop()
        if orelse:
            after = self._body(orelse, [head], exc)
        else:
            after = [head]
        return after + frame.breaks

    def _with(
        self, statement: ast.With | ast.AsyncWith, preds: list[int], exc: int
    ) -> list[int]:
        enter = self._node(KIND_WITH_ENTER, statement)
        for pred in preds:
            self._edge(pred, enter)
        # __enter__ raising: the context was never acquired.
        self._edge(enter, exc, exceptional=True)
        cleanup = self._node(KIND_WITH_EXIT, statement)
        # The cleanup's *normal* out-state (context released) continues
        # the exception's propagation toward the enclosing target.
        self._edge(cleanup, exc)
        self._with_stack.append(statement)
        body_outs = self._body(statement.body, [enter], cleanup)
        self._with_stack.pop()
        exit_node = self._node(KIND_WITH_EXIT, statement)
        for out in body_outs:
            self._edge(out, exit_node)
        return [exit_node]

    def _try(self, statement: ast.Try, preds: list[int], exc: int) -> list[int]:
        if statement.finalbody:
            # Exceptional copy of finally: entered from anything raising
            # past the handlers, exits into the enclosing target.
            finally_exc = self._node(KIND_FINALLY, statement)
            finally_exc_outs = self._body(statement.finalbody, [finally_exc], exc)
            for out in finally_exc_outs:
                self._edge(out, exc)
            escape = finally_exc
        else:
            escape = exc
        if statement.handlers:
            catch = self._node(KIND_CATCH)
            body_outs = self._body(statement.body, preds, catch)
            if statement.orelse:
                body_outs = self._body(statement.orelse, body_outs, escape)
            handler_outs: list[int] = []
            for handler in statement.handlers:
                entry = self._node(KIND_HANDLER, handler.type)
                self._edge(catch, entry)
                handler_outs.extend(self._body(handler.body, [entry], escape))
            all_outs = body_outs + handler_outs
        else:
            body_outs = self._body(statement.body, preds, escape)
            if statement.orelse:
                body_outs = self._body(statement.orelse, body_outs, escape)
            all_outs = body_outs
        if statement.finalbody:
            finally_normal = self._node(KIND_FINALLY, statement)
            for out in all_outs:
                self._edge(out, finally_normal)
            return self._body(statement.finalbody, [finally_normal], exc)
        return all_outs


def build_cfg(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
) -> CFG:
    """Build the CFG for one function's body."""
    return _Builder().build(function.body)
