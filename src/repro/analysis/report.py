"""Machine-readable renderings of lint findings (JSON and SARIF 2.1.0).

The text rendering in :meth:`repro.analysis.common.Finding.render` is
for humans at a terminal; CI wants structure.  ``--format=json`` emits a
stable single-object document for scripting, and ``--format=sarif`` (or
``--sarif PATH``) emits a minimal SARIF 2.1.0 log — the interchange
format code-scanning UIs ingest — with one reporting rule per lint rule
and one result per finding.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.analysis.common import Finding

#: Published SARIF 2.1.0 schema location (for the ``$schema`` key).
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def findings_to_json(
    findings: list[Finding], mypy_status: str | None = None
) -> str:
    """One JSON object: ``{"findings": [...], "count": N, ...}``."""
    document: dict[str, object] = {
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
            }
            for finding in findings
        ],
        "count": len(findings),
    }
    if mypy_status is not None:
        document["mypy"] = mypy_status
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def findings_to_sarif(
    findings: list[Finding],
    rules: Iterable[tuple[str, str]],
    path_prefix: str = "src/repro/",
) -> str:
    """A SARIF 2.1.0 log; ``path_prefix`` maps lint paths to repo paths."""
    driver = {
        "name": "repro.analysis",
        "informationUri": "docs/ANALYSIS.md",
        "rules": [
            {
                "id": rule,
                "shortDescription": {"text": description},
            }
            for rule, description in rules
        ],
    }
    results = [
        {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": path_prefix + finding.path,
                        },
                        "region": {"startLine": max(1, finding.line)},
                    }
                }
            ],
        }
        for finding in findings
    ]
    document = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{"tool": {"driver": driver}, "results": results}],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
