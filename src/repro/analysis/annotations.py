"""Lock-discipline declarations consumed by the lint and lockcheck layers.

The engine's shared mutable state (the job list of a
:class:`~repro.api.engine.SciductionEngine`, the pending queue of a
:class:`~repro.service.queue.JobQueue`, the entry store of a
:class:`~repro.api.memo.SharedCheckMemo`) is guarded by per-instance
locks, but nothing used to *declare* that relationship — a method
mutating the state without the lock compiled, imported and usually even
passed the tests.  Two small declarations close the gap:

* ``@guarded_by(lock, *fields, aliases=())`` on a class states that the
  listed attributes must only be mutated while ``self.<lock>`` is held.
  The static checker (:mod:`repro.analysis.flowrules`, rule ``LOCK02``)
  verifies every method by dataflow: a mutation of a guarded field must
  have the lock in the must-held set on *every* path reaching it —
  acquired via ``with self.<lock>:`` (or an alias such as a
  ``Condition`` wrapping the same lock), an explicit ``acquire()``, or
  a ``@holds`` declaration on the method.
* ``@holds(lock)`` on a method states the *caller* provides the lock.
  Statically it exempts the method from the lexical check; dynamically,
  while :func:`repro.analysis.lockcheck.instrument` is active, entering
  the method without the declared lock held raises
  :class:`~repro.analysis.lockcheck.LockDisciplineViolation`.

Both declarations are inert outside the analysis gates: ``guarded_by``
only records metadata on the class, and ``holds`` adds one module-flag
check per call.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Iterable, TypeVar

_ClassT = TypeVar("_ClassT", bound=type)
_FuncT = TypeVar("_FuncT", bound=Callable[..., Any])

#: Metadata attribute set by :func:`guarded_by` (class) — maps each
#: guarded field name to the declared lock attribute.
GUARDED_ATTR = "__analysis_guarded_by__"
#: Metadata attribute set by :func:`guarded_by` (class) — lock aliases.
ALIASES_ATTR = "__analysis_lock_aliases__"
#: Metadata attribute set by :func:`holds` (function) — the lock name.
HOLDS_ATTR = "__analysis_holds__"


def guarded_by(
    lock: str, *fields: str, aliases: Iterable[str] = ()
) -> Callable[[_ClassT], _ClassT]:
    """Class decorator declaring ``fields`` guarded by ``self.<lock>``.

    Args:
        lock: attribute name of the guarding lock (e.g. ``"_state_lock"``).
        fields: attribute names that must only be mutated under the lock.
        aliases: attribute names that also count as holding the lock —
            e.g. a ``threading.Condition`` constructed over the same
            lock object, whose ``with`` block acquires it.
    """
    if not fields:
        raise ValueError("guarded_by requires at least one guarded field")

    def decorate(cls: _ClassT) -> _ClassT:
        guarded = dict(getattr(cls, GUARDED_ATTR, {}))
        guarded.update({field: lock for field in fields})
        setattr(cls, GUARDED_ATTR, guarded)
        setattr(cls, ALIASES_ATTR, tuple(aliases))
        return cls

    return decorate


def holds(lock: str) -> Callable[[_FuncT], _FuncT]:
    """Method decorator declaring that the caller holds ``self.<lock>``.

    The static ``LOCK02`` rule seeds the method's entry lock-state with
    the declared lock, so guarded mutations inside check out without a
    ``with`` block; at runtime, while lock instrumentation is active,
    the declaration is *verified* on entry — calling the method without
    the lock raises instead of silently racing.
    """

    def decorate(func: _FuncT) -> _FuncT:
        @functools.wraps(func)
        def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
            # Import at call time so annotations stay importable even if
            # the lockcheck layer is stripped from a deployment.
            from repro.analysis import lockcheck

            if lockcheck.active():
                lockcheck.assert_holds(self, lock, func.__qualname__)
            return func(self, *args, **kwargs)

        setattr(wrapper, HOLDS_ATTR, lock)
        return wrapper  # type: ignore[return-value]

    return decorate
