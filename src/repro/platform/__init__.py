"""Simulated embedded platform (the environment ``E`` of Section 3).

A RISC-style ISA, a task-language compiler, set-associative instruction and
data caches, an in-order pipeline timing model, a cycle-level simulator and
an end-to-end measurement harness — standing in for the SimIt-ARM /
StrongARM-1100 testbed used by the paper.
"""

from repro.platform.cache import Cache, CacheConfig, CacheStatistics
from repro.platform.compiler import Compiler, compile_program
from repro.platform.isa import (
    Binary,
    Instruction,
    Opcode,
    validate_binary,
)
from repro.platform.measurement import (
    MeasurementHarness,
    PerturbationModel,
    TimingOracle,
)
from repro.platform.pipeline import PipelineConfig, PipelineModel, PipelineState
from repro.platform.processor import PlatformConfig, Processor, RunResult

__all__ = [
    "Binary",
    "Cache",
    "CacheConfig",
    "CacheStatistics",
    "Compiler",
    "Instruction",
    "MeasurementHarness",
    "Opcode",
    "PerturbationModel",
    "PipelineConfig",
    "PipelineModel",
    "PipelineState",
    "PlatformConfig",
    "Processor",
    "RunResult",
    "TimingOracle",
    "compile_program",
    "validate_binary",
]
