"""Cycle-level processor simulator (the platform / environment ``E``).

Stands in for the SimIt-ARM + StrongARM-1100 testbed of the paper: an
in-order pipelined core with split instruction and data caches, executed
functionally with a cycle cost accumulated per instruction.  The simulator
is deterministic given the program, its inputs, and the starting
environment state (cache contents), which is exactly the setting of the
timing-analysis problem ⟨TA⟩ ("a fixed starting state of E").

End-to-end measurements — the only interface GameTime uses — are provided
by :class:`repro.platform.measurement.MeasurementHarness`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.exceptions import SimulationError
from repro.platform.cache import Cache, CacheConfig
from repro.platform.isa import Binary, Instruction, Opcode
from repro.platform.pipeline import PipelineConfig, PipelineModel


@dataclass(frozen=True)
class PlatformConfig:
    """Full configuration of the simulated platform.

    Attributes:
        instruction_cache: geometry/timing of the I-cache.
        data_cache: geometry/timing of the D-cache.
        pipeline: pipeline timing parameters.
        instruction_base_address: address of the first instruction (used
            for I-cache indexing; one word per instruction).
        max_instructions: execution step budget (guards against runaway
            loops in malformed binaries).
    """

    instruction_cache: CacheConfig = field(default_factory=lambda: CacheConfig(
        line_size_words=4, num_sets=32, associativity=2, hit_latency=0, miss_penalty=8
    ))
    data_cache: CacheConfig = field(default_factory=lambda: CacheConfig(
        line_size_words=4, num_sets=16, associativity=2, hit_latency=0, miss_penalty=10
    ))
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    instruction_base_address: int = 4096
    max_instructions: int = 1_000_000


@dataclass
class RunResult:
    """Outcome of one program execution on the platform.

    Attributes:
        cycles: total cycle count (the end-to-end measurement).
        instructions_executed: dynamic instruction count.
        final_memory: data memory contents (by variable name).
        outputs: values of the program's output variables.
        icache_misses: instruction-cache misses during the run.
        dcache_misses: data-cache misses during the run.
    """

    cycles: int
    instructions_executed: int
    final_memory: dict[str, int]
    outputs: dict[str, int]
    icache_misses: int
    dcache_misses: int


class Processor:
    """The simulated embedded processor.

    The environment state consists of the instruction- and data-cache
    contents; :meth:`flush_caches`, :meth:`warm_caches`,
    :meth:`snapshot_environment` and :meth:`restore_environment` manipulate
    it so experiments can control the starting state exactly.
    """

    def __init__(self, config: PlatformConfig | None = None):
        self.config = config or PlatformConfig()
        self.instruction_cache = Cache(self.config.instruction_cache)
        self.data_cache = Cache(self.config.data_cache)
        self.pipeline = PipelineModel(self.config.pipeline)

    # -- environment state management ---------------------------------------

    def flush_caches(self) -> None:
        """Put the platform in the cold-cache environment state."""
        self.instruction_cache.flush()
        self.data_cache.flush()

    def warm_caches(self, binary: Binary) -> None:
        """Pre-load instruction and data caches with the program's footprint."""
        base = self.config.instruction_base_address
        self.instruction_cache.warm(
            base + index for index in range(len(binary.instructions))
        )
        self.data_cache.warm(binary.variable_addresses.values())

    def snapshot_environment(self) -> dict[str, list[list[int]]]:
        """Capture the environment (cache) state."""
        return {
            "icache": self.instruction_cache.snapshot(),
            "dcache": self.data_cache.snapshot(),
        }

    def restore_environment(self, snapshot: Mapping[str, list[list[int]]]) -> None:
        """Restore an environment captured with :meth:`snapshot_environment`."""
        self.instruction_cache.restore(snapshot["icache"])
        self.data_cache.restore(snapshot["dcache"])

    # -- execution -------------------------------------------------------------

    def run(
        self,
        binary: Binary,
        inputs: Mapping[str, int] | Sequence[int],
    ) -> RunResult:
        """Execute ``binary`` on ``inputs`` from the current environment state.

        Args:
            binary: the compiled program.
            inputs: parameter values, by name or in parameter order.

        Returns:
            A :class:`RunResult` with the cycle count and functional outputs.
        """
        if not isinstance(inputs, Mapping):
            values = list(inputs)
            if len(values) != len(binary.parameters):
                raise SimulationError(
                    f"expected {len(binary.parameters)} inputs, got {len(values)}"
                )
            inputs = dict(zip(binary.parameters, values))
        mask = (1 << binary.word_width) - 1
        memory: dict[int, int] = {
            address: 0 for address in binary.variable_addresses.values()
        }
        for name in binary.parameters:
            if name not in inputs:
                raise SimulationError(f"missing input {name!r}")
            memory[binary.variable_addresses[name]] = inputs[name] & mask
        registers = [0] * max(binary.num_registers, 1)
        self.pipeline.reset()
        icache_misses_before = self.instruction_cache.statistics.misses
        dcache_misses_before = self.data_cache.statistics.misses

        cycles = 0
        executed = 0
        program_counter = 0
        instruction_base = self.config.instruction_base_address
        while True:
            if executed >= self.config.max_instructions:
                raise SimulationError("instruction budget exceeded (runaway loop?)")
            if program_counter < 0 or program_counter >= len(binary.instructions):
                raise SimulationError(f"program counter out of range: {program_counter}")
            instruction = binary.instructions[program_counter]
            # Instruction fetch through the I-cache.
            cycles += self.instruction_cache.access(instruction_base + program_counter)
            executed += 1
            next_pc = program_counter + 1
            branch_taken = False
            opcode = instruction.opcode

            if opcode is Opcode.HALT:
                cycles += self.pipeline.cost(instruction)
                break
            if opcode is Opcode.LOADI:
                registers[instruction.rd] = instruction.immediate & mask
            elif opcode is Opcode.LOAD:
                cycles += self.data_cache.access(instruction.address)
                registers[instruction.rd] = memory.get(instruction.address, 0)
            elif opcode is Opcode.STORE:
                cycles += self.data_cache.access(instruction.address)
                memory[instruction.address] = registers[instruction.rd] & mask
            elif opcode is Opcode.MOVE:
                registers[instruction.rd] = registers[instruction.ra]
            elif opcode is Opcode.NOT:
                registers[instruction.rd] = (~registers[instruction.ra]) & mask
            elif opcode is Opcode.NEG:
                registers[instruction.rd] = (-registers[instruction.ra]) & mask
            elif opcode in {Opcode.BEQZ, Opcode.BNEZ}:
                value = registers[instruction.rd]
                take = (value == 0) if opcode is Opcode.BEQZ else (value != 0)
                if take:
                    next_pc = instruction.target
                    branch_taken = True
            elif opcode is Opcode.JUMP:
                next_pc = instruction.target
                branch_taken = True
            else:
                left = registers[instruction.ra]
                right = registers[instruction.rb]
                registers[instruction.rd] = self._alu(
                    opcode, left, right, binary.word_width
                ) & mask
            cycles += self.pipeline.cost(instruction, branch_taken=branch_taken)
            program_counter = next_pc

        final_memory = {
            name: memory.get(address, 0)
            for name, address in binary.variable_addresses.items()
        }
        outputs = {name: final_memory[name] for name in binary.outputs}
        return RunResult(
            cycles=cycles,
            instructions_executed=executed,
            final_memory=final_memory,
            outputs=outputs,
            icache_misses=self.instruction_cache.statistics.misses - icache_misses_before,
            dcache_misses=self.data_cache.statistics.misses - dcache_misses_before,
        )

    @staticmethod
    def _alu(opcode: Opcode, left: int, right: int, width: int) -> int:
        if opcode is Opcode.ADD:
            return left + right
        if opcode is Opcode.SUB:
            return left - right
        if opcode is Opcode.MUL:
            return left * right
        if opcode is Opcode.AND:
            return left & right
        if opcode is Opcode.OR:
            return left | right
        if opcode is Opcode.XOR:
            return left ^ right
        if opcode is Opcode.SHL:
            return 0 if right >= width else left << right
        if opcode is Opcode.SHR:
            return 0 if right >= width else left >> right
        if opcode is Opcode.CMPEQ:
            return int(left == right)
        if opcode is Opcode.CMPNE:
            return int(left != right)
        if opcode is Opcode.CMPLT:
            return int(left < right)
        if opcode is Opcode.CMPLE:
            return int(left <= right)
        if opcode is Opcode.CMPGT:
            return int(left > right)
        if opcode is Opcode.CMPGE:
            return int(left >= right)
        raise SimulationError(f"unhandled opcode {opcode}")
