"""Instruction set of the simulated embedded platform.

The paper's GameTime experiments ran on a StrongARM-1100 model inside the
SimIt-ARM cycle-accurate simulator.  This reproduction defines a small
load/store RISC instruction set — just enough to compile the task language
— together with the binary container handed to the cycle-level simulator
(:mod:`repro.platform.processor`).

Registers are named ``r0`` .. ``r{N-1}`` (``r0`` is a normal register, not
hard-wired to zero).  Program variables live in data memory at word
addresses assigned by the compiler, so load/store traffic — and therefore
data-cache behaviour — mirrors an unoptimised embedded compilation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.exceptions import CompilationError


class Opcode(enum.Enum):
    """Machine opcodes."""

    LOADI = "loadi"    # rd <- immediate
    LOAD = "load"      # rd <- memory[address]
    STORE = "store"    # memory[address] <- rs
    MOVE = "move"      # rd <- rs
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    NOT = "not"        # rd <- ~ra
    NEG = "neg"        # rd <- -ra
    CMPEQ = "cmpeq"    # rd <- (ra == rb)
    CMPNE = "cmpne"
    CMPLT = "cmplt"    # unsigned
    CMPLE = "cmple"
    CMPGT = "cmpgt"
    CMPGE = "cmpge"
    BEQZ = "beqz"      # branch to target if rs == 0
    BNEZ = "bnez"      # branch to target if rs != 0
    JUMP = "jump"      # unconditional branch
    HALT = "halt"


#: Opcodes writing a destination register from two source registers.
THREE_REGISTER_OPCODES = {
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.SHL,
    Opcode.SHR,
    Opcode.CMPEQ,
    Opcode.CMPNE,
    Opcode.CMPLT,
    Opcode.CMPLE,
    Opcode.CMPGT,
    Opcode.CMPGE,
}

#: Opcodes writing a destination register from one source register.
TWO_REGISTER_OPCODES = {Opcode.MOVE, Opcode.NOT, Opcode.NEG}

#: Branch opcodes.
BRANCH_OPCODES = {Opcode.BEQZ, Opcode.BNEZ, Opcode.JUMP}


@dataclass(frozen=True)
class Instruction:
    """One machine instruction.

    The field meanings depend on the opcode:

    * ``LOADI rd, immediate``
    * ``LOAD rd, address`` / ``STORE address, rs`` (``rs`` stored in ``rd``)
    * three-register ALU ops: ``rd, ra, rb``
    * two-register ops: ``rd, ra``
    * ``BEQZ rs, target`` / ``BNEZ rs, target`` (``rs`` stored in ``rd``)
    * ``JUMP target``
    * ``HALT``
    """

    opcode: Opcode
    rd: int | None = None
    ra: int | None = None
    rb: int | None = None
    immediate: int | None = None
    address: int | None = None
    target: int | None = None
    comment: str = ""

    def reads(self) -> tuple[int, ...]:
        """Registers read by this instruction."""
        if self.opcode in THREE_REGISTER_OPCODES:
            return (self.ra, self.rb)  # type: ignore[return-value]
        if self.opcode in TWO_REGISTER_OPCODES:
            return (self.ra,)  # type: ignore[return-value]
        if self.opcode in {Opcode.STORE, Opcode.BEQZ, Opcode.BNEZ}:
            return (self.rd,)  # type: ignore[return-value]
        return ()

    def writes(self) -> int | None:
        """Destination register written by this instruction, if any."""
        if self.opcode in THREE_REGISTER_OPCODES or self.opcode in TWO_REGISTER_OPCODES:
            return self.rd
        if self.opcode in {Opcode.LOADI, Opcode.LOAD}:
            return self.rd
        return None

    def is_branch(self) -> bool:
        """True for control-transfer instructions."""
        return self.opcode in BRANCH_OPCODES

    def render(self) -> str:
        """Assembly-style rendering (for dumps and debugging)."""
        op = self.opcode.value
        if self.opcode is Opcode.LOADI:
            body = f"{op} r{self.rd}, #{self.immediate}"
        elif self.opcode is Opcode.LOAD:
            body = f"{op} r{self.rd}, [{self.address}]"
        elif self.opcode is Opcode.STORE:
            body = f"{op} [{self.address}], r{self.rd}"
        elif self.opcode in THREE_REGISTER_OPCODES:
            body = f"{op} r{self.rd}, r{self.ra}, r{self.rb}"
        elif self.opcode in TWO_REGISTER_OPCODES:
            body = f"{op} r{self.rd}, r{self.ra}"
        elif self.opcode in {Opcode.BEQZ, Opcode.BNEZ}:
            body = f"{op} r{self.rd}, @{self.target}"
        elif self.opcode is Opcode.JUMP:
            body = f"{op} @{self.target}"
        else:
            body = op
        if self.comment:
            body = f"{body:<28}; {self.comment}"
        return body


@dataclass
class Binary:
    """A compiled program: instructions plus the data-memory layout.

    Attributes:
        name: source program name.
        instructions: the instruction sequence (branch targets resolved).
        variable_addresses: word address of each program variable.
        parameters: the input variable names, in order.
        outputs: the output variable names.
        word_width: machine word width in bits.
        num_registers: size of the register file required.
    """

    name: str
    instructions: list[Instruction]
    variable_addresses: dict[str, int]
    parameters: tuple[str, ...]
    outputs: tuple[str, ...]
    word_width: int
    num_registers: int

    def __len__(self) -> int:
        return len(self.instructions)

    def address_of(self, variable: str) -> int:
        """Data address of ``variable``.

        Raises:
            CompilationError: if the variable is unknown.
        """
        if variable not in self.variable_addresses:
            raise CompilationError(f"unknown variable {variable!r}")
        return self.variable_addresses[variable]

    def listing(self) -> str:
        """Full assembly listing."""
        lines = [f"; {self.name} ({self.word_width}-bit, {len(self.instructions)} instructions)"]
        for index, instruction in enumerate(self.instructions):
            lines.append(f"{index:4d}: {instruction.render()}")
        return "\n".join(lines)


def validate_binary(binary: Binary) -> None:
    """Sanity-check a binary: branch targets and register indices in range.

    Raises:
        CompilationError: on malformed binaries.
    """
    count = len(binary.instructions)
    for index, instruction in enumerate(binary.instructions):
        if instruction.is_branch() and instruction.opcode is not Opcode.HALT:
            if instruction.target is None or not (0 <= instruction.target <= count):
                raise CompilationError(
                    f"instruction {index} has invalid branch target {instruction.target}"
                )
        for register in instruction.reads():
            if register is None or register < 0 or register >= binary.num_registers:
                raise CompilationError(
                    f"instruction {index} reads invalid register {register}"
                )
        destination = instruction.writes()
        if destination is not None and destination >= binary.num_registers:
            raise CompilationError(
                f"instruction {index} writes invalid register {destination}"
            )
