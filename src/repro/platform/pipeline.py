"""In-order pipeline timing model.

Models the per-instruction timing of a simple five-stage in-order pipeline
(fetch, decode, execute, memory, write-back) in the style of the
StrongARM-1100 used in the paper's experiments:

* one cycle base cost per instruction (CPI = 1 when nothing stalls),
* multi-cycle execute for multiplies,
* a load-use interlock stall when an instruction consumes the result of
  the immediately preceding load,
* a branch penalty for taken branches (static not-taken prediction),
* cache miss penalties are added by the simulator on top of these costs.

The model is intentionally *not* exposed to the analysis side: GameTime
only sees end-to-end cycle counts, exactly as in the paper where the
platform is an opaque adversary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platform.isa import Instruction, Opcode


@dataclass(frozen=True)
class PipelineConfig:
    """Timing parameters of the in-order pipeline.

    Attributes:
        base_cost: cycles charged for any instruction.
        multiply_extra: extra execute cycles for ``MUL``.
        shift_extra: extra execute cycles for shifts.
        load_use_stall: stall cycles when the previous instruction was a
            load whose destination this instruction reads.
        taken_branch_penalty: flush cycles for a taken branch or jump.
        halt_cost: cycles charged for ``HALT``.
    """

    base_cost: int = 1
    multiply_extra: int = 3
    shift_extra: int = 0
    load_use_stall: int = 1
    taken_branch_penalty: int = 2
    halt_cost: int = 1


@dataclass
class PipelineState:
    """Dynamic pipeline state carried between instructions."""

    #: Destination register of the previous instruction when it was a load,
    #: else None (drives the load-use interlock).
    pending_load_register: int | None = None


class PipelineModel:
    """Computes the pipeline component of each instruction's cost."""

    def __init__(self, config: PipelineConfig | None = None):
        self.config = config or PipelineConfig()
        self.state = PipelineState()

    def reset(self) -> None:
        """Clear dynamic state (between runs)."""
        self.state = PipelineState()

    def cost(self, instruction: Instruction, branch_taken: bool = False) -> int:
        """Return the pipeline cost of ``instruction`` and update state.

        Args:
            instruction: the instruction being retired.
            branch_taken: whether a conditional branch/jump redirected the
                program counter (charged the flush penalty).
        """
        config = self.config
        if instruction.opcode is Opcode.HALT:
            self.state.pending_load_register = None
            return config.halt_cost
        cycles = config.base_cost
        if instruction.opcode is Opcode.MUL:
            cycles += config.multiply_extra
        elif instruction.opcode in {Opcode.SHL, Opcode.SHR}:
            cycles += config.shift_extra
        if (
            self.state.pending_load_register is not None
            and self.state.pending_load_register in instruction.reads()
        ):
            cycles += config.load_use_stall
        if instruction.is_branch() and branch_taken:
            cycles += config.taken_branch_penalty
        self.state.pending_load_register = (
            instruction.rd if instruction.opcode is Opcode.LOAD else None
        )
        return cycles
