"""Compiler from the task language to the platform instruction set.

The compilation style is deliberately that of an unoptimised embedded
build (``-O0``): every program variable lives at a fixed data-memory
address, every statement loads its operands, computes in registers and
stores the result back.  This produces the load/store traffic that makes
data-cache behaviour — and therefore path-dependent timing — visible to
the GameTime analysis, mirroring the paper's experimental setup.

Loops are compiled as genuine machine loops with backward branches; the
*analysis* unrolls them (in the CFG), the *platform* executes them, so the
two views of the program are kept honest with respect to each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.exceptions import CompilationError
from repro.cfg.builder import inline_calls
from repro.cfg.lang import (
    Assign,
    BinOp,
    Block,
    Const,
    Expression,
    If,
    Program,
    Skip,
    Statement,
    UnOp,
    Var,
    While,
)
from repro.platform.isa import Binary, Instruction, Opcode, validate_binary

#: Binary operators mapped directly to ALU opcodes.
_ALU_OPCODES = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.SHR,
}

#: Comparison operators mapped to compare opcodes (results are 0/1).
_COMPARE_OPCODES = {
    "==": Opcode.CMPEQ,
    "!=": Opcode.CMPNE,
    "<": Opcode.CMPLT,
    "<=": Opcode.CMPLE,
    ">": Opcode.CMPGT,
    ">=": Opcode.CMPGE,
}


@dataclass
class _Emitter:
    """Accumulates instructions and resolves symbolic labels."""

    instructions: list[Instruction] = field(default_factory=list)
    fixups: list[tuple[int, str]] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    label_counter: int = 0
    max_register: int = 0

    def emit(self, instruction: Instruction) -> int:
        self.instructions.append(instruction)
        for register in (instruction.rd, instruction.ra, instruction.rb):
            if register is not None:
                self.max_register = max(self.max_register, register)
        return len(self.instructions) - 1

    def new_label(self, hint: str) -> str:
        self.label_counter += 1
        return f"{hint}_{self.label_counter}"

    def place_label(self, label: str) -> None:
        if label in self.labels:
            raise CompilationError(f"label {label!r} placed twice")
        self.labels[label] = len(self.instructions)

    def emit_branch(self, opcode: Opcode, register: int | None, label: str, comment: str = "") -> None:
        index = self.emit(
            Instruction(opcode=opcode, rd=register, target=None, comment=comment)
        )
        self.fixups.append((index, label))

    def resolve(self) -> None:
        for index, label in self.fixups:
            if label not in self.labels:
                raise CompilationError(f"undefined label {label!r}")
            original = self.instructions[index]
            self.instructions[index] = Instruction(
                opcode=original.opcode,
                rd=original.rd,
                ra=original.ra,
                rb=original.rb,
                immediate=original.immediate,
                address=original.address,
                target=self.labels[label],
                comment=original.comment,
            )


class Compiler:
    """Compiles a :class:`~repro.cfg.lang.Program` into a :class:`Binary`.

    Args:
        variable_spacing: distance in words between consecutive variable
            addresses (1 packs variables densely into cache lines; larger
            values spread them over more lines, increasing miss counts).
        base_address: data address of the first variable.
    """

    def __init__(self, variable_spacing: int = 1, base_address: int = 0):
        if variable_spacing <= 0:
            raise CompilationError("variable spacing must be positive")
        self.variable_spacing = variable_spacing
        self.base_address = base_address

    def compile(self, program: Program) -> Binary:
        """Compile ``program`` and return the binary."""
        body = inline_calls(program.body)
        flattened = Program(
            name=program.name,
            parameters=program.parameters,
            body=body,
            returns=program.returns,
            word_width=program.word_width,
        )
        addresses = {
            name: self.base_address + index * self.variable_spacing
            for index, name in enumerate(flattened.variables())
        }
        emitter = _Emitter()
        self._compile_statement(body, addresses, emitter)
        emitter.emit(Instruction(opcode=Opcode.HALT, comment="end of task"))
        emitter.resolve()
        binary = Binary(
            name=program.name,
            instructions=emitter.instructions,
            variable_addresses=addresses,
            parameters=flattened.parameters,
            outputs=flattened.output_variables(),
            word_width=program.word_width,
            num_registers=emitter.max_register + 1,
        )
        validate_binary(binary)
        return binary

    # -- expressions --------------------------------------------------------

    def _compile_expression(
        self,
        expression: Expression,
        addresses: dict[str, int],
        emitter: _Emitter,
        next_register: int,
    ) -> tuple[int, int]:
        """Compile ``expression`` into a register.

        Returns:
            ``(result_register, next_free_register)``.
        """
        if isinstance(expression, Const):
            register = next_register
            emitter.emit(
                Instruction(Opcode.LOADI, rd=register, immediate=expression.value)
            )
            return register, next_register + 1
        if isinstance(expression, Var):
            if expression.name not in addresses:
                raise CompilationError(f"undefined variable {expression.name!r}")
            register = next_register
            emitter.emit(
                Instruction(
                    Opcode.LOAD,
                    rd=register,
                    address=addresses[expression.name],
                    comment=expression.name,
                )
            )
            return register, next_register + 1
        if isinstance(expression, UnOp):
            operand, free = self._compile_expression(
                expression.operand, addresses, emitter, next_register
            )
            register = free
            if expression.op == "~":
                emitter.emit(Instruction(Opcode.NOT, rd=register, ra=operand))
            elif expression.op == "-":
                emitter.emit(Instruction(Opcode.NEG, rd=register, ra=operand))
            else:  # logical not: operand == 0
                zero = free + 1
                emitter.emit(Instruction(Opcode.LOADI, rd=zero, immediate=0))
                emitter.emit(Instruction(Opcode.CMPEQ, rd=register, ra=operand, rb=zero))
                return register, zero + 1
            return register, register + 1
        if isinstance(expression, BinOp):
            left, free = self._compile_expression(
                expression.left, addresses, emitter, next_register
            )
            right, free = self._compile_expression(
                expression.right, addresses, emitter, free
            )
            register = free
            if expression.op in _ALU_OPCODES:
                opcode = _ALU_OPCODES[expression.op]
            elif expression.op in _COMPARE_OPCODES:
                opcode = _COMPARE_OPCODES[expression.op]
            else:
                raise CompilationError(f"unsupported operator {expression.op!r}")
            emitter.emit(Instruction(opcode, rd=register, ra=left, rb=right))
            return register, register + 1
        raise CompilationError(f"unknown expression node {type(expression).__name__}")

    # -- statements --------------------------------------------------------

    def _compile_statement(
        self, statement: Statement, addresses: dict[str, int], emitter: _Emitter
    ) -> None:
        if isinstance(statement, Skip):
            return
        if isinstance(statement, Assign):
            register, _ = self._compile_expression(
                statement.expression, addresses, emitter, 0
            )
            emitter.emit(
                Instruction(
                    Opcode.STORE,
                    rd=register,
                    address=addresses[statement.target],
                    comment=statement.target,
                )
            )
            return
        if isinstance(statement, Block):
            for child in statement.statements:
                self._compile_statement(child, addresses, emitter)
            return
        if isinstance(statement, If):
            register, _ = self._compile_expression(
                statement.condition, addresses, emitter, 0
            )
            else_label = emitter.new_label("else")
            end_label = emitter.new_label("endif")
            emitter.emit_branch(Opcode.BEQZ, register, else_label, comment="if")
            self._compile_statement(statement.then_branch, addresses, emitter)
            emitter.emit_branch(Opcode.JUMP, None, end_label)
            emitter.place_label(else_label)
            self._compile_statement(statement.else_branch, addresses, emitter)
            emitter.place_label(end_label)
            return
        if isinstance(statement, While):
            loop_label = emitter.new_label("loop")
            end_label = emitter.new_label("endloop")
            emitter.place_label(loop_label)
            register, _ = self._compile_expression(
                statement.condition, addresses, emitter, 0
            )
            emitter.emit_branch(Opcode.BEQZ, register, end_label, comment="while")
            self._compile_statement(statement.body, addresses, emitter)
            emitter.emit_branch(Opcode.JUMP, None, loop_label)
            emitter.place_label(end_label)
            return
        raise CompilationError(
            f"cannot compile statement {type(statement).__name__} "
            "(calls must be inlined first)"
        )


def compile_program(program: Program, **kwargs) -> Binary:
    """Convenience wrapper: compile ``program`` with default settings."""
    return Compiler(**kwargs).compile(program)
