"""End-to-end timing measurement harness.

GameTime's only interface to the platform is the ability to run the
program on a chosen input and record the end-to-end execution time
(paper Section 3.2: "GAMETIME only requires one to run end-to-end
measurements on the target platform").  This module packages that
interface:

* :class:`MeasurementHarness` — compiles-once, runs-many; controls the
  starting environment state (cold / warm / captured snapshot) so every
  measurement starts from the *fixed starting state of E* required by the
  problem statement ⟨TA⟩;
* :class:`PerturbationModel` — optional bounded stochastic noise added to
  each measurement, modelling the path-dependent perturbation π of the
  paper's weight-perturbation structure hypothesis (mean bounded by
  ``mu_max``); with it the platform behaves like a noisy adversary and the
  game-theoretic averaging in the learner becomes observable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Literal, Mapping, Sequence

from repro.core.exceptions import SimulationError
from repro.core.oracle import LabelingOracle
from repro.platform.compiler import compile_program
from repro.platform.isa import Binary
from repro.platform.processor import PlatformConfig, Processor, RunResult

StartState = Literal["cold", "warm", "snapshot"]


@dataclass
class PerturbationModel:
    """Bounded non-negative measurement noise with known mean bound.

    The paper's structure hypothesis for timing analysis bounds the *mean*
    perturbation along any path by ``mu_max``.  This model draws an extra
    cycle count uniformly from ``[0, 2 * mean]`` (so the mean is ``mean``)
    and therefore satisfies the hypothesis whenever ``mean <= mu_max``.

    Attributes:
        mean: mean extra cycles per measurement.
        seed: RNG seed (measurements are reproducible for a fixed seed).
    """

    mean: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mean < 0:
            raise SimulationError("perturbation mean must be non-negative")
        self._rng = random.Random(self.seed)

    def sample(self) -> int:
        """Draw one perturbation (non-negative integer cycle count)."""
        if self.mean == 0:
            return 0
        return int(round(self._rng.uniform(0.0, 2.0 * self.mean)))


class MeasurementHarness:
    """Runs a compiled task on the platform and reports cycle counts.

    Args:
        binary: the compiled program (use :func:`from_program` to compile
            and wrap in one step).
        platform: processor configuration (defaults mirror a small
            StrongARM-class core).
        start_state: environment state restored before every measurement —
            ``"cold"`` (flushed caches, the paper's experimental setting),
            ``"warm"`` (program footprint pre-loaded), or ``"snapshot"``
            (an arbitrary captured state supplied via ``snapshot``).
        perturbation: optional measurement noise model.
        snapshot: environment snapshot used when ``start_state="snapshot"``.
    """

    def __init__(
        self,
        binary: Binary,
        platform: PlatformConfig | None = None,
        start_state: StartState = "cold",
        perturbation: PerturbationModel | None = None,
        snapshot: Mapping[str, list[list[int]]] | None = None,
    ):
        self.binary = binary
        self.processor = Processor(platform)
        self.start_state = start_state
        self.perturbation = perturbation
        self._snapshot = snapshot
        if start_state == "snapshot" and snapshot is None:
            raise SimulationError("start_state='snapshot' requires a snapshot")
        self.measurements_taken = 0

    @classmethod
    def from_program(cls, program, **kwargs) -> "MeasurementHarness":
        """Compile ``program`` and build a harness for it."""
        return cls(compile_program(program), **kwargs)

    # -- environment control -------------------------------------------------

    def _prepare_environment(self) -> None:
        if self.start_state == "cold":
            self.processor.flush_caches()
        elif self.start_state == "warm":
            self.processor.flush_caches()
            self.processor.warm_caches(self.binary)
        else:  # snapshot
            assert self._snapshot is not None
            self.processor.restore_environment(self._snapshot)

    # -- measurement ----------------------------------------------------------

    def run(self, inputs: Mapping[str, int] | Sequence[int]) -> RunResult:
        """Run once from the configured start state; return the full result."""
        self._prepare_environment()
        result = self.processor.run(self.binary, inputs)
        self.measurements_taken += 1
        if self.perturbation is not None:
            extra = self.perturbation.sample()
            result = RunResult(
                cycles=result.cycles + extra,
                instructions_executed=result.instructions_executed,
                final_memory=result.final_memory,
                outputs=result.outputs,
                icache_misses=result.icache_misses,
                dcache_misses=result.dcache_misses,
            )
        return result

    def measure(self, inputs: Mapping[str, int] | Sequence[int]) -> int:
        """Run once and return only the end-to-end cycle count."""
        return self.run(inputs).cycles

    def measure_repeated(
        self, inputs: Mapping[str, int] | Sequence[int], trials: int
    ) -> list[int]:
        """Measure the same input ``trials`` times (noise makes them differ)."""
        if trials <= 0:
            raise SimulationError("number of trials must be positive")
        return [self.measure(inputs) for _ in range(trials)]

    def outputs(self, inputs: Mapping[str, int] | Sequence[int]) -> dict[str, int]:
        """Functional outputs of one run (used to validate the tool-chain)."""
        return self.run(inputs).outputs


class TimingOracle(LabelingOracle[dict[str, int], int]):
    """A :class:`~repro.core.oracle.LabelingOracle` over the harness.

    Labels a test case (an input valuation) with its measured cycle count;
    this is the oracle consumed by GameTime's inductive learner.
    """

    name = "platform-timing-oracle"

    def __init__(self, harness: MeasurementHarness, max_queries: int | None = None):
        super().__init__(max_queries=max_queries)
        self.harness = harness

    def _label(self, example: dict[str, int]) -> int:
        return self.harness.measure(example)
