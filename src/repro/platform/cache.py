"""Set-associative cache models (instruction and data caches).

The environment-modeling challenge GameTime addresses (paper Section 3.1)
comes precisely from micro-architectural state such as caches: the same
instruction can take an order of magnitude longer on a miss than on a hit,
and whether it hits depends on the execution history.  This module
provides a parameterisable set-associative cache with LRU replacement used
by the cycle-level simulator for both instruction fetches and data
accesses.

Cache *state* (the set of resident lines and their recency) is the part of
the platform's environment state that GameTime treats adversarially; the
simulator exposes it so experiments can run from cold, warm, or arbitrary
starting states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.exceptions import SimulationError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache.

    Attributes:
        line_size_words: number of words per cache line (power of two).
        num_sets: number of sets (power of two).
        associativity: ways per set.
        hit_latency: cycles charged on a hit.
        miss_penalty: additional cycles charged on a miss.
    """

    line_size_words: int = 4
    num_sets: int = 16
    associativity: int = 2
    hit_latency: int = 1
    miss_penalty: int = 10

    def __post_init__(self) -> None:
        for name in ("line_size_words", "num_sets", "associativity"):
            value = getattr(self, name)
            if value <= 0:
                raise SimulationError(f"cache {name} must be positive")
        if self.line_size_words & (self.line_size_words - 1):
            raise SimulationError("line size must be a power of two")
        if self.num_sets & (self.num_sets - 1):
            raise SimulationError("number of sets must be a power of two")
        if self.hit_latency < 0 or self.miss_penalty < 0:
            raise SimulationError("cache latencies must be non-negative")

    @property
    def capacity_words(self) -> int:
        """Total capacity in words."""
        return self.line_size_words * self.num_sets * self.associativity


@dataclass
class CacheStatistics:
    """Hit/miss counters."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0 when there were none)."""
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """A set-associative cache with true-LRU replacement.

    Addresses are word addresses; the cache maps them to (set, tag) pairs
    according to the configured geometry.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        # Each set is an ordered list of tags, most recently used last.
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]
        self.statistics = CacheStatistics()

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.config.line_size_words
        set_index = line % self.config.num_sets
        tag = line // self.config.num_sets
        return set_index, tag

    def access(self, address: int) -> int:
        """Access ``address``; update state and return the cycle cost."""
        if address < 0:
            raise SimulationError(f"negative address {address}")
        self.statistics.accesses += 1
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.statistics.hits += 1
            return self.config.hit_latency
        self.statistics.misses += 1
        ways.append(tag)
        if len(ways) > self.config.associativity:
            ways.pop(0)
        return self.config.hit_latency + self.config.miss_penalty

    def probe(self, address: int) -> bool:
        """Return True iff ``address`` currently hits (state unchanged)."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def flush(self) -> None:
        """Invalidate the entire cache (cold state)."""
        self._sets = [[] for _ in range(self.config.num_sets)]

    def warm(self, addresses: Iterable[int]) -> None:
        """Pre-load the cache with the lines of ``addresses`` (in order)."""
        for address in addresses:
            set_index, tag = self._locate(address)
            ways = self._sets[set_index]
            if tag in ways:
                ways.remove(tag)
            ways.append(tag)
            if len(ways) > self.config.associativity:
                ways.pop(0)

    def snapshot(self) -> list[list[int]]:
        """Return a copy of the full cache state (per-set LRU-ordered tags)."""
        return [list(ways) for ways in self._sets]

    def restore(self, snapshot: list[list[int]]) -> None:
        """Restore a state captured by :meth:`snapshot`."""
        if len(snapshot) != self.config.num_sets:
            raise SimulationError("snapshot geometry mismatch")
        self._sets = [list(ways) for ways in snapshot]

    def reset_statistics(self) -> None:
        """Zero the hit/miss counters (state unchanged)."""
        self.statistics = CacheStatistics()
