"""Obfuscated benchmark programs (paper Figure 8) and their references.

The paper's Figure 8 shows two obfuscated code fragments and the programs
re-synthesized from them:

* **P1 — interchange**: swap two values (IP source/destination addresses)
  through a maze of XOR assignments and always-true conditionals; the
  deobfuscated program is the three-instruction XOR swap.
* **P2 — multiply by 45**: a flag-driven state machine that performs
  ``y = (y << 2) + y`` followed by ``y = (y << 3) + y``; the deobfuscated
  program is the four-instruction shift-and-add sequence.

Both obfuscated versions are implemented here as plain Python functions
over fixed-width unsigned integers (the ``~`` toggling of the one-bit
flags in the paper's C listing is rendered as ``flag ^ 1``, its intended
meaning) so they can serve as I/O oracles, plus reference (deobfuscated)
functions used by the tests to confirm that the synthesizer recovers
semantically identical programs.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.exceptions import ReproError


def _mask(width: int) -> int:
    return (1 << width) - 1


# ---------------------------------------------------------------------------
# P1: interchange (XOR swap behind obfuscating conditionals)
# ---------------------------------------------------------------------------


def interchange_obfuscated(values: Sequence[int], width: int = 32) -> tuple[int, int]:
    """The obfuscated ``interchangeObs`` of Figure 8 (P1).

    Faithfully follows the published control flow: the nested conditionals
    test tautologies of the already-updated values, so every execution ends
    up performing the three XOR assignments of the classic swap, but the
    program text obscures that fact.

    Args:
        values: ``(src, dest)``.
        width: word width.

    Returns:
        The final ``(src, dest)`` pair — the inputs swapped.
    """
    if len(values) != 2:
        raise ReproError("interchange takes exactly two values")
    mask = _mask(width)
    src, dest = values[0] & mask, values[1] & mask
    src = (src ^ dest) & mask
    if src == (src ^ dest) & mask:
        src = (src ^ dest) & mask
        if src == (src ^ dest) & mask:
            dest = (src ^ dest) & mask
            if dest == (src ^ dest) & mask:
                src = (dest ^ src) & mask
                return src, dest
            src = (src ^ dest) & mask
            dest = (src ^ dest) & mask
            return src, dest
        src = (src ^ dest) & mask
    dest = (src ^ dest) & mask
    src = (src ^ dest) & mask
    return src, dest


def _interchange_obfuscated_matches_swap(width: int = 8) -> bool:  # pragma: no cover
    """Development aid: confirm the transcription swaps on all 8-bit pairs."""
    mask = _mask(width)
    for src in range(mask + 1):
        for dest in range(mask + 1):
            if interchange_obfuscated((src, dest), width) != (dest, src):
                return False
    return True


def interchange_reference(values: Sequence[int], width: int = 32) -> tuple[int, int]:
    """The deobfuscated ``interchange`` of Figure 8 (P1): the XOR swap."""
    mask = _mask(width)
    src, dest = values[0] & mask, values[1] & mask
    dest = (src ^ dest) & mask
    src = (src ^ dest) & mask
    dest = (src ^ dest) & mask
    return src, dest


# ---------------------------------------------------------------------------
# P2: multiply by 45 (flag-driven state machine)
# ---------------------------------------------------------------------------


def multiply45_obfuscated(values: Sequence[int], width: int = 32) -> tuple[int]:
    """The obfuscated ``multiply45Obs`` of Figure 8 (P2).

    A four-state machine driven by the one-bit flags ``a``, ``b``, ``c``
    that computes ``45 * y`` via two shift-and-add rounds.  The paper's C
    listing toggles the flags with ``~``; on one-bit flags the intended
    semantics is logical negation, rendered here as ``flag ^ 1``.

    Args:
        values: ``(y,)``.
        width: word width.

    Returns:
        ``(45 * y mod 2**width,)``.
    """
    if len(values) != 1:
        raise ReproError("multiply45 takes exactly one value")
    mask = _mask(width)
    y = values[0] & mask
    a, b, z, c = 1, 0, 1, 0
    for _ in range(64):  # generous bound; the machine halts after 4 steps
        if a == 0:
            if b == 0:
                y = (z + y) & mask
                a ^= 1
                b ^= 1
                c ^= 1
                if c == 0:
                    break
            else:
                z = (z + y) & mask
                a ^= 1
                b ^= 1
                c ^= 1
                if c == 0:
                    break
        else:
            if b == 0:
                z = (y << 2) & mask
                a ^= 1
            else:
                z = (y << 3) & mask
                a ^= 1
                b ^= 1
    else:  # pragma: no cover - the state machine always terminates
        raise ReproError("obfuscated multiply45 failed to terminate")
    return (y,)


def multiply45_reference(values: Sequence[int], width: int = 32) -> tuple[int]:
    """The deobfuscated ``multiply45`` of Figure 8 (P2)."""
    mask = _mask(width)
    y = values[0] & mask
    z = (y << 2) & mask
    y = (z + y) & mask
    z = (y << 3) & mask
    y = (z + y) & mask
    return (y,)


# ---------------------------------------------------------------------------
# Additional deobfuscation-style benchmarks (ICSE'10 flavour)
# ---------------------------------------------------------------------------


def turn_off_rightmost_one_obfuscated(values: Sequence[int], width: int = 32) -> tuple[int]:
    """Clear the least-significant set bit, via an obfuscated detour.

    Reference behaviour: ``x & (x - 1)`` (Hacker's Delight / ICSE'10
    benchmark P1-style bit-twiddling task).
    """
    mask = _mask(width)
    x = values[0] & mask
    # Obfuscated: isolate the rightmost one, then subtract it.
    isolated = x & ((~x + 1) & mask)
    return ((x - isolated) & mask,)


def turn_off_rightmost_one_reference(values: Sequence[int], width: int = 32) -> tuple[int]:
    """Reference: ``x & (x - 1)``."""
    mask = _mask(width)
    x = values[0] & mask
    return (x & ((x - 1) & mask),)


def average_floor_obfuscated(values: Sequence[int], width: int = 32) -> tuple[int]:
    """Overflow-safe floor average of two words, obfuscated form.

    Reference behaviour: ``(x & y) + ((x ^ y) >> 1)``.
    """
    mask = _mask(width)
    x, y = values[0] & mask, values[1] & mask
    low_sum = (x & y) & mask
    spread = (x ^ y) & mask
    return ((low_sum + (spread >> 1)) & mask,)


def average_floor_reference(values: Sequence[int], width: int = 32) -> tuple[int]:
    """Reference floor-average: ``(x & y) + ((x ^ y) >> 1)``."""
    return average_floor_obfuscated(values, width)
