"""I/O oracles for program synthesis (paper Section 4.1).

The deobfuscation problem views the obfuscated program as an *I/O oracle*
mapping a program input (starting state) to the desired output (ending
state); the synthesis complexity is measured in queries to that oracle,
independent of the syntactic obfuscations applied to it.  This module
wraps arbitrary Python callables (and task-language programs) as counting
oracles compatible with the synthesizer.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.core.exceptions import ReproError
from repro.core.oracle import IOOracle
from repro.cfg.lang import Program, run_program


def _mask(width: int) -> int:
    return (1 << width) - 1


class ProgramIOOracle(IOOracle[tuple[int, ...], tuple[int, ...]]):
    """An I/O oracle backed by a Python callable.

    The callable receives a tuple of unsigned integers and must return a
    sequence of unsigned integers; values are reduced modulo ``2**width``
    on both sides so the oracle's behaviour matches the bit-vector
    semantics used during synthesis.
    """

    name = "program-io-oracle"

    def __init__(
        self,
        function: Callable[[tuple[int, ...]], Sequence[int]],
        num_inputs: int,
        num_outputs: int,
        width: int,
        max_queries: int | None = None,
    ):
        super().__init__(max_queries=max_queries)
        self._function = function
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.width = width

    def _query(self, value: tuple[int, ...]) -> tuple[int, ...]:
        if len(value) != self.num_inputs:
            raise ReproError(
                f"oracle expects {self.num_inputs} inputs, got {len(value)}"
            )
        masked = tuple(v & _mask(self.width) for v in value)
        outputs = tuple(int(v) & _mask(self.width) for v in self._function(masked))
        if len(outputs) != self.num_outputs:
            raise ReproError(
                f"oracle returned {len(outputs)} outputs, expected {self.num_outputs}"
            )
        return outputs


def oracle_from_task_program(
    program: Program,
    outputs: Sequence[str] | None = None,
    max_queries: int | None = None,
) -> ProgramIOOracle:
    """Wrap a task-language :class:`~repro.cfg.lang.Program` as an I/O oracle.

    Args:
        program: the (possibly obfuscated) task program.
        outputs: names of the variables to expose as oracle outputs
            (defaults to the program's declared return variables).
        max_queries: optional query budget.
    """
    output_names = tuple(outputs) if outputs else program.output_variables()

    def function(values: tuple[int, ...]) -> Sequence[int]:
        state = run_program(program, dict(zip(program.parameters, values)))
        return [state[name] for name in output_names]

    return ProgramIOOracle(
        function,
        num_inputs=len(program.parameters),
        num_outputs=len(output_names),
        width=program.word_width,
        max_queries=max_queries,
    )
