"""Loop-free program representation for component-based synthesis.

A loop-free program over a component library is a straight-line sequence
of component applications (one application per library component, in the
style of Jha, Gulwani, Seshia & Tiwari, ICSE 2010): line ``0 .. n_in - 1``
hold the program inputs, line ``n_in + i`` holds the result of the ``i``-th
component application (ordered by the synthesized location assignment),
and designated lines are returned as the program outputs.

The class provides a concrete interpreter, pretty printing in the C-like
style of the paper's Figure 8, and semantic-equivalence testing against an
arbitrary reference function (exhaustive for narrow widths, randomised
otherwise).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.exceptions import ReproError
from repro.ogis.components import Component


def _mask(width: int) -> int:
    return (1 << width) - 1


@dataclass(frozen=True)
class ComponentInstance:
    """One component application inside a loop-free program.

    Attributes:
        component: the library component applied.
        input_lines: the line numbers supplying each argument (must all be
            smaller than this instance's own ``output_line``).
        output_line: the line number holding this application's result.
    """

    component: Component
    input_lines: tuple[int, ...]
    output_line: int


@dataclass
class LoopFreeProgram:
    """A synthesized loop-free program.

    Attributes:
        num_inputs: number of program inputs.
        instances: component applications sorted by output line.
        output_lines: lines returned as program outputs (in order).
        width: default bit width used by :meth:`run` when none is given.
        input_names: names used for pretty printing (default ``in0`` ...).
        output_names: names used for pretty printing.
    """

    num_inputs: int
    instances: list[ComponentInstance]
    output_lines: tuple[int, ...]
    width: int = 32
    input_names: tuple[str, ...] = ()
    output_names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.instances = sorted(self.instances, key=lambda inst: inst.output_line)
        expected_lines = set(
            range(self.num_inputs, self.num_inputs + len(self.instances))
        )
        actual_lines = {instance.output_line for instance in self.instances}
        if actual_lines != expected_lines:
            raise ReproError(
                f"component output lines {sorted(actual_lines)} are not the "
                f"contiguous range {sorted(expected_lines)}"
            )
        for instance in self.instances:
            for line in instance.input_lines:
                if line < 0 or line >= instance.output_line:
                    raise ReproError(
                        f"instance at line {instance.output_line} reads line {line}, "
                        "which is not strictly earlier (program would not be in SSA)"
                    )
        total_lines = self.num_inputs + len(self.instances)
        for line in self.output_lines:
            if line < 0 or line >= total_lines:
                raise ReproError(f"output line {line} out of range")
        if not self.input_names:
            self.input_names = tuple(f"in{i}" for i in range(self.num_inputs))
        if not self.output_names:
            self.output_names = tuple(f"out{i}" for i in range(len(self.output_lines)))

    # -- size ----------------------------------------------------------------

    @property
    def length(self) -> int:
        """Number of component applications."""
        return len(self.instances)

    # -- execution ------------------------------------------------------------

    def run(self, inputs: Sequence[int], width: int | None = None) -> tuple[int, ...]:
        """Execute the program on ``inputs`` and return its outputs."""
        width = width or self.width
        if len(inputs) != self.num_inputs:
            raise ReproError(
                f"program expects {self.num_inputs} inputs, got {len(inputs)}"
            )
        values: list[int] = [value & _mask(width) for value in inputs]
        for instance in self.instances:
            arguments = [values[line] for line in instance.input_lines]
            values.append(instance.component.apply(arguments, width))
        return tuple(values[line] for line in self.output_lines)

    def as_function(self, width: int | None = None) -> Callable[[Sequence[int]], tuple[int, ...]]:
        """Return a plain callable view of the program."""
        return lambda inputs: self.run(inputs, width=width)

    # -- pretty printing ----------------------------------------------------------

    def pretty(self, function_name: str = "synthesized") -> str:
        """Render the program as C-like pseudocode (paper Figure 8 style)."""
        lines = [f"{function_name}({', '.join(self.input_names)})", "{"]
        names: dict[int, str] = {
            index: name for index, name in enumerate(self.input_names)
        }
        for position, instance in enumerate(self.instances):
            arguments = [names[line] for line in instance.input_lines]
            expression = instance.component.render(arguments)
            temp_name = f"t{position}"
            names[instance.output_line] = temp_name
            lines.append(f"  {temp_name} = {expression};")
        rendered_outputs = ", ".join(
            names[line] for line in self.output_lines
        )
        lines.append(f"  return {rendered_outputs};")
        lines.append("}")
        return "\n".join(lines)

    # -- equivalence testing ----------------------------------------------------------

    def equivalent_to(
        self,
        reference: Callable[[Sequence[int]], Sequence[int]],
        width: int | None = None,
        exhaustive_limit: int = 1 << 16,
        random_trials: int = 2000,
        seed: int = 0,
    ) -> bool:
        """Test semantic equivalence against ``reference``.

        All input combinations are checked when the input space is no
        larger than ``exhaustive_limit``; otherwise ``random_trials``
        uniformly random input tuples are compared.  (The SMT-based
        equivalence check used for hypothesis testing lives in
        :mod:`repro.ogis.encoding`.)
        """
        width = width or self.width
        space = (1 << width) ** self.num_inputs
        if space <= exhaustive_limit:
            candidates = itertools.product(range(1 << width), repeat=self.num_inputs)
        else:
            rng = random.Random(seed)
            candidates = (
                tuple(rng.randint(0, _mask(width)) for _ in range(self.num_inputs))
                for _ in range(random_trials)
            )
        for inputs in candidates:
            expected = tuple(value & _mask(width) for value in reference(inputs))
            if self.run(inputs, width=width) != expected:
                return False
        return True
