"""Component libraries for loop-free program synthesis (paper Section 4).

The structure hypothesis of the program-synthesis application is that the
target program is a loop-free composition of components drawn from a
finite library L; every component is "essentially a bit-vector circuit".
A :class:`Component` therefore carries three views of its semantics:

* a concrete evaluator over fixed-width unsigned integers (used by the
  interpreter and by equivalence testing),
* a term-level encoder producing :mod:`repro.smt` bit-vector terms (used
  by the SMT synthesis encoding),
* a C-like pretty-printing template (used to render synthesized programs
  in the style of the paper's Figure 8).

The library builders at the bottom provide the standard component set of
the underlying ICSE'10 paper (bitwise/arithmetic primitives) and the two
task-specific libraries used by the Figure 8 benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.exceptions import ReproError
from repro.smt.terms import BitVecTerm, bv_const, bv_ite, bv_lshr, bv_shl


def _mask(width: int) -> int:
    return (1 << width) - 1


@dataclass(frozen=True)
class Component:
    """One library component (a bit-vector circuit).

    Attributes:
        name: component name (e.g. ``"xor"``, ``"shl2"``).
        arity: number of inputs.
        evaluate: concrete semantics ``(args, width) -> value``.
        encode: symbolic semantics ``(args, width) -> term`` over bit-vector terms.
        template: format string used for pretty printing, with ``{0}``,
            ``{1}`` ... standing for the rendered argument expressions.
    """

    name: str
    arity: int
    evaluate: Callable[[Sequence[int], int], int]
    encode: Callable[[Sequence[BitVecTerm], int], BitVecTerm]
    template: str

    def apply(self, args: Sequence[int], width: int) -> int:
        """Evaluate the component on concrete arguments."""
        if len(args) != self.arity:
            raise ReproError(
                f"component {self.name} expects {self.arity} arguments, got {len(args)}"
            )
        return self.evaluate(args, width) & _mask(width)

    def render(self, arguments: Sequence[str]) -> str:
        """Render an application of the component on argument strings."""
        return self.template.format(*arguments)

    def __repr__(self) -> str:
        # The default dataclass repr would render the semantics callables,
        # whose reprs embed memory addresses — making the repr of anything
        # containing a Component (synthesized programs in particular)
        # unstable from run to run.  Identity is the name/arity/template
        # triple; the callables are implementation.
        return (
            f"Component(name={self.name!r}, arity={self.arity}, "
            f"template={self.template!r})"
        )


# ---------------------------------------------------------------------------
# Primitive components
# ---------------------------------------------------------------------------


def component_add() -> Component:
    """Addition component ``a + b``."""
    return Component(
        name="add",
        arity=2,
        evaluate=lambda args, width: args[0] + args[1],
        encode=lambda args, width: args[0] + args[1],
        template="{0} + {1}",
    )


def component_sub() -> Component:
    """Subtraction component ``a - b``."""
    return Component(
        name="sub",
        arity=2,
        evaluate=lambda args, width: args[0] - args[1],
        encode=lambda args, width: args[0] - args[1],
        template="{0} - {1}",
    )


def component_xor() -> Component:
    """Bitwise exclusive-or component ``a ^ b``."""
    return Component(
        name="xor",
        arity=2,
        evaluate=lambda args, width: args[0] ^ args[1],
        encode=lambda args, width: args[0] ^ args[1],
        template="{0} ^ {1}",
    )


def component_and() -> Component:
    """Bitwise and component ``a & b``."""
    return Component(
        name="and",
        arity=2,
        evaluate=lambda args, width: args[0] & args[1],
        encode=lambda args, width: args[0] & args[1],
        template="{0} & {1}",
    )


def component_or() -> Component:
    """Bitwise or component ``a | b``."""
    return Component(
        name="or",
        arity=2,
        evaluate=lambda args, width: args[0] | args[1],
        encode=lambda args, width: args[0] | args[1],
        template="{0} | {1}",
    )


def component_not() -> Component:
    """Bitwise complement component ``~a``."""
    return Component(
        name="not",
        arity=1,
        evaluate=lambda args, width: ~args[0],
        encode=lambda args, width: ~args[0],
        template="~{0}",
    )


def component_neg() -> Component:
    """Two's-complement negation component ``-a``."""
    return Component(
        name="neg",
        arity=1,
        evaluate=lambda args, width: -args[0],
        encode=lambda args, width: -args[0],
        template="-{0}",
    )


def component_increment() -> Component:
    """Increment component ``a + 1``."""
    return Component(
        name="inc",
        arity=1,
        evaluate=lambda args, width: args[0] + 1,
        encode=lambda args, width: args[0] + bv_const(1, args[0].width),
        template="{0} + 1",
    )


def component_decrement() -> Component:
    """Decrement component ``a - 1``."""
    return Component(
        name="dec",
        arity=1,
        evaluate=lambda args, width: args[0] - 1,
        encode=lambda args, width: args[0] - bv_const(1, args[0].width),
        template="{0} - 1",
    )


def component_shift_left(amount: int) -> Component:
    """Left shift by the constant ``amount`` (``a << amount``)."""
    if amount < 0:
        raise ReproError("shift amount must be non-negative")
    return Component(
        name=f"shl{amount}",
        arity=1,
        evaluate=lambda args, width: 0 if amount >= width else args[0] << amount,
        encode=lambda args, width: bv_shl(args[0], bv_const(amount, args[0].width)),
        template=f"{{0}} << {amount}",
    )


def component_shift_right(amount: int) -> Component:
    """Logical right shift by the constant ``amount`` (``a >> amount``)."""
    if amount < 0:
        raise ReproError("shift amount must be non-negative")
    return Component(
        name=f"shr{amount}",
        arity=1,
        evaluate=lambda args, width: 0 if amount >= width else args[0] >> amount,
        encode=lambda args, width: bv_lshr(args[0], bv_const(amount, args[0].width)),
        template=f"{{0}} >> {amount}",
    )


def component_constant(value: int) -> Component:
    """A constant-producing component (arity 0)."""
    return Component(
        name=f"const{value}",
        arity=0,
        evaluate=lambda args, width: value,
        encode=lambda args, width: bv_const(value, width),
        template=str(value),
    )


def component_is_zero() -> Component:
    """Comparison component ``(a == 0) ? 1 : 0``."""
    return Component(
        name="iszero",
        arity=1,
        evaluate=lambda args, width: int(args[0] == 0),
        encode=lambda args, width: bv_ite(
            args[0].eq(bv_const(0, args[0].width)),
            bv_const(1, args[0].width),
            bv_const(0, args[0].width),
        ),
        template="({0} == 0)",
    )


def component_select() -> Component:
    """Multiplexer component ``c != 0 ? a : b``."""
    return Component(
        name="select",
        arity=3,
        evaluate=lambda args, width: args[1] if args[0] != 0 else args[2],
        encode=lambda args, width: bv_ite(
            args[0].ne(bv_const(0, args[0].width)), args[1], args[2]
        ),
        template="({0} ? {1} : {2})",
    )


# ---------------------------------------------------------------------------
# Library builders
# ---------------------------------------------------------------------------


def standard_library() -> list[Component]:
    """A general-purpose component library (ICSE'10-style primitives)."""
    return [
        component_add(),
        component_sub(),
        component_xor(),
        component_and(),
        component_or(),
        component_not(),
        component_neg(),
        component_increment(),
    ]


def interchange_library() -> list[Component]:
    """Library for the Figure 8 / P1 benchmark: three XOR components.

    The XOR-swap idiom uses exactly three exclusive-or operations, so the
    library is the multiset ``{xor, xor, xor}`` (every library component is
    used exactly once in the synthesized program).
    """
    return [component_xor(), component_xor(), component_xor()]


def multiply45_library() -> list[Component]:
    """Library for the Figure 8 / P2 benchmark: shifts and adds.

    ``45 * y = (y << 2 + y) << 3 + (y << 2 + y)`` needs two shifts (by 2
    and by 3) and two additions.
    """
    return [
        component_shift_left(2),
        component_add(),
        component_shift_left(3),
        component_add(),
    ]


def insufficient_multiply45_library() -> list[Component]:
    """A deliberately insufficient library for the Figure 7 experiment.

    The shift-by-3 component is withheld, so no composition of the library
    realises multiplication by 45; the synthesizer must either report
    infeasibility or produce a program that is consistent with the seen
    examples but not equivalent to the oracle.
    """
    return [component_shift_left(2), component_add(), component_add()]
