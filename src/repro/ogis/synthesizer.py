"""Oracle-guided component-based program synthesis (paper Section 4.2).

The sciductive loop:

1. seed the example set with one or more randomly chosen inputs and their
   oracle outputs;
2. ask the deductive engine (SMT) for a program consistent with all
   examples — if none exists, report infeasibility (Figure 7, left branch);
3. ask for a *distinguishing input*: an input on which some other
   consistent program disagrees with the candidate;
4. if none exists, the candidate is semantically unique among consistent
   programs — return it;
5. otherwise query the I/O oracle on the distinguishing input, add the new
   example, and repeat.

The loop is motivated by the optimal-teaching-sequence characterisation of
Goldman & Kearns: each distinguishing input removes at least one
behaviourally distinct competitor, so the number of iterations is bounded
by the teaching dimension of the concept class (small in practice — the
paper reports sub-second synthesis for both Figure 8 benchmarks).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.exceptions import BudgetExceededError, UnrealizableError
from repro.core.hypothesis import (
    HypothesisValidityEvidence,
    PredicateHypothesis,
    StructureHypothesis,
)
from repro.core.procedure import SciductionProcedure, SciductionResult
from repro.ogis.components import Component
from repro.ogis.encoding import IOExample, SynthesisEncoder
from repro.ogis.oracle import ProgramIOOracle
from repro.ogis.program import LoopFreeProgram


def component_library_hypothesis(library: Sequence[Component]) -> StructureHypothesis:
    """The structure hypothesis of Section 4: loop-free compositions of L."""
    names = sorted(component.name for component in library)

    def predicate(program: LoopFreeProgram) -> bool:
        used = sorted(instance.component.name for instance in program.instances)
        return used == names

    return PredicateHypothesis(
        predicate,
        name="loop-free-composition-of-library",
        strict=True,
        description=(
            "loop-free programs composed of the component library "
            f"{{{', '.join(names)}}} (each component used exactly once)"
        ),
    )


@dataclass
class SynthesisTrace:
    """Record of one OGIS run (for reports and the Figure 8 benchmark)."""

    examples: list[IOExample] = field(default_factory=list)
    candidates: list[LoopFreeProgram] = field(default_factory=list)
    distinguishing_inputs: list[tuple[int, ...]] = field(default_factory=list)
    iterations: int = 0
    oracle_queries: int = 0


class OgisSynthesizer(SciductionProcedure[LoopFreeProgram]):
    """Oracle-guided inductive synthesis of loop-free programs.

    Args:
        library: the component library L (structure hypothesis).
        oracle: the I/O oracle (e.g. the obfuscated program).
        width: bit width used during synthesis (see
            :class:`~repro.ogis.encoding.SynthesisEncoder`).
        max_iterations: bound on candidate/distinguishing-input rounds.
        initial_examples: number of random seed inputs queried up front.
        seed: RNG seed for the random seed inputs.
        reencode_each_check: forwarded to the encoder's SMT solvers; when
            True each deductive query re-bit-blasts its whole encoding
            instead of reusing the persistent incremental solvers (kept as
            a benchmark baseline).  *Deprecated*: prefer ``config``.
        solver_options: forwarded to the encoder's SMT solvers (the
            perf-suite ablation knobs, see
            :class:`~repro.ogis.encoding.SynthesisEncoder`).
            *Deprecated*: prefer ``config``.
        config: an :class:`~repro.api.config.EngineConfig` carrying all
            solver flags in one place; the preferred entry point is
            :class:`repro.api.SciductionEngine` with a
            :class:`~repro.api.problems.DeobfuscationProblem`, which
            builds this procedure with a pooled solver.
        solver_factory: factory for the encoder's shared solver (used by
            the engine's :class:`~repro.api.pool.SolverPool`).
        examples: oracle-verified I/O examples to seed the loop with —
            typically the ``partial["examples"]`` payload of an earlier
            :class:`~repro.core.exceptions.BudgetExceededError`, making
            budget-exhausted jobs resumable.  When given, the random
            initial-example phase is skipped (the loop already has
            evidence to work from).
    """

    name = "oracle-guided-component-synthesis"

    def __init__(
        self,
        library: Sequence[Component],
        oracle: ProgramIOOracle,
        width: int | None = None,
        max_iterations: int = 32,
        initial_examples: int = 1,
        seed: int = 0,
        reencode_each_check: bool = False,
        solver_options: dict | None = None,
        config=None,
        solver_factory=None,
        examples: Sequence[IOExample] | None = None,
    ):
        self.library = list(library)
        self.oracle = oracle
        self.width = width if width is not None else min(oracle.width, 8)
        self.encoder = SynthesisEncoder(
            self.library,
            num_inputs=oracle.num_inputs,
            num_outputs=oracle.num_outputs,
            width=self.width,
            reencode_each_check=reencode_each_check,
            solver_options=solver_options,
            config=config,
            solver_factory=solver_factory,
        )
        self.max_iterations = max_iterations
        self.initial_examples = max(1, initial_examples)
        self._rng = random.Random(seed)
        self.trace = SynthesisTrace()
        if examples:
            mask = (1 << self.width) - 1
            self.trace.examples.extend(
                IOExample(
                    inputs=tuple(int(value) & mask for value in example.inputs),
                    outputs=tuple(int(value) & mask for value in example.outputs),
                )
                for example in examples
            )
        super().__init__(
            hypothesis=component_library_hypothesis(self.library),
            inductive=None,
            deductive=None,
        )

    # -- soundness -----------------------------------------------------------

    def hypothesis_evidence(self) -> HypothesisValidityEvidence:
        evidence = HypothesisValidityEvidence(
            hypothesis_name=self.hypothesis.name,
            proved=False,
            argument=(
                "library sufficiency is assumed; when a reference program is "
                "available, semantic_difference() provides an a-posteriori check"
            ),
        )
        evidence.checked_instances = len(self.trace.examples)
        return evidence

    def soundness_argument(self) -> str:
        return (
            "if the library can express a program equivalent to the oracle, the "
            "loop terminates only when no consistent program disagrees with the "
            "candidate on any input, hence the candidate is equivalent to the "
            "oracle (paper Sec. 4.3 / Theorem 4 of the ICSE'10 paper)"
        )

    # -- the OGIS loop ------------------------------------------------------------

    def _random_input(self) -> tuple[int, ...]:
        mask = (1 << self.width) - 1
        return tuple(
            self._rng.randint(0, mask) for _ in range(self.oracle.num_inputs)
        )

    def _query_oracle(self, inputs: tuple[int, ...]) -> IOExample:
        outputs = self.oracle.query(inputs)
        mask = (1 << self.width) - 1
        example = IOExample(
            inputs=tuple(value & mask for value in inputs),
            outputs=tuple(value & mask for value in outputs),
        )
        self.trace.examples.append(example)
        self.trace.oracle_queries += 1
        return example

    def _attach_partial(self, error: BudgetExceededError) -> BudgetExceededError:
        """Stamp the learned example set onto a budget error (resumability).

        Every example in the trace is oracle-verified, so an interrupted
        run's evidence can seed a resubmission (see the ``examples``
        constructor argument) instead of being discarded.
        """
        partial = dict(error.partial or {})
        partial["examples"] = [
            [list(example.inputs), list(example.outputs)]
            for example in self.trace.examples
        ]
        partial["iterations"] = self.trace.iterations
        error.partial = partial
        return error

    def synthesize(self) -> LoopFreeProgram:
        """Run the OGIS loop and return the synthesized program.

        Raises:
            UnrealizableError: when no composition of the library is
                consistent with the gathered examples.
            BudgetExceededError: when ``max_iterations`` is exhausted, or
                when a solver-level conflict budget / deadline preempts a
                query; either way the error carries the learned example
                set in its ``partial`` payload so the job can be resumed.
        """
        if not self.trace.examples:
            seen: set[tuple[int, ...]] = set()
            for _ in range(self.initial_examples):
                candidate_input = self._random_input()
                while candidate_input in seen:
                    candidate_input = self._random_input()
                seen.add(candidate_input)
                self._query_oracle(candidate_input)
        try:
            for _ in range(self.max_iterations):
                self.trace.iterations += 1
                candidate = self.encoder.synthesize(self.trace.examples)
                self.trace.candidates.append(candidate)
                distinguishing = self.encoder.distinguishing_input(
                    self.trace.examples, candidate
                )
                if distinguishing is None:
                    candidate.input_names = tuple(
                        f"in{i}" for i in range(self.oracle.num_inputs)
                    )
                    return candidate
                self.trace.distinguishing_inputs.append(distinguishing)
                self._query_oracle(distinguishing)
        except BudgetExceededError as error:
            # SMT-level budgets (conflicts/deadline) surface here; keep the
            # evidence gathered so far attached to the error.
            raise self._attach_partial(error)
        raise self._attach_partial(
            BudgetExceededError(
                f"OGIS did not converge within {self.max_iterations} iterations"
            )
        )

    # -- SciductionProcedure interface ------------------------------------------------

    def describe(self) -> dict[str, str]:
        return {
            "procedure": self.name,
            "H": self.hypothesis.describe(),
            "I": "learning from distinguishing inputs (I/O examples)",
            "D": "SMT (QF_BV) solving for candidate programs and distinguishing inputs",
        }

    def _run(self, **_: object) -> SciductionResult[LoopFreeProgram]:
        try:
            program = self.synthesize()
        except UnrealizableError:
            return SciductionResult(
                success=False,
                artifact=None,
                iterations=self.trace.iterations,
                oracle_queries=self.trace.oracle_queries,
                details={"outcome": "infeasibility-reported"},
            )
        smt_statistics = self.encoder.smt_statistics()
        return SciductionResult(
            success=True,
            artifact=program,
            iterations=self.trace.iterations,
            oracle_queries=self.trace.oracle_queries,
            details={
                "program": program.pretty(),
                "synthesis_queries": self.encoder.statistics.synthesis_queries,
                "distinguishing_queries": self.encoder.statistics.distinguishing_queries,
                "smt_variables_generated": smt_statistics.variables_generated,
                "smt_clauses_generated": smt_statistics.clauses_generated,
            },
        )
