"""Oracle-guided component-based program synthesis (paper Section 4.2).

The sciductive loop:

1. seed the example set with one or more randomly chosen inputs and their
   oracle outputs;
2. ask the deductive engine (SMT) for a program consistent with all
   examples — if none exists, report infeasibility (Figure 7, left branch);
3. ask for a *distinguishing input*: an input on which some other
   consistent program disagrees with the candidate;
4. if none exists, the candidate is semantically unique among consistent
   programs — return it;
5. otherwise query the I/O oracle on the distinguishing input, add the new
   example, and repeat.

The loop is motivated by the optimal-teaching-sequence characterisation of
Goldman & Kearns: each distinguishing input removes at least one
behaviourally distinct competitor, so the number of iterations is bounded
by the teaching dimension of the concept class (small in practice — the
paper reports sub-second synthesis for both Figure 8 benchmarks).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.exceptions import BudgetExceededError, UnrealizableError
from repro.core.hypothesis import (
    HypothesisValidityEvidence,
    PredicateHypothesis,
    StructureHypothesis,
)
from repro.core.procedure import SciductionProcedure, SciductionResult
from repro.ogis.components import Component
from repro.ogis.encoding import IOExample, SynthesisEncoder
from repro.ogis.oracle import ProgramIOOracle
from repro.ogis.program import LoopFreeProgram


def component_library_hypothesis(library: Sequence[Component]) -> StructureHypothesis:
    """The structure hypothesis of Section 4: loop-free compositions of L."""
    names = sorted(component.name for component in library)

    def predicate(program: LoopFreeProgram) -> bool:
        used = sorted(instance.component.name for instance in program.instances)
        return used == names

    return PredicateHypothesis(
        predicate,
        name="loop-free-composition-of-library",
        strict=True,
        description=(
            "loop-free programs composed of the component library "
            f"{{{', '.join(names)}}} (each component used exactly once)"
        ),
    )


@dataclass
class SynthesisTrace:
    """Record of one OGIS run (for reports and the Figure 8 benchmark)."""

    examples: list[IOExample] = field(default_factory=list)
    candidates: list[LoopFreeProgram] = field(default_factory=list)
    distinguishing_inputs: list[tuple[int, ...]] = field(default_factory=list)
    iterations: int = 0
    oracle_queries: int = 0


class OgisSynthesizer(SciductionProcedure[LoopFreeProgram]):
    """Oracle-guided inductive synthesis of loop-free programs.

    Args:
        library: the component library L (structure hypothesis).
        oracle: the I/O oracle (e.g. the obfuscated program).
        width: bit width used during synthesis (see
            :class:`~repro.ogis.encoding.SynthesisEncoder`).
        max_iterations: bound on candidate/distinguishing-input rounds.
        initial_examples: number of random seed inputs queried up front.
        seed: RNG seed for the random seed inputs.
        reencode_each_check: forwarded to the encoder's SMT solvers; when
            True each deductive query re-bit-blasts its whole encoding
            instead of reusing the persistent incremental solvers (kept as
            a benchmark baseline).  *Deprecated*: prefer ``config``.
        solver_options: forwarded to the encoder's SMT solvers (the
            perf-suite ablation knobs, see
            :class:`~repro.ogis.encoding.SynthesisEncoder`).
            *Deprecated*: prefer ``config``.
        config: an :class:`~repro.api.config.EngineConfig` carrying all
            solver flags in one place; the preferred entry point is
            :class:`repro.api.SciductionEngine` with a
            :class:`~repro.api.problems.DeobfuscationProblem`, which
            builds this procedure with a pooled solver.
        solver_factory: factory for the encoder's shared solver (used by
            the engine's :class:`~repro.api.pool.SolverPool`).
        examples: oracle-verified I/O examples to seed the loop with —
            typically the ``partial["examples"]`` payload of an earlier
            :class:`~repro.core.exceptions.BudgetExceededError`, making
            budget-exhausted jobs resumable.  When given, the random
            initial-example phase is skipped (the loop already has
            evidence to work from).
    """

    name = "oracle-guided-component-synthesis"

    def __init__(
        self,
        library: Sequence[Component],
        oracle: ProgramIOOracle,
        width: int | None = None,
        max_iterations: int = 32,
        initial_examples: int = 1,
        seed: int = 0,
        reencode_each_check: bool = False,
        solver_options: dict | None = None,
        config=None,
        solver_factory=None,
        examples: Sequence[IOExample] | None = None,
    ):
        self.library = list(library)
        self.oracle = oracle
        self.width = width if width is not None else min(oracle.width, 8)
        self._config = config
        self._solver_factory = solver_factory
        self.encoder = SynthesisEncoder(
            self.library,
            num_inputs=oracle.num_inputs,
            num_outputs=oracle.num_outputs,
            width=self.width,
            reencode_each_check=reencode_each_check,
            solver_options=solver_options,
            config=config,
            solver_factory=solver_factory,
        )
        self.max_iterations = max_iterations
        self.initial_examples = max(1, initial_examples)
        self._rng = random.Random(seed)
        self.trace = SynthesisTrace()
        # Speculative-OGIS lane state (see _launch_speculation): the
        # replica lease/encoder live for one synthesize() call; win/loss
        # counters mirror the lease's intra-job counters for tests.
        self._spec_lease = None
        self._spec_encoder: SynthesisEncoder | None = None
        self._spec_task = None
        self._spec_disabled = False
        self.speculation_wins = 0
        self.speculation_losses = 0
        if examples:
            mask = (1 << self.width) - 1
            self.trace.examples.extend(
                IOExample(
                    inputs=tuple(int(value) & mask for value in example.inputs),
                    outputs=tuple(int(value) & mask for value in example.outputs),
                )
                for example in examples
            )
        super().__init__(
            hypothesis=component_library_hypothesis(self.library),
            inductive=None,
            deductive=None,
        )

    # -- soundness -----------------------------------------------------------

    def hypothesis_evidence(self) -> HypothesisValidityEvidence:
        evidence = HypothesisValidityEvidence(
            hypothesis_name=self.hypothesis.name,
            proved=False,
            argument=(
                "library sufficiency is assumed; when a reference program is "
                "available, semantic_difference() provides an a-posteriori check"
            ),
        )
        evidence.checked_instances = len(self.trace.examples)
        return evidence

    def soundness_argument(self) -> str:
        return (
            "if the library can express a program equivalent to the oracle, the "
            "loop terminates only when no consistent program disagrees with the "
            "candidate on any input, hence the candidate is equivalent to the "
            "oracle (paper Sec. 4.3 / Theorem 4 of the ICSE'10 paper)"
        )

    # -- the OGIS loop ------------------------------------------------------------

    def _random_input(self) -> tuple[int, ...]:
        mask = (1 << self.width) - 1
        return tuple(
            self._rng.randint(0, mask) for _ in range(self.oracle.num_inputs)
        )

    def _query_oracle(self, inputs: tuple[int, ...]) -> IOExample:
        outputs = self.oracle.query(inputs)
        mask = (1 << self.width) - 1
        example = IOExample(
            inputs=tuple(value & mask for value in inputs),
            outputs=tuple(value & mask for value in outputs),
        )
        self.trace.examples.append(example)
        self.trace.oracle_queries += 1
        return example

    def _attach_partial(self, error: BudgetExceededError) -> BudgetExceededError:
        """Stamp the learned example set onto a budget error (resumability).

        Every example in the trace is oracle-verified, so an interrupted
        run's evidence can seed a resubmission (see the ``examples``
        constructor argument) instead of being discarded.
        """
        partial = dict(error.partial or {})
        partial["examples"] = [
            [list(example.inputs), list(example.outputs)]
            for example in self.trace.examples
        ]
        partial["iterations"] = self.trace.iterations
        error.partial = partial
        return error

    # -- speculative lane ---------------------------------------------------------

    def _speculation_available(self) -> bool:
        """Whether the speculative lane can (still) run.

        Requires ``config.speculative_ogis`` plus a pooled lease that can
        hand out replica sessions; a lane-side failure (fault drill,
        budget) permanently disables speculation for the rest of the run.
        """
        return (
            not self._spec_disabled
            and bool(getattr(self._config, "speculative_ogis", False))
            and self._solver_factory is not None
            and getattr(self._solver_factory, "replica", None) is not None
        )

    def _launch_speculation(self, candidate: LoopFreeProgram):
        """Start the speculative round for ``candidate`` on the replica lane.

        The lane re-runs the distinguishing-input query for the current
        candidate on a *replica* session, queries the oracle on its own
        answer (silently — the committed trace's ``oracle_queries`` never
        sees it; the oracle is a pure function, so the extra call is
        unobservable), and pre-solves the synthesis query for the next
        candidate under a push scope.  Everything it computes is
        throwaway: the primary session's sequential trace alone decides
        what is committed, which is what makes results byte-identical
        with speculation on or off.  Returns the running
        :class:`~repro.api.intra.SpeculativeTask` (or ``None``).
        """
        if not self._speculation_available():
            return None
        from repro.api.intra import SpeculativeTask
        from repro.testing.faults import fault_point

        if self._spec_encoder is None:
            self._spec_lease = self._solver_factory.replica()
            self._spec_encoder = SynthesisEncoder(
                self.library,
                num_inputs=self.oracle.num_inputs,
                num_outputs=self.oracle.num_outputs,
                width=self.width,
                config=self._config,
                solver_factory=self._spec_lease,
            )
            # Base-scope and intern-scope bookkeeping must happen on the
            # coordinating thread (global LIFO); the speculative thread
            # only ever extends the example set and runs checks.
            self._spec_encoder.prepare(self.trace.examples)
        encoder = self._spec_encoder
        committed = list(self.trace.examples)
        mask = (1 << self.width) - 1
        oracle = self.oracle

        def speculate() -> IOExample | None:
            fault_point("ogis.speculate")
            spec_input = encoder.distinguishing_input(committed, candidate)
            if spec_input is None:
                return None
            # Bypass Oracle.query(): the lane must not charge the query
            # counter or the max_queries budget — both belong to the
            # committed trace, and a speculative charge could change when
            # the committed loop hits its budget.
            outputs = oracle._query(spec_input)
            example = IOExample(
                inputs=tuple(int(value) & mask for value in spec_input),
                outputs=tuple(int(value) & mask for value in outputs),
            )
            # Pre-solve candidate k+1 against the speculated example; the
            # program itself is discarded (only the primary's sequential
            # trace commits candidates), so UNSAT is fine too.
            encoder.speculative_synthesis(committed, example)
            return example

        self._spec_task = SpeculativeTask(speculate, name="ogis-speculate")
        return self._spec_task

    def _score_speculation(
        self,
        outcome: tuple[IOExample | None, BaseException | None],
        committed: IOExample | None,
    ) -> None:
        """Compare the joined speculative outcome with the committed one.

        A *win* means the lane predicted exactly what the primary loop
        committed (same distinguishing example, or agreement that none
        exists) — a deterministic equality, never a wall-clock race.  A
        lane-side error counts as a loss and disables speculation.
        """
        speculated, error = outcome
        if error is not None:
            self._spec_disabled = True
            win = False
        else:
            win = speculated == committed
        if win:
            self.speculation_wins += 1
        else:
            self.speculation_losses += 1
        count_intra = getattr(self._solver_factory, "count_intra", None)
        if count_intra is not None:
            count_intra("speculation_wins" if win else "speculation_losses")

    def _release_speculation(self) -> None:
        """Return the replica lease to the pool (LIFO: before the primary).

        Any in-flight speculative task is joined first — the pool resets
        a released session, which must never race a lane still using it
        (e.g. when the *primary* query raised mid-overlap).
        """
        if self._spec_task is not None:
            self._spec_task.outcome()
            self._spec_task = None
        if self._spec_lease is not None:
            self._solver_factory.release_replica(self._spec_lease)
            self._spec_lease = None
            self._spec_encoder = None

    def synthesize(self) -> LoopFreeProgram:
        """Run the OGIS loop and return the synthesized program.

        Raises:
            UnrealizableError: when no composition of the library is
                consistent with the gathered examples.
            BudgetExceededError: when ``max_iterations`` is exhausted, or
                when a solver-level conflict budget / deadline preempts a
                query; either way the error carries the learned example
                set in its ``partial`` payload so the job can be resumed.
        """
        if not self.trace.examples:
            seen: set[tuple[int, ...]] = set()
            for _ in range(self.initial_examples):
                candidate_input = self._random_input()
                while candidate_input in seen:
                    candidate_input = self._random_input()
                seen.add(candidate_input)
                self._query_oracle(candidate_input)
        try:
            for _ in range(self.max_iterations):
                self.trace.iterations += 1
                candidate = self.encoder.synthesize(self.trace.examples)
                self.trace.candidates.append(candidate)
                # Overlap: the speculative lane re-answers this candidate's
                # distinguishing query (plus the next synthesis round) on a
                # replica session while the primary session runs the
                # committed query below.  The lane is joined before the
                # primary's oracle call so the oracle never runs
                # concurrently with itself.
                task = self._launch_speculation(candidate)
                distinguishing = self.encoder.distinguishing_input(
                    self.trace.examples, candidate
                )
                speculated = task.outcome() if task is not None else None
                if distinguishing is None:
                    if speculated is not None:
                        self._score_speculation(speculated, None)
                    candidate.input_names = tuple(
                        f"in{i}" for i in range(self.oracle.num_inputs)
                    )
                    return candidate
                self.trace.distinguishing_inputs.append(distinguishing)
                example = self._query_oracle(distinguishing)
                if speculated is not None:
                    self._score_speculation(speculated, example)
        except BudgetExceededError as error:
            # SMT-level budgets (conflicts/deadline) surface here; keep the
            # evidence gathered so far attached to the error.
            raise self._attach_partial(error)
        finally:
            self._release_speculation()
        raise self._attach_partial(
            BudgetExceededError(
                f"OGIS did not converge within {self.max_iterations} iterations"
            )
        )

    # -- SciductionProcedure interface ------------------------------------------------

    def describe(self) -> dict[str, str]:
        return {
            "procedure": self.name,
            "H": self.hypothesis.describe(),
            "I": "learning from distinguishing inputs (I/O examples)",
            "D": "SMT (QF_BV) solving for candidate programs and distinguishing inputs",
        }

    def _run(self, **_: object) -> SciductionResult[LoopFreeProgram]:
        try:
            program = self.synthesize()
        except UnrealizableError:
            return SciductionResult(
                success=False,
                artifact=None,
                iterations=self.trace.iterations,
                oracle_queries=self.trace.oracle_queries,
                details={"outcome": "infeasibility-reported"},
            )
        smt_statistics = self.encoder.smt_statistics()
        return SciductionResult(
            success=True,
            artifact=program,
            iterations=self.trace.iterations,
            oracle_queries=self.trace.oracle_queries,
            details={
                "program": program.pretty(),
                "synthesis_queries": self.encoder.statistics.synthesis_queries,
                "distinguishing_queries": self.encoder.statistics.distinguishing_queries,
                "smt_variables_generated": smt_statistics.variables_generated,
                "smt_clauses_generated": smt_statistics.clauses_generated,
            },
        )
