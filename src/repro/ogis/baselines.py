"""Baseline synthesizers compared against the OGIS loop.

Two baselines are provided for the ablation benchmarks:

* :class:`EnumerativeSynthesizer` — exhaustively enumerate all well-formed
  programs over the library (all assignments of component output lines and
  argument lines), test each against the accumulated I/O examples, and
  keep querying the oracle on random inputs until a single behaviour
  remains.  Its cost grows factorially with the library size, which is the
  scaling argument for the SMT-based approach.
* :class:`RandomExampleOgis` — the OGIS encoder driven by *random* oracle
  queries instead of distinguishing inputs; it shows why actively chosen
  examples (the inductive engine selecting its own queries) matter for
  convergence.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.exceptions import BudgetExceededError, UnrealizableError
from repro.ogis.components import Component
from repro.ogis.encoding import IOExample, SynthesisEncoder
from repro.ogis.oracle import ProgramIOOracle
from repro.ogis.program import ComponentInstance, LoopFreeProgram


@dataclass
class BaselineResult:
    """Outcome of a baseline synthesis run."""

    program: LoopFreeProgram | None
    oracle_queries: int
    candidates_tested: int


def enumerate_programs(
    library: Sequence[Component], num_inputs: int, num_outputs: int, width: int
) -> Iterator[LoopFreeProgram]:
    """Enumerate every well-formed loop-free program over the library.

    Programs differ in the order of the components (assignment of output
    lines), the argument wiring, and the choice of output lines.
    """
    count = len(library)
    lines = num_inputs + count
    for order in itertools.permutations(range(count)):
        # order[position] = component index placed at line num_inputs+position
        output_line = {
            component_index: num_inputs + position
            for position, component_index in enumerate(order)
        }
        argument_choices = []
        for component_index, component in enumerate(library):
            available = range(output_line[component_index])
            argument_choices.append(
                list(itertools.product(available, repeat=component.arity))
            )
        for wiring in itertools.product(*argument_choices):
            instances = [
                ComponentInstance(
                    component=library[component_index],
                    input_lines=wiring[component_index],
                    output_line=output_line[component_index],
                )
                for component_index in range(count)
            ]
            for outputs in itertools.product(range(lines), repeat=num_outputs):
                yield LoopFreeProgram(
                    num_inputs=num_inputs,
                    instances=list(instances),
                    output_lines=outputs,
                    width=width,
                )


class EnumerativeSynthesizer:
    """Brute-force enumeration baseline."""

    name = "enumerative-synthesis"

    def __init__(
        self,
        library: Sequence[Component],
        oracle: ProgramIOOracle,
        width: int = 8,
        max_examples: int = 16,
        seed: int = 0,
    ):
        self.library = list(library)
        self.oracle = oracle
        self.width = width
        self.max_examples = max_examples
        self._rng = random.Random(seed)

    def synthesize(self) -> BaselineResult:
        """Synthesize by enumeration + random oracle examples.

        The example set is grown with random oracle queries until exactly
        one behaviour among the enumerated programs is consistent (or the
        example budget is exhausted, in which case the first consistent
        program is returned).
        """
        mask = (1 << self.width) - 1
        examples: list[IOExample] = []
        candidates_tested = 0
        for round_number in range(self.max_examples):
            inputs = tuple(
                self._rng.randint(0, mask) for _ in range(self.oracle.num_inputs)
            )
            outputs = tuple(v & mask for v in self.oracle.query(inputs))
            examples.append(IOExample(inputs=inputs, outputs=outputs))
            survivors: list[LoopFreeProgram] = []
            behaviours: set[tuple[tuple[int, ...], ...]] = set()
            for program in enumerate_programs(
                self.library, self.oracle.num_inputs, self.oracle.num_outputs, self.width
            ):
                candidates_tested += 1
                if all(
                    program.run(example.inputs, width=self.width) == example.outputs
                    for example in examples
                ):
                    survivors.append(program)
                    signature = tuple(
                        program.run(example.inputs, width=self.width)
                        for example in examples
                    )
                    behaviours.add(signature)
            if not survivors:
                raise UnrealizableError(
                    "no enumerated program is consistent with the examples"
                )
            # Check whether all survivors agree on a probe set; if so we are
            # done (they are behaviourally indistinguishable on the probes).
            probe_inputs = [
                tuple(self._rng.randint(0, mask) for _ in range(self.oracle.num_inputs))
                for _ in range(8)
            ]
            reference = survivors[0]
            if all(
                all(
                    candidate.run(probe, width=self.width)
                    == reference.run(probe, width=self.width)
                    for probe in probe_inputs
                )
                for candidate in survivors[1:]
            ):
                return BaselineResult(
                    program=reference,
                    oracle_queries=round_number + 1,
                    candidates_tested=candidates_tested,
                )
        return BaselineResult(
            program=survivors[0] if survivors else None,
            oracle_queries=self.max_examples,
            candidates_tested=candidates_tested,
        )


class RandomExampleOgis:
    """The SMT encoder driven by random (not distinguishing) oracle queries."""

    name = "ogis-random-examples"

    def __init__(
        self,
        library: Sequence[Component],
        oracle: ProgramIOOracle,
        width: int = 8,
        max_examples: int = 32,
        seed: int = 0,
    ):
        self.library = list(library)
        self.oracle = oracle
        self.width = width
        self.max_examples = max_examples
        self.encoder = SynthesisEncoder(
            self.library,
            num_inputs=oracle.num_inputs,
            num_outputs=oracle.num_outputs,
            width=width,
        )
        self._rng = random.Random(seed)

    def synthesize(self) -> BaselineResult:
        """Grow the example set randomly until the candidate stops changing.

        Termination criterion: the same candidate behaviour survives three
        consecutive random examples (a heuristic — unlike the OGIS loop,
        random examples give no uniqueness certificate).
        """
        mask = (1 << self.width) - 1
        examples: list[IOExample] = []
        stable_rounds = 0
        last_program: LoopFreeProgram | None = None
        for round_number in range(self.max_examples):
            inputs = tuple(
                self._rng.randint(0, mask) for _ in range(self.oracle.num_inputs)
            )
            outputs = tuple(v & mask for v in self.oracle.query(inputs))
            examples.append(IOExample(inputs=inputs, outputs=outputs))
            program = self.encoder.synthesize(examples)
            if last_program is not None and self.encoder.semantic_difference(
                program, last_program
            ) is None:
                stable_rounds += 1
            else:
                stable_rounds = 0
            last_program = program
            if stable_rounds >= 3:
                return BaselineResult(
                    program=program,
                    oracle_queries=round_number + 1,
                    candidates_tested=self.encoder.statistics.synthesis_queries,
                )
        raise BudgetExceededError(
            "random-example synthesis did not stabilise within the example budget"
        )
