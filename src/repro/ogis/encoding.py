"""SMT encoding of component-based synthesis (the deductive engine of §4).

Implements the location-variable encoding of oracle-guided component-based
program synthesis (Jha, Gulwani, Seshia & Tiwari, ICSE 2010), which the
paper uses as its second demonstration of sciduction:

* every library component gets an *output location* variable and one
  *input location* variable per argument,
* well-formedness constraints force the locations to describe a valid
  straight-line program (distinct component outputs, arguments defined
  before use),
* for each input/output example, value variables are introduced for every
  line and *connection constraints* tie equal locations to equal values,
* the component's bit-vector semantics constrain its output value.

Two queries are built on top of the encoding (paper Section 4.2):

* ``synthesize`` — "does there exist a program consistent with the
  observed examples?"  A model yields the candidate program.
* ``distinguishing_input`` — "does there exist another consistent program
  and an input on which it disagrees with the candidate?"  A model yields
  the next oracle query; UNSAT certifies the candidate is semantically
  unique among consistent programs and the loop stops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.exceptions import BudgetExceededError, UnrealizableError
from repro.ogis.components import Component
from repro.ogis.program import ComponentInstance, LoopFreeProgram
from repro.smt.sat import SatStatistics
from repro.smt.solver import Model, SmtResult, SmtSolver, SmtStatistics
from repro.smt.terms import (
    BitVecTerm,
    BoolTerm,
    BvVar,
    bool_and,
    bool_implies,
    bool_or,
    bv_const,
    bv_var,
)


@dataclass(frozen=True)
class IOExample:
    """One input/output example obtained from the I/O oracle."""

    inputs: tuple[int, ...]
    outputs: tuple[int, ...]


@dataclass
class _LocationVariables:
    """Location variables of one program copy."""

    component_outputs: list[BvVar]
    component_inputs: list[list[BvVar]]
    program_outputs: list[BvVar]


@dataclass
class SynthesisStatistics:
    """Query counters for the encoder."""

    synthesis_queries: int = 0
    distinguishing_queries: int = 0
    sat_results: int = 0
    unsat_results: int = 0


class SynthesisEncoder:
    """Builds and solves the location-variable synthesis constraints.

    Args:
        library: the component library L (each component is used exactly
            once in the synthesized program, per the structure hypothesis).
        num_inputs: number of program inputs.
        num_outputs: number of program outputs.
        width: bit width of all data values during synthesis.  Synthesis at
            a modest width (8 bits by default in the benchmarks) is sound
            for the width-generic component libraries used here and keeps
            the SAT encoding small; final artifacts can be re-checked at
            any width with :meth:`semantic_difference` or the program's
            ``equivalent_to``.
        reencode_each_check: forwarded to the underlying
            :class:`~repro.smt.solver.SmtSolver`; when True each query
            re-bit-blasts its whole encoding (the pre-incremental
            behaviour, kept as a benchmark baseline).  *Deprecated in
            favour of* ``config``.
        solver_options: extra keyword arguments forwarded verbatim to
            every :class:`~repro.smt.solver.SmtSolver` the encoder builds
            (the perf-suite ablation knobs: ``simplify_terms``,
            ``polarity_aware``, ``gc_dead_clauses``).  *Deprecated in
            favour of* ``config``.
        config: an :class:`~repro.api.config.EngineConfig` (or any object
            with a compatible ``solver_options()`` method) providing the
            solver flags in one place; takes precedence over the legacy
            ``reencode_each_check`` / ``solver_options`` kwargs.
        solver_factory: callable returning the :class:`SmtSolver` to use
            for the shared persistent session.  This is how
            :class:`~repro.api.pool.SolverPool` leases a pooled
            incremental solver to the encoder; when provided, the factory
            — not this encoder — owns the solver's configuration, and
            statistics are reported as deltas relative to the state the
            solver was handed over in (per-job accounting).

    The encoder keeps one *persistent* solver across the whole OGIS loop,
    shared by ``synthesize`` and ``distinguishing_input``.  Its base-level
    assertions are the well-formedness constraints, a *symbolic run* of
    the candidate location variables (dataflow over fresh symbolic inputs
    and outputs), and one constraint block per example.  The symbolic-run
    constraints are satisfiability-preserving for the synthesis query —
    the symbolic inputs are unconstrained, and every well-formed program
    produces *some* output on them — so sharing is sound.  The example set
    only ever grows during a run, so each call encodes just the new
    examples on top of the already-blasted skeleton, and the
    per-candidate disagreement constraint of ``distinguishing_input`` is
    passed as a ``check``-time assumption so it never pollutes later
    iterations.  Learned clauses, variable activities, and the
    bit-blaster's structural caches thus survive the whole loop.
    """

    def __init__(
        self,
        library: Sequence[Component],
        num_inputs: int,
        num_outputs: int,
        width: int = 8,
        outputs_from_components: bool = True,
        reencode_each_check: bool = False,
        solver_options: dict | None = None,
        config=None,
        solver_factory: Callable[[], SmtSolver] | None = None,
    ):
        if not library:
            raise UnrealizableError("the component library is empty")
        self.library = list(library)
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.width = width
        if config is None:
            from repro.api.config import EngineConfig

            config = EngineConfig.from_legacy(reencode_each_check, solver_options)
        self._solver_kwargs = config.solver_options()
        self.reencode_each_check = self._solver_kwargs["reencode_each_check"]
        self._solver_factory = solver_factory
        self.num_lines = num_inputs + len(self.library)
        # The encoding compares locations against the constant ``num_lines``
        # (exclusive upper bound), so the location width must be able to
        # represent that value itself, not just the largest line index.
        self.location_width = max(1, math.ceil(math.log2(self.num_lines + 1)))
        #: When True, program outputs must be component output lines (they
        #: cannot simply forward an input), matching the shape of the
        #: programs printed in the paper's Figure 8.
        self.outputs_from_components = outputs_from_components
        self.statistics = SynthesisStatistics()
        # Persistent solver state shared by both query kinds (built lazily).
        self._solver: SmtSolver | None = None
        self._solver_locations: _LocationVariables | None = None
        self._encoded_examples: list[IOExample] = []
        self._symbolic_inputs: list[BvVar] = []
        self._symbolic_outputs: list[BvVar] = []
        # SMT / SAT counters of solvers discarded by _reset_solver, so the
        # statistics methods cover the whole encoder lifetime; the *_base
        # snapshots subtract whatever work a leased (pooled) solver had
        # already done for earlier jobs, so shared solvers report per-job
        # deltas rather than pool-lifetime cumulative counts.
        self._retired_statistics = SmtStatistics()
        self._retired_sat_statistics = SatStatistics()
        self._smt_base = SmtStatistics()
        self._sat_base = SatStatistics()
        self._speculative_tags = 0

    # -- variable factories ------------------------------------------------

    def _locations(self, tag: str) -> _LocationVariables:
        component_outputs = [
            bv_var(f"lout_{tag}_{index}", self.location_width)
            for index in range(len(self.library))
        ]
        component_inputs = [
            [
                bv_var(f"lin_{tag}_{index}_{argument}", self.location_width)
                for argument in range(component.arity)
            ]
            for index, component in enumerate(self.library)
        ]
        program_outputs = [
            bv_var(f"lres_{tag}_{index}", self.location_width)
            for index in range(self.num_outputs)
        ]
        return _LocationVariables(component_outputs, component_inputs, program_outputs)

    def _location_const(self, value: int) -> BitVecTerm:
        return bv_const(value, self.location_width)

    # -- constraint builders ---------------------------------------------------

    def well_formedness(self, locations: _LocationVariables) -> list[BoolTerm]:
        """The psi_wfp constraints: locations describe a valid SSA program."""
        constraints: list[BoolTerm] = []
        lower = self._location_const(self.num_inputs)
        upper = self._location_const(self.num_lines)
        for output in locations.component_outputs:
            constraints.append(output.uge(lower))
            constraints.append(output.ult(upper))
        # Component outputs occupy distinct lines.
        for first in range(len(self.library)):
            for second in range(first + 1, len(self.library)):
                constraints.append(
                    locations.component_outputs[first].ne(
                        locations.component_outputs[second]
                    )
                )
        # Symmetry breaking: identical library components are interchangeable,
        # so force their output lines into increasing order.  This prunes the
        # k! equivalent placements of k copies of the same component.
        for first in range(len(self.library)):
            for second in range(first + 1, len(self.library)):
                if self.library[first].name == self.library[second].name:
                    constraints.append(
                        locations.component_outputs[first].ult(
                            locations.component_outputs[second]
                        )
                    )
                    break  # chaining consecutive copies is sufficient
        # Arguments refer to strictly earlier lines.
        for index, inputs in enumerate(locations.component_inputs):
            for argument in inputs:
                constraints.append(argument.ult(locations.component_outputs[index]))
                constraints.append(argument.ult(upper))
        for output in locations.program_outputs:
            constraints.append(output.ult(upper))
            if self.outputs_from_components:
                constraints.append(output.uge(lower))
        return constraints

    def _dataflow(
        self,
        locations: _LocationVariables,
        input_terms: Sequence[BitVecTerm],
        output_terms: Sequence[BitVecTerm],
        tag: str,
    ) -> list[BoolTerm]:
        """Library semantics plus connection constraints for one run.

        ``input_terms`` / ``output_terms`` are the values on the program's
        input and output lines for this run (constants for concrete
        examples, variables for symbolic runs).
        """
        constraints: list[BoolTerm] = []
        writers: list[tuple[BitVecTerm, BitVecTerm]] = [
            (self._location_const(index), term) for index, term in enumerate(input_terms)
        ]
        readers: list[tuple[BitVecTerm, BitVecTerm]] = []
        for index, component in enumerate(self.library):
            argument_terms = [
                bv_var(f"x_{tag}_{index}_{argument}", self.width)
                for argument in range(component.arity)
            ]
            output_term = bv_var(f"o_{tag}_{index}", self.width)
            constraints.append(
                output_term.eq(component.encode(argument_terms, self.width))
            )
            writers.append((locations.component_outputs[index], output_term))
            for argument, term in enumerate(argument_terms):
                readers.append((locations.component_inputs[index][argument], term))
        for index, term in enumerate(output_terms):
            readers.append((locations.program_outputs[index], term))
        for reader_location, reader_value in readers:
            for writer_location, writer_value in writers:
                constraints.append(
                    bool_implies(
                        reader_location.eq(writer_location),
                        reader_value.eq(writer_value),
                    )
                )
        return constraints

    def example_constraints(
        self, locations: _LocationVariables, example: IOExample, tag: str
    ) -> list[BoolTerm]:
        """Constraints forcing the program to reproduce one I/O example."""
        input_terms = [bv_const(value, self.width) for value in example.inputs]
        output_terms = [bv_const(value, self.width) for value in example.outputs]
        return self._dataflow(locations, input_terms, output_terms, tag)

    # -- program extraction -------------------------------------------------------

    @staticmethod
    def _model_int(solver: SmtSolver, variable: BvVar) -> int:
        value = solver.model_value(variable.name)
        return int(value) if value is not None else 0

    def _program_from_model(
        self, solver: SmtSolver, locations: _LocationVariables
    ) -> LoopFreeProgram:
        # Resolve only the location variables: the persistent solver's
        # blaster also knows every example's value variables, so full
        # model extraction would grow with the example set.
        instances = []
        for index, component in enumerate(self.library):
            output_line = self._model_int(solver, locations.component_outputs[index])
            input_lines = tuple(
                self._model_int(solver, variable)
                for variable in locations.component_inputs[index]
            )
            instances.append(
                ComponentInstance(
                    component=component,
                    input_lines=input_lines,
                    output_line=output_line,
                )
            )
        output_lines = tuple(
            self._model_int(solver, variable) for variable in locations.program_outputs
        )
        return LoopFreeProgram(
            num_inputs=self.num_inputs,
            instances=instances,
            output_lines=output_lines,
            width=self.width,
        )

    # -- persistent solver management -------------------------------------------

    def _skeleton_fingerprint(self) -> str:
        """Identity of the base skeleton (for cross-job base-scope reuse)."""
        names = ",".join(component.name for component in self.library)
        return (
            f"ogis/{names}/w{self.width}/i{self.num_inputs}/o{self.num_outputs}"
            f"/f{int(self.outputs_from_components)}"
        )

    def _reset_solver(self) -> None:
        """(Re)build the shared persistent solver with its base skeleton.

        With a pooled solver lease as the factory, the skeleton
        (well-formedness + symbolic run) lives in a *persistent base
        scope* keyed by :meth:`_skeleton_fingerprint`
        (:meth:`~repro.api.pool.SolverLease.base_session`): a later job of
        the same shape finds the scope still open, skips re-asserting the
        skeleton, and — because the scope's activation literal was never
        falsified — inherits every learned clause the earlier job's
        search derived over it.  That is what converts session reuse from
        an encoding saving into a search saving.
        """
        if self._solver is not None:
            self._retired_statistics = self._retired_statistics.merged_with(
                self._solver.statistics.delta_since(self._smt_base)
            )
            self._retired_sat_statistics = self._retired_sat_statistics.merged_with(
                self._solver.sat_statistics().delta_since(self._sat_base)
            )
        skeleton_ready = False
        base_session = getattr(self._solver_factory, "base_session", None)
        if base_session is not None:
            self._solver, skeleton_ready = base_session(self._skeleton_fingerprint())
        elif self._solver_factory is not None:
            self._solver = self._solver_factory()
        else:
            self._solver = SmtSolver(**self._solver_kwargs)
        self._smt_base = self._solver.statistics.snapshot()
        self._sat_base = self._solver.sat_statistics()
        self._solver_locations = self._locations("s")
        self._encoded_examples = []
        # The skeleton's variable names are deterministic, so on a warm
        # base scope the hash-consed terms rebuilt here are the very
        # objects the persistent solver already knows.
        self._symbolic_inputs = [
            bv_var(f"distinguishing_in_{index}", self.width)
            for index in range(self.num_inputs)
        ]
        self._symbolic_outputs = [
            bv_var(f"alt_out_{index}", self.width) for index in range(self.num_outputs)
        ]
        if skeleton_ready:
            return
        self._solver.add(*self.well_formedness(self._solver_locations))
        # A symbolic run of the candidate program: unconstrained inputs, so
        # these constraints never affect the synthesis query's verdict, but
        # they let distinguishing-input queries ride the same solver.
        self._solver.add(
            *self._dataflow(
                self._solver_locations,
                self._symbolic_inputs,
                self._symbolic_outputs,
                tag="sym",
            )
        )
        if base_session is not None:
            # Seal the skeleton scope for later same-shape jobs and open
            # this job's own scope above it.
            self._solver_factory.seal_base()

    def _synced_solver(
        self, examples: Sequence[IOExample]
    ) -> tuple[SmtSolver, _LocationVariables]:
        """The shared solver with exactly ``examples`` encoded.

        Example tags are derived from the example's position, which is
        stable because callers only ever *extend* the example set (the OGIS
        loop appends one example per iteration); a non-extending call
        rebuilds the solver from scratch.
        """
        encoded = self._encoded_examples
        extends = len(examples) >= len(encoded) and list(
            examples[: len(encoded)]
        ) == encoded
        if self._solver is None or not extends:
            self._reset_solver()
            encoded = self._encoded_examples
        solver, locations = self._solver, self._solver_locations
        assert solver is not None and locations is not None
        for number in range(len(encoded), len(examples)):
            solver.add(
                *self.example_constraints(locations, examples[number], tag=f"e{number}")
            )
            encoded.append(examples[number])
        return solver, locations

    def prepare(self, examples: Sequence[IOExample] = ()) -> None:
        """Force the persistent solver (and its base scope) to exist now.

        Speculative OGIS builds its replica encoder lazily but must open
        the replica's skeleton base scope on the *coordinating* thread —
        intern-scope bookkeeping is a global LIFO — before any query runs
        on the speculative thread.  Idempotent.
        """
        self._synced_solver(list(examples))

    def smt_statistics(self) -> SmtStatistics:
        """SMT work counters over the encoder's lifetime (across resets).

        When the solver came from ``solver_factory`` (a pooled lease),
        only the work done *for this encoder* is counted — the counters
        are deltas against the hand-over snapshot, not the leased
        solver's pool-lifetime totals.
        """
        if self._solver is None:
            return self._retired_statistics
        return self._retired_statistics.merged_with(
            self._solver.statistics.delta_since(self._smt_base)
        )

    def sat_statistics(self) -> SatStatistics:
        """CDCL counters over the encoder's lifetime (perf telemetry).

        Like :meth:`smt_statistics`, counters of solvers retired by a
        reset are accumulated and pooled solvers report per-encoder
        deltas.
        """
        if self._solver is None:
            return self._retired_sat_statistics
        return self._retired_sat_statistics.merged_with(
            self._solver.sat_statistics().delta_since(self._sat_base)
        )

    # -- queries --------------------------------------------------------------------

    def synthesize(self, examples: Sequence[IOExample]) -> LoopFreeProgram:
        """Find a program consistent with every example.

        Consecutive calls with a growing example set reuse the persistent
        solver, encoding only the new examples.

        Raises:
            UnrealizableError: when no composition of the library matches
                the examples (the "infeasibility reported" branch of the
                paper's Figure 7).
            BudgetExceededError: when the solver's conflict budget or
                deadline expires before the query is decided.
        """
        self.statistics.synthesis_queries += 1
        solver, locations = self._synced_solver(examples)
        verdict = solver.check()
        if verdict is SmtResult.UNKNOWN:
            raise BudgetExceededError(
                "synthesis query undecided: solver budget or deadline exhausted"
            )
        if verdict is not SmtResult.SAT:
            self.statistics.unsat_results += 1
            raise UnrealizableError(
                "no loop-free composition of the library is consistent with the examples"
            )
        self.statistics.sat_results += 1
        return self._program_from_model(solver, locations)

    def speculative_synthesis(
        self, examples: Sequence[IOExample], extra: IOExample
    ) -> LoopFreeProgram | None:
        """Synthesis against ``examples`` plus one *uncommitted* example.

        This is the speculative-OGIS query: the extra example is encoded
        inside a push/pop scope with a tag never reused for committed
        examples, so the persistent solver's committed example set is
        untouched whether or not the speculation pans out.  Returns the
        candidate, or ``None`` when the extended example set is
        unrealizable (the committed loop will discover that itself if the
        speculated example is confirmed).

        Raises:
            BudgetExceededError: when the query is undecided.
        """
        self.statistics.synthesis_queries += 1
        solver, locations = self._synced_solver(examples)
        tag = f"spec{self._speculative_tags}"
        self._speculative_tags += 1
        solver.push()
        try:
            solver.add(*self.example_constraints(locations, extra, tag=tag))
            verdict = solver.check()
            if verdict is SmtResult.UNKNOWN:
                raise BudgetExceededError(
                    "speculative synthesis undecided: solver budget or "
                    "deadline exhausted"
                )
            if verdict is not SmtResult.SAT:
                self.statistics.unsat_results += 1
                return None
            self.statistics.sat_results += 1
            return self._program_from_model(solver, locations)
        finally:
            solver.pop()

    def _symbolic_execution(
        self, program: LoopFreeProgram, input_terms: Sequence[BitVecTerm]
    ) -> list[BitVecTerm]:
        """Symbolically execute a concrete program on symbolic inputs."""
        values: list[BitVecTerm] = list(input_terms)
        for instance in program.instances:
            arguments = [values[line] for line in instance.input_lines]
            values.append(instance.component.encode(arguments, self.width))
        return [values[line] for line in program.output_lines]

    def distinguishing_input(
        self, examples: Sequence[IOExample], candidate: LoopFreeProgram
    ) -> tuple[int, ...] | None:
        """Find an input on which some other consistent program disagrees.

        Returns ``None`` when no such input exists — the candidate is then
        the unique behaviour consistent with the examples and the OGIS loop
        terminates (paper Section 4.2).
        """
        self.statistics.distinguishing_queries += 1
        solver, _ = self._synced_solver(examples)
        candidate_outputs = self._symbolic_execution(candidate, self._symbolic_inputs)
        # The disagreement constraint is specific to this candidate, so it
        # is passed as a check-time assumption rather than asserted: the
        # next iteration's candidate gets a clean slate while the examples
        # and the dataflow skeleton stay encoded.
        disagreement = bool_or(
            *(
                alternative.ne(candidate_output)
                for alternative, candidate_output in zip(
                    self._symbolic_outputs, candidate_outputs
                )
            )
        )
        verdict = solver.check(disagreement)
        if verdict is SmtResult.UNKNOWN:
            raise BudgetExceededError(
                "distinguishing-input query undecided: solver budget or "
                "deadline exhausted"
            )
        if verdict is not SmtResult.SAT:
            self.statistics.unsat_results += 1
            return None
        self.statistics.sat_results += 1
        return tuple(
            self._model_int(solver, variable) for variable in self._symbolic_inputs
        )

    def semantic_difference(
        self, first: LoopFreeProgram, second: LoopFreeProgram
    ) -> tuple[int, ...] | None:
        """Find an input on which two loop-free programs disagree.

        Used for a-posteriori structure-hypothesis testing (paper Section 6):
        checking a synthesized program against a known reference program is
        an equivalence check, decided here by SMT at the encoder's width.
        Returns a distinguishing input, or ``None`` when the programs are
        equivalent.

        Raises:
            BudgetExceededError: when a conflict budget leaves the
                equivalence query undecided (an undecided check must not
                be reported as "equivalent").
        """
        solver = SmtSolver(**self._solver_kwargs)
        symbolic_inputs = [
            bv_var(f"eqcheck_in_{index}", self.width) for index in range(self.num_inputs)
        ]
        first_outputs = self._symbolic_execution(first, symbolic_inputs)
        second_outputs = self._symbolic_execution(second, symbolic_inputs)
        solver.add(
            bool_or(
                *(
                    left.ne(right)
                    for left, right in zip(first_outputs, second_outputs)
                )
            )
        )
        verdict = solver.check()
        if verdict is SmtResult.UNKNOWN:
            raise BudgetExceededError(
                "equivalence query undecided: solver budget or deadline exhausted"
            )
        if verdict is not SmtResult.SAT:
            return None
        model = solver.model()
        return tuple(int(model.get(variable.name, 0)) for variable in symbolic_inputs)
