"""repro — a reproduction of "Sciduction: Combining Induction, Deduction, and
Structure for Verification and Synthesis" (Sanjit A. Seshia, DAC 2012).

**Start at** :mod:`repro.api`: the unified front door.  One
:class:`~repro.api.engine.SciductionEngine` runs all three of the
paper's applications from declarative, JSON-serializable problem specs,
over a pool of persistent incremental SMT solver sessions::

    from repro.api import (
        DeobfuscationProblem, EngineConfig, SciductionEngine,
        SwitchingLogicProblem, TimingAnalysisProblem,
    )

    engine = SciductionEngine(EngineConfig())
    results = engine.run_batch([
        TimingAnalysisProblem(program="modular_exponentiation",
                              program_args={"exponent_bits": 4,
                                            "word_width": 16},
                              bound=500),
        DeobfuscationProblem(task="multiply45", width=8),
        SwitchingLogicProblem(system="transmission", omega_step=0.1),
    ])

The package is organised as a small family of libraries underneath:

``repro.api``
    The engine facade: :class:`~repro.api.config.EngineConfig` (one
    config surface), the problem-type registry, the
    :class:`~repro.api.pool.SolverPool`, and the job lifecycle
    (``submit`` / ``run_batch`` with budgets, timeouts, cancellation and
    JSON-serializable results).

``repro.core``
    The sciduction framework itself: structure hypotheses, inductive
    inference engines, deductive engines, oracle interfaces, and the
    conditional-soundness bookkeeping described in Section 2 of the paper.

``repro.smt``
    A self-contained SAT + quantifier-free bit-vector (QF_BV) SMT solver
    used as the deductive engine by the GameTime and program-synthesis
    applications (the paper used an off-the-shelf SMT solver; none is
    available offline, so one is implemented here from scratch).

``repro.cfg``
    A structured imperative *task language*, control-flow graphs, loop
    unrolling, path vectors and basis-path extraction (Section 3).

``repro.platform``
    A deterministic cycle-level embedded-platform simulator (RISC-style
    ISA, compiler, in-order pipeline, instruction/data caches) standing in
    for the SimIt-ARM / StrongARM-1100 testbed used by the paper.

``repro.gametime``
    Application 1 — GameTime-style timing analysis (Section 3).

``repro.ogis``
    Application 2 — oracle-guided component-based program synthesis /
    deobfuscation (Section 4).

``repro.hybrid``
    Application 3 — switching-logic synthesis for multi-modal dynamical
    systems (Section 5).

**Migration note.**  The per-application entry points — constructing
:class:`~repro.ogis.synthesizer.OgisSynthesizer`,
:class:`~repro.gametime.analysis.GameTime` or
:class:`~repro.hybrid.synthesis.SwitchingLogicSynthesizer` directly, and
threading ``reencode_each_check`` / ``solver_options`` kwargs through
them — still work but are deprecated as *front doors*: they bypass the
engine's solver pooling, budgets and structured results.  Move the
scattered solver kwargs into one :class:`~repro.api.config.EngineConfig`
and submit a problem spec instead; the rich per-application objects
remain available for in-process exploration via
``ProblemSpec.build()``.
"""

from repro.core import (
    DeductiveEngine,
    InductiveEngine,
    Oracle,
    SciductionProcedure,
    SciductionResult,
    StructureHypothesis,
)

__version__ = "2.0.0"

__all__ = [
    "DeductiveEngine",
    "InductiveEngine",
    "Oracle",
    "SciductionProcedure",
    "SciductionResult",
    "StructureHypothesis",
    "__version__",
]
