"""repro — a reproduction of "Sciduction: Combining Induction, Deduction, and
Structure for Verification and Synthesis" (Sanjit A. Seshia, DAC 2012).

The package is organised as a small family of libraries:

``repro.core``
    The sciduction framework itself: structure hypotheses, inductive
    inference engines, deductive engines, oracle interfaces, and the
    conditional-soundness bookkeeping described in Section 2 of the paper.

``repro.smt``
    A self-contained SAT + quantifier-free bit-vector (QF_BV) SMT solver
    used as the deductive engine by the GameTime and program-synthesis
    applications (the paper used an off-the-shelf SMT solver; none is
    available offline, so one is implemented here from scratch).

``repro.cfg``
    A structured imperative *task language*, control-flow graphs, loop
    unrolling, path vectors and basis-path extraction (Section 3).

``repro.platform``
    A deterministic cycle-level embedded-platform simulator (RISC-style
    ISA, compiler, in-order pipeline, instruction/data caches) standing in
    for the SimIt-ARM / StrongARM-1100 testbed used by the paper.

``repro.gametime``
    Application 1 — GameTime-style timing analysis (Section 3).

``repro.ogis``
    Application 2 — oracle-guided component-based program synthesis /
    deobfuscation (Section 4).

``repro.hybrid``
    Application 3 — switching-logic synthesis for multi-modal dynamical
    systems (Section 5).
"""

from repro.core import (
    DeductiveEngine,
    InductiveEngine,
    Oracle,
    SciductionProcedure,
    SciductionResult,
    StructureHypothesis,
)

__version__ = "1.0.0"

__all__ = [
    "DeductiveEngine",
    "InductiveEngine",
    "Oracle",
    "SciductionProcedure",
    "SciductionResult",
    "StructureHypothesis",
    "__version__",
]
