"""Word-level simplification of QF_BV terms before bit-blasting.

This is the first layer of the query-shrinking pipeline (UCLID5-style
tools report that word-level rewriting ahead of bit-blasting is where the
biggest constant factors live): every formula handed to
:meth:`repro.smt.solver.SmtSolver.add` / ``check`` is rewritten here
before any CNF is produced, so the bit-blaster and the CDCL core never see
work the rewriter can discharge.

The pass is a single memoised bottom-up walk over the term DAG applying
four families of rules, each of which strictly preserves the SMT-LIB
semantics implemented by :func:`repro.smt.terms.evaluate`:

* **constant folding** — any operator whose operands are all constants is
  replaced by its value, computed *by the reference evaluator itself* so
  the two can never disagree;
* **neutral / absorbing elements** — ``x + 0``, ``x * 1``, ``x & 1…1``,
  ``x | 0``, ``x ^ 0``, ``x << 0`` … collapse to ``x``; ``x * 0``,
  ``x & 0``, ``and(…, false)``, ``or(…, true)`` … collapse to the
  absorbing constant; idempotence (``x & x``), complement
  (``x ^ x = 0``, ``and(x, ¬x) = false``) and double negation are folded
  along the way;
* **ITE collapsing** — constant or negated conditions select / swap a
  branch, identical branches drop the condition, and Boolean ITEs with
  constant branches reduce to the condition or its negation;
* **trivial comparisons** — ``x = x``, ``x <u x``, ``x ≤u 1…1``,
  ``0 ≤u x``, ``x <u 0`` and constant-vs-constant atoms become Boolean
  constants.

Rewriting returns interned terms (see :mod:`repro.smt.terms`), so a
simplified term that happens to equal an already-blasted one is
re-encoded for free.  The pass never *duplicates* sub-terms, so the DAG
size can only shrink.
"""

from __future__ import annotations

from typing import Union

from repro.smt.terms import (
    Assignment,
    BitVecTerm,
    BoolConst,
    BoolIte,
    BoolOp,
    BoolTerm,
    BoolVar,
    BvComparison,
    BvConcat,
    BvConst,
    BvExtract,
    BvIte,
    BvOp,
    BvSignExtend,
    BvVar,
    BvZeroExtend,
    Term,
    _mask,
    bool_and,
    bool_const,
    bool_ite,
    bool_not,
    bool_or,
    bool_xor,
    bv_comparison,
    bv_concat,
    bv_const,
    bv_extract,
    bv_ite,
    bv_sign_extend,
    bv_zero_extend,
    _bv_op,
    evaluate,
)

_EMPTY = Assignment()


def _fold(term: Term) -> Term:
    """Evaluate a term whose children are all constants.

    Delegates to the reference evaluator so folding and evaluation share
    one semantics by construction.
    """
    value = evaluate(term, _EMPTY)
    if isinstance(term, BoolTerm):
        return bool_const(bool(value))
    return bv_const(int(value), term.width)


def _is_const(term: Term) -> bool:
    return isinstance(term, (BoolConst, BvConst))


def simplify(term: Term) -> Term:
    """Return a semantically equal, never larger, rewrite of ``term``.

    The result evaluates identically under every assignment of the free
    variables (guaranteed by the randomized differential tests in
    ``tests/smt/test_simplify.py``).
    """
    cache: dict[Term, Term] = {}

    def walk(node: Term) -> Term:
        done = cache.get(node)
        if done is None:
            done = _simplify_node(node, walk)
            cache[node] = done
        return done

    return walk(term)


def simplify_bool(term: BoolTerm) -> BoolTerm:
    """:func:`simplify` restricted to Boolean terms (for type checkers)."""
    result = simplify(term)
    assert isinstance(result, BoolTerm)
    return result


def _simplify_node(node: Term, walk) -> Term:
    if isinstance(node, (BoolConst, BoolVar, BvConst, BvVar)):
        return node
    if isinstance(node, BoolOp):
        return _simplify_bool_op(node, walk)
    if isinstance(node, BoolIte):
        return _simplify_bool_ite(node, walk)
    if isinstance(node, BvComparison):
        return _simplify_comparison(node, walk)
    if isinstance(node, BvOp):
        return _simplify_bv_op(node, walk)
    if isinstance(node, BvIte):
        return _simplify_bv_ite(node, walk)
    if isinstance(node, BvExtract):
        operand = walk(node.operand)
        if node.low == 0 and node.high == operand.width - 1:
            return operand
        result = bv_extract(operand, node.high, node.low)
        return _fold(result) if _is_const(operand) else result
    if isinstance(node, BvConcat):
        operands = [walk(op) for op in node.operands]
        if len(operands) == 1:
            return operands[0]
        result = bv_concat(*operands)
        return _fold(result) if all(map(_is_const, operands)) else result
    if isinstance(node, BvZeroExtend):
        operand = walk(node.operand)
        result = bv_zero_extend(operand, node.width)
        return _fold(result) if _is_const(operand) else result
    if isinstance(node, BvSignExtend):
        operand = walk(node.operand)
        result = bv_sign_extend(operand, node.width)
        return _fold(result) if _is_const(operand) else result
    # Unknown / future node kinds pass through untouched.
    return node


# ---------------------------------------------------------------------------
# Boolean connectives
# ---------------------------------------------------------------------------


def _simplify_bool_op(node: BoolOp, walk) -> BoolTerm:
    if node.kind == "not":
        return bool_not(walk(node.args[0]))  # bool_not folds ¬¬x and ¬const
    args = [walk(arg) for arg in node.args]
    if node.kind == "xor":
        parity = False
        kept: list[BoolTerm] = []
        for arg in args:
            if isinstance(arg, BoolConst):
                parity ^= arg.value
            elif kept and kept[-1] is arg:
                kept.pop()  # x ^ x = false (adjacent after interning)
            else:
                kept.append(arg)
        if not kept:
            return bool_const(parity)
        result = bool_xor(*kept)
        return bool_not(result) if parity else result
    # and / or: neutral and absorbing constants, idempotence, complements.
    absorbing = node.kind == "or"  # `true` absorbs or, `false` absorbs and
    kept = []
    seen: set[Term] = set()
    for arg in args:
        if isinstance(arg, BoolConst):
            if arg.value == absorbing:
                return bool_const(absorbing)
            continue  # neutral element
        if arg in seen:
            continue  # idempotence
        seen.add(arg)
        kept.append(arg)
    for arg in kept:
        complement = bool_not(arg)
        if complement in seen:
            return bool_const(absorbing)  # x ∧ ¬x / x ∨ ¬x
    build = bool_or if node.kind == "or" else bool_and
    return build(*kept)


def _simplify_bool_ite(node: BoolIte, walk) -> BoolTerm:
    condition = walk(node.condition)
    then_branch = walk(node.then_branch)
    else_branch = walk(node.else_branch)
    if isinstance(condition, BoolConst):
        return then_branch if condition.value else else_branch
    if then_branch is else_branch:
        return then_branch
    if isinstance(condition, BoolOp) and condition.kind == "not":
        condition, then_branch, else_branch = (
            condition.args[0],
            else_branch,
            then_branch,
        )
    if isinstance(then_branch, BoolConst) and isinstance(else_branch, BoolConst):
        # Branches differ (identical-branch case handled above).
        return condition if then_branch.value else bool_not(condition)
    return bool_ite(condition, then_branch, else_branch)


def _simplify_comparison(node: BvComparison, walk) -> BoolTerm:
    left = walk(node.left)
    right = walk(node.right)
    if _is_const(left) and _is_const(right):
        return _fold(bv_comparison(node.kind, left, right))
    if left is right:
        # Reflexive atoms: = / ≤ hold, strict < does not.
        return bool_const(node.kind in {"eq", "ule", "sle"})
    # Comparison of a constant-branch ITE against a constant distributes
    # into the branches and folds away — this unwraps the ``ite(c, 1, 0)
    # != 0`` word round-trips produced by truthiness encodings.
    for ite_side, const_side, swapped in ((left, right, False), (right, left, True)):
        if (
            isinstance(ite_side, BvIte)
            and _is_const(const_side)
            and _is_const(ite_side.then_branch)
            and _is_const(ite_side.else_branch)
        ):
            def fold_branch(branch):
                operands = (const_side, branch) if swapped else (branch, const_side)
                return _fold(bv_comparison(node.kind, *operands))

            then_value = fold_branch(ite_side.then_branch).value
            else_value = fold_branch(ite_side.else_branch).value
            if then_value == else_value:
                return bool_const(then_value)
            condition = ite_side.condition
            return condition if then_value else bool_not(condition)
    width = left.width
    if node.kind == "ult":
        if isinstance(right, BvConst) and right.value == 0:
            return bool_const(False)  # nothing is below zero
    elif node.kind == "ule":
        if isinstance(left, BvConst) and left.value == 0:
            return bool_const(True)  # zero is below everything
        if isinstance(right, BvConst) and right.value == _mask(width):
            return bool_const(True)  # everything is below all-ones
    return bv_comparison(node.kind, left, right)


# ---------------------------------------------------------------------------
# Bit-vector operators
# ---------------------------------------------------------------------------


def _simplify_bv_op(node: BvOp, walk) -> BitVecTerm:
    args = [walk(arg) for arg in node.args]
    if all(map(_is_const, args)):
        return _fold(_bv_op(node.kind, args))
    kind = node.kind
    width = node.width
    if kind in {"not", "neg"}:
        (operand,) = args
        if isinstance(operand, BvOp) and operand.kind == kind:
            return operand.args[0]  # ~~x = x, -(-x) = x
        return _bv_op(kind, args)
    left, right = args
    zero = bv_const(0, width)
    ones = bv_const(_mask(width), width)
    if kind == "add":
        if _is_zero(left):
            return right
        if _is_zero(right):
            return left
    elif kind == "sub":
        if _is_zero(right):
            return left
        if left is right:
            return zero
    elif kind == "mul":
        if _is_zero(left) or _is_zero(right):
            return zero
        if _is_one(left):
            return right
        if _is_one(right):
            return left
    elif kind == "and":
        if _is_zero(left) or _is_zero(right):
            return zero
        if left is ones:
            return right
        if right is ones:
            return left
        if left is right:
            return left
    elif kind == "or":
        if left is ones or right is ones:
            return ones
        if _is_zero(left):
            return right
        if _is_zero(right):
            return left
        if left is right:
            return left
    elif kind == "xor":
        if _is_zero(left):
            return right
        if _is_zero(right):
            return left
        if left is right:
            return zero
    elif kind in {"shl", "lshr", "ashr"}:
        if _is_zero(right):
            return left
        if _is_zero(left):
            return zero  # zero shifted anywhere stays zero (its sign bit is 0)
        if isinstance(right, BvConst) and right.value >= width and kind != "ashr":
            return zero  # over-shifts saturate to zero (ashr saturates to sign)
    return _bv_op(kind, args)


def _is_zero(term: Term) -> bool:
    return isinstance(term, BvConst) and term.value == 0


def _is_one(term: Term) -> bool:
    return isinstance(term, BvConst) and term.value == 1


def _simplify_bv_ite(node: BvIte, walk) -> BitVecTerm:
    condition = walk(node.condition)
    then_branch = walk(node.then_branch)
    else_branch = walk(node.else_branch)
    if isinstance(condition, BoolConst):
        return then_branch if condition.value else else_branch
    if then_branch is else_branch:
        return then_branch
    if isinstance(condition, BoolOp) and condition.kind == "not":
        condition, then_branch, else_branch = (
            condition.args[0],
            else_branch,
            then_branch,
        )
    return bv_ite(condition, then_branch, else_branch)
