"""A self-contained SAT + QF_BV SMT solving substrate.

The paper's deductive engines for timing analysis (Section 3) and program
synthesis (Section 4) are SMT solvers; this subpackage provides one built
from scratch: a term language (:mod:`repro.smt.terms`), a word-level
simplifier (:mod:`repro.smt.simplify`), a Tseitin bit-blaster
(:mod:`repro.smt.bitblast`), a CDCL SAT solver (:mod:`repro.smt.sat`) and
an SMT facade (:mod:`repro.smt.solver`).

How a query flows through the stack
===================================

1. **Term construction** (:mod:`repro.smt.terms`).  Application code —
   the OGIS synthesis encoder, the GameTime path-constraint builder, the
   hybrid benchmarks — builds immutable term DAGs through the constructor
   helpers.  The helpers *hash-cons*: structurally equal terms built
   anywhere in the process are the same object, so every cache downstream
   keys on cheap object identity and shared sub-terms are paid for once.

2. **Word-level simplification** (:mod:`repro.smt.simplify`).  When a
   formula is asserted (``SmtSolver.add``) or checked
   (``SmtSolver.check``), it is first rewritten: constants fold, neutral
   and absorbing elements vanish, ITEs collapse, trivial comparisons
   become Boolean constants.  Whatever the rewriter discharges, the SAT
   core never sees.

3. **Bit-blasting** (:mod:`repro.smt.bitblast`).  The surviving formula
   is translated to CNF through a structurally cached, *polarity-aware*
   Tseitin transformation (Plaisted–Greenbaum): asserted formulas only
   need the positive direction of each gate definition, and the missing
   direction is emitted lazily if some later query uses the gate under
   the other polarity.  The blaster lives as long as its ``SmtSolver``,
   so terms blasted for one check are free in every later check.

4. **CDCL search** (:mod:`repro.smt.sat`).  Clauses land in a persistent
   incremental solver: scopes are activation literals, ``check`` extras
   are assumptions, learned clauses carry LBD and are reduced
   glucose-style, watch lists carry blocking literals, and scopes retired
   by ``pop`` are garbage-collected at level 0 once enough dead volume
   accumulates.

5. **Model extraction** (:mod:`repro.smt.solver`).  A SAT answer yields a
   :class:`~repro.smt.solver.Model` lazily; declared variables keep their
   full bit encodings, so model values are exact regardless of the
   polarity-aware gate definitions around them.

``benchmarks/bench_perf_suite.py`` measures each layer's contribution
(ablation flags ``simplify_terms`` / ``polarity_aware`` /
``gc_dead_clauses``) and records the trajectory in ``BENCH_perf.json``.
"""

from repro.smt.cnf import (
    CnfFormula,
    lit_from_dimacs,
    lit_to_dimacs,
    literal_is_negative,
    literal_variable,
    make_literal,
    negate,
)
from repro.smt.dimacs import dump_dimacs, dumps_dimacs, load_dimacs, loads_dimacs
from repro.smt.bitblast import BitBlaster
from repro.smt.simplify import simplify, simplify_bool
from repro.smt.sat import CdclSolver, SatResult, SatStatistics, luby, solve_formula
from repro.smt.solver import (
    Model,
    SmtDeductiveEngine,
    SmtResult,
    SmtSolver,
    SmtStatistics,
    conjoin,
    solve,
)
from repro.smt.terms import (
    Assignment,
    BitVecTerm,
    BoolConst,
    BoolTerm,
    BoolVar,
    BvConst,
    BvVar,
    FALSE,
    TRUE,
    bool_and,
    bool_const,
    bool_iff,
    bool_implies,
    bool_ite,
    bool_not,
    bool_or,
    bool_var,
    bool_xor,
    bv_add,
    bv_and,
    bv_ashr,
    bv_comparison,
    bv_concat,
    bv_const,
    bv_equal_any,
    bv_extract,
    bv_ite,
    bv_lshr,
    bv_mul,
    bv_neg,
    bv_not,
    bv_or,
    bv_shl,
    bv_sign_extend,
    bv_sub,
    bv_var,
    bv_xor,
    bv_zero_extend,
    evaluate,
    free_variables,
)

__all__ = [
    "Assignment",
    "BitBlaster",
    "BitVecTerm",
    "BoolConst",
    "BoolTerm",
    "BoolVar",
    "BvConst",
    "BvVar",
    "CdclSolver",
    "CnfFormula",
    "FALSE",
    "Model",
    "SatResult",
    "SatStatistics",
    "SmtDeductiveEngine",
    "SmtResult",
    "SmtSolver",
    "SmtStatistics",
    "TRUE",
    "bool_and",
    "bool_const",
    "bool_iff",
    "bool_implies",
    "bool_ite",
    "bool_not",
    "bool_or",
    "bool_var",
    "bool_xor",
    "bv_add",
    "bv_and",
    "bv_ashr",
    "bv_comparison",
    "bv_concat",
    "bv_const",
    "bv_equal_any",
    "bv_extract",
    "bv_ite",
    "bv_lshr",
    "bv_mul",
    "bv_neg",
    "bv_not",
    "bv_or",
    "bv_shl",
    "bv_sign_extend",
    "bv_sub",
    "bv_var",
    "bv_xor",
    "bv_zero_extend",
    "conjoin",
    "dump_dimacs",
    "dumps_dimacs",
    "evaluate",
    "free_variables",
    "lit_from_dimacs",
    "lit_to_dimacs",
    "literal_is_negative",
    "literal_variable",
    "load_dimacs",
    "loads_dimacs",
    "luby",
    "make_literal",
    "negate",
    "simplify",
    "simplify_bool",
    "solve",
    "solve_formula",
]
