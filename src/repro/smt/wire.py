"""Process-independent wire digests for hash-consed terms.

The solver-local check memo (:class:`~repro.smt.solver.SmtSolver`) keys
entries by term *identity* — free under hash-consing, but meaningless
outside the owning process.  A memo shared across worker processes (see
:mod:`repro.api.memo`) needs content-addressed keys instead: this module
digests terms structurally, so two processes that build the same formula
independently produce the same key.
"""

from __future__ import annotations

import hashlib

from repro.smt.terms import Term


def term_digest(term: Term, cache: dict[Term, str]) -> str:
    """Structural digest of a hash-consed term (process-independent).

    The digest is computed bottom-up over the term DAG with ``cache``
    memoizing shared sub-terms (keyed by term identity, which for
    interned terms *is* structural identity), so the cost is linear in
    the DAG size even when the tree form is exponential.  An explicit
    worklist keeps deep SSA chains clear of the recursion limit.
    """
    digest = cache.get(term)
    if digest is not None:
        return digest
    stack: list[Term] = [term]
    while stack:
        current = stack[-1]
        if current in cache:
            stack.pop()
            continue
        children = _term_children(current)
        pending = [child for child in children if child not in cache]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        parts = [type(current).__name__]
        parts.extend(_term_atoms(current))
        parts.extend(cache[child] for child in children)
        cache[current] = hashlib.sha1(
            "|".join(parts).encode("utf-8")
        ).hexdigest()
    return cache[term]


def _term_slots(cls: type) -> tuple[str, ...]:
    slots: list[str] = []
    for klass in reversed(cls.__mro__):
        slots.extend(getattr(klass, "__slots__", ()))
    return tuple(slots)


def _term_children(term: Term) -> list[Term]:
    children: list[Term] = []
    for slot in _term_slots(type(term)):
        value = getattr(term, slot)
        if isinstance(value, Term):
            children.append(value)
        elif isinstance(value, tuple):
            children.extend(item for item in value if isinstance(item, Term))
    return children


def _term_atoms(term: Term) -> list[str]:
    atoms: list[str] = []
    for slot in _term_slots(type(term)):
        if slot == "_id":  # process-local identity, never part of the wire
            continue
        value = getattr(term, slot)
        if isinstance(value, Term):
            continue
        if isinstance(value, tuple):
            if any(isinstance(item, Term) for item in value):
                atoms.append(str(len(value)))
                continue
        atoms.append(repr(value))
    return atoms


def check_wire_key(
    assertions: tuple[Term, ...],
    extras: tuple[Term, ...],
    frontier: int,
    cache: dict[Term, str],
) -> str:
    """The shared-memo key for one ``check``: wire form of
    ``(assertions, extras, frontier)``.

    ``frontier`` is the solver's post-encoding SAT variable count — the
    same layout witness the solver-local memo uses, which makes a hit's
    recorded model bits valid by construction (same formula sequence
    blasted from the same frontier yields the same variable layout).
    """
    digest = hashlib.sha1()
    for formula in assertions:
        digest.update(term_digest(formula, cache).encode("ascii"))
        digest.update(b"|")
    digest.update(b"#")
    for formula in extras:
        digest.update(term_digest(formula, cache).encode("ascii"))
        digest.update(b"|")
    return f"{frontier}:{digest.hexdigest()}"
