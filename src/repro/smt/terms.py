"""Term language for quantifier-free bit-vector / Boolean formulas (QF_BV).

The deductive engines of Sections 3 and 4 of the paper are SMT solvers over
bit-vector arithmetic.  This module defines the term AST consumed by the
bit-blaster (:mod:`repro.smt.bitblast`) and the SMT facade
(:mod:`repro.smt.solver`).

Terms are immutable and are built through the constructor helpers at the
bottom of the module (``bv_const``, ``bv_var``, ``bv_add`` ...) or through
operator overloading on :class:`BitVecTerm` / :class:`BoolTerm`, e.g.::

    x = bv_var("x", 8)
    y = bv_var("y", 8)
    formula = (x + y).eq(bv_const(45, 8)) & x.ult(y)

Semantics follow SMT-LIB: bit-vectors are unsigned fixed-width integers
with modular arithmetic; signed comparisons interpret the MSB as sign bit.

Terms are **hash-consed**: the constructor helpers intern structurally
equal terms, so building ``x + y`` twice — even from different call sites —
yields the *same* object.  Identity-based ``__hash__``/``__eq__`` therefore
double as structural hashing for interned terms, which keeps the
bit-blaster's and evaluator's caches O(1) while letting shared sub-terms
built independently hit the same cache entries (and thus be bit-blasted
once).  Interning is keyed on the immortal per-term ``_id`` counter of the
children, never on ``id()``, so keys cannot collide after garbage
collection.  Direct class instantiation bypasses the intern table; it stays
legal but forfeits sharing.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Iterable, Sequence, Union

from repro.core.exceptions import SolverError

_term_counter = itertools.count()

#: Intern table for hash-consing.  Keys are structural descriptions
#: (operator kind plus the ``_id``s of the children); values are the unique
#: representative terms.  Entries keep their children alive through the
#: interned term itself, so ``_id``-based keys never dangle.
_intern_table: dict[tuple, "Term"] = {}

#: Open intern scopes (see :func:`push_intern_scope`).  Each entry records
#: the keys interned while that scope was innermost, so a long-lived
#: process (e.g. a :class:`~repro.api.pool.SolverPool`) can drop exactly
#: the terms a finished job contributed instead of letting the table grow
#: monotonically.
_intern_scopes: list[list[tuple]] = []


#: Sticky thread-safety switch for the intern table.  The table is a plain
#: dict with a check-then-insert race; single-threaded workloads (the vast
#: majority) never pay for a lock.  Intra-job parallelism
#: (:mod:`repro.api.intra`) flips this on — permanently for the process —
#: the first time it fans term-building work across threads, after which
#: every interning takes the lock.
_intern_lock = threading.Lock()
_intern_locking = False


def enable_intern_locking() -> None:
    """Make term interning thread-safe for the rest of the process.

    Idempotent and one-way: once any component builds terms from more than
    one thread, unsynchronized check-then-insert could intern two distinct
    representatives for one structural key, silently breaking the
    identity-equality contract for every downstream cache.
    """
    global _intern_locking
    _intern_locking = True


def _interned(key: tuple, build) -> "Term":
    if _intern_locking:
        with _intern_lock:
            return _interned_unlocked(key, build)
    return _interned_unlocked(key, build)


def _interned_unlocked(key: tuple, build) -> "Term":
    term = _intern_table.get(key)
    if term is None:
        term = build()
        _intern_table[key] = term
        if _intern_scopes:
            _intern_scopes[-1].append(key)
    return term


def intern_table_size() -> int:
    """Number of distinct terms currently interned (diagnostic)."""
    return len(_intern_table)


def clear_intern_table() -> None:
    """Drop all interned terms (and any open intern scopes).

    Only useful for long-running processes that build unbounded numbers of
    distinct terms; terms constructed before and after the call no longer
    share structure.  For job-granular cleanup prefer the scoped interface
    (:func:`push_intern_scope` / :func:`pop_intern_scope`).
    """
    _intern_table.clear()
    _intern_scopes.clear()


def push_intern_scope() -> int:
    """Open an intern scope and return its token (the scope depth).

    Terms interned while the scope is innermost are recorded so
    :func:`pop_intern_scope` can later evict exactly those entries.  Scopes
    nest and must be popped LIFO; :class:`~repro.api.pool.SolverPool`
    wires one scope around every solver lease so per-job terms can be
    reclaimed when the lease is released.

    Dropping a scope's entries never invalidates existing terms — they
    stay alive and structurally correct — it only stops *future* term
    construction from sharing structure with them.
    """
    _intern_scopes.append([])
    return len(_intern_scopes)


def pop_intern_scope(token: int, discard: bool = True) -> int:
    """Close the innermost intern scope opened by :func:`push_intern_scope`.

    Args:
        token: the value returned by the matching ``push_intern_scope``
            (guards against unbalanced pops).
        discard: when True, evict the scope's entries from the intern
            table; when False, keep them (they are re-attributed to the
            enclosing scope, or become permanent at top level).

    Returns:
        The number of intern-table entries evicted.

    Raises:
        SolverError: if ``token`` does not match the innermost open scope.
    """
    if token != len(_intern_scopes) or not _intern_scopes:
        raise SolverError(
            f"intern scope pop out of order (token {token}, depth {len(_intern_scopes)})"
        )
    keys = _intern_scopes.pop()
    if not discard:
        if _intern_scopes:
            _intern_scopes[-1].extend(keys)
        return 0
    evicted = 0
    for key in keys:
        if _intern_table.pop(key, None) is not None:
            evicted += 1
    return evicted


def _mask(width: int) -> int:
    return (1 << width) - 1


class Term:
    """Base class for all terms; provides identity-based hashing."""

    __slots__ = ("_id",)

    def __init__(self) -> None:
        self._id = next(_term_counter)

    def __hash__(self) -> int:  # identity hashing keeps caches O(1)
        return self._id

    def __eq__(self, other: object) -> bool:
        return self is other


# ---------------------------------------------------------------------------
# Boolean terms
# ---------------------------------------------------------------------------


class BoolTerm(Term):
    """A term of Boolean sort."""

    __slots__ = ()

    # Overloads build new terms, mirroring SMT-LIB connectives.
    def __and__(self, other: "BoolTerm") -> "BoolTerm":
        return bool_and(self, other)

    def __or__(self, other: "BoolTerm") -> "BoolTerm":
        return bool_or(self, other)

    def __xor__(self, other: "BoolTerm") -> "BoolTerm":
        return bool_xor(self, other)

    def __invert__(self) -> "BoolTerm":
        return bool_not(self)

    def implies(self, other: "BoolTerm") -> "BoolTerm":
        """Logical implication ``self -> other``."""
        return bool_or(bool_not(self), other)

    def iff(self, other: "BoolTerm") -> "BoolTerm":
        """Logical equivalence ``self <-> other``."""
        return bool_not(bool_xor(self, other))


class BoolConst(BoolTerm):
    """A Boolean constant (``true`` / ``false``)."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        super().__init__()
        self.value = bool(value)

    def __repr__(self) -> str:
        return "true" if self.value else "false"


class BoolVar(BoolTerm):
    """A free Boolean variable."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        super().__init__()
        self.name = name

    def __repr__(self) -> str:
        return self.name


class BoolOp(BoolTerm):
    """An n-ary Boolean connective.

    ``kind`` is one of ``"and"``, ``"or"``, ``"xor"``, ``"not"``.
    """

    __slots__ = ("kind", "args")

    def __init__(self, kind: str, args: Sequence[BoolTerm]):
        super().__init__()
        if kind not in {"and", "or", "xor", "not"}:
            raise SolverError(f"unknown Boolean connective {kind!r}")
        if kind == "not" and len(args) != 1:
            raise SolverError("'not' takes exactly one argument")
        self.kind = kind
        self.args = tuple(args)

    def __repr__(self) -> str:
        return f"({self.kind} {' '.join(map(repr, self.args))})"


class BoolIte(BoolTerm):
    """Boolean if-then-else."""

    __slots__ = ("condition", "then_branch", "else_branch")

    def __init__(self, condition: BoolTerm, then_branch: BoolTerm, else_branch: BoolTerm):
        super().__init__()
        self.condition = condition
        self.then_branch = then_branch
        self.else_branch = else_branch

    def __repr__(self) -> str:
        return f"(ite {self.condition!r} {self.then_branch!r} {self.else_branch!r})"


class BvComparison(BoolTerm):
    """A relational atom over two bit-vector terms.

    ``kind`` is one of ``"eq"``, ``"ult"``, ``"ule"``, ``"slt"``, ``"sle"``.
    """

    __slots__ = ("kind", "left", "right")

    def __init__(self, kind: str, left: "BitVecTerm", right: "BitVecTerm"):
        super().__init__()
        if kind not in {"eq", "ult", "ule", "slt", "sle"}:
            raise SolverError(f"unknown comparison {kind!r}")
        if left.width != right.width:
            raise SolverError(
                f"comparison width mismatch: {left.width} vs {right.width}"
            )
        self.kind = kind
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"({self.kind} {self.left!r} {self.right!r})"


# ---------------------------------------------------------------------------
# Bit-vector terms
# ---------------------------------------------------------------------------


class BitVecTerm(Term):
    """A term of bit-vector sort with a fixed ``width``."""

    __slots__ = ("width",)

    def __init__(self, width: int):
        super().__init__()
        if width <= 0:
            raise SolverError(f"bit-vector width must be positive, got {width}")
        self.width = width

    # Arithmetic / bitwise overloads ------------------------------------

    def __add__(self, other: "BitVecTerm") -> "BitVecTerm":
        return bv_add(self, other)

    def __sub__(self, other: "BitVecTerm") -> "BitVecTerm":
        return bv_sub(self, other)

    def __mul__(self, other: "BitVecTerm") -> "BitVecTerm":
        return bv_mul(self, other)

    def __and__(self, other: "BitVecTerm") -> "BitVecTerm":
        return bv_and(self, other)

    def __or__(self, other: "BitVecTerm") -> "BitVecTerm":
        return bv_or(self, other)

    def __xor__(self, other: "BitVecTerm") -> "BitVecTerm":
        return bv_xor(self, other)

    def __invert__(self) -> "BitVecTerm":
        return bv_not(self)

    def __neg__(self) -> "BitVecTerm":
        return bv_neg(self)

    def __lshift__(self, other: Union["BitVecTerm", int]) -> "BitVecTerm":
        return bv_shl(self, other)

    def __rshift__(self, other: Union["BitVecTerm", int]) -> "BitVecTerm":
        return bv_lshr(self, other)

    # Relational helpers --------------------------------------------------

    def eq(self, other: "BitVecTerm") -> BoolTerm:
        """Bit-vector equality."""
        return bv_comparison("eq", self, _coerce(other, self.width))

    def ne(self, other: "BitVecTerm") -> BoolTerm:
        """Bit-vector disequality."""
        return bool_not(self.eq(other))

    def ult(self, other: "BitVecTerm") -> BoolTerm:
        """Unsigned less-than."""
        return bv_comparison("ult", self, _coerce(other, self.width))

    def ule(self, other: "BitVecTerm") -> BoolTerm:
        """Unsigned less-or-equal."""
        return bv_comparison("ule", self, _coerce(other, self.width))

    def ugt(self, other: "BitVecTerm") -> BoolTerm:
        """Unsigned greater-than."""
        return bv_comparison("ult", _coerce(other, self.width), self)

    def uge(self, other: "BitVecTerm") -> BoolTerm:
        """Unsigned greater-or-equal."""
        return bv_comparison("ule", _coerce(other, self.width), self)

    def slt(self, other: "BitVecTerm") -> BoolTerm:
        """Signed (two's complement) less-than."""
        return bv_comparison("slt", self, _coerce(other, self.width))

    def sle(self, other: "BitVecTerm") -> BoolTerm:
        """Signed (two's complement) less-or-equal."""
        return bv_comparison("sle", self, _coerce(other, self.width))


class BvConst(BitVecTerm):
    """A bit-vector constant (value reduced modulo ``2**width``)."""

    __slots__ = ("value",)

    def __init__(self, value: int, width: int):
        super().__init__(width)
        self.value = value & _mask(width)

    def __repr__(self) -> str:
        return f"#x{self.value:0{(self.width + 3) // 4}x}[{self.width}]"


class BvVar(BitVecTerm):
    """A free bit-vector variable."""

    __slots__ = ("name",)

    def __init__(self, name: str, width: int):
        super().__init__(width)
        self.name = name

    def __repr__(self) -> str:
        return f"{self.name}[{self.width}]"


class BvOp(BitVecTerm):
    """An n-ary bit-vector operation.

    ``kind`` is one of ``"add"``, ``"sub"``, ``"mul"``, ``"and"``, ``"or"``,
    ``"xor"``, ``"not"``, ``"neg"``, ``"shl"``, ``"lshr"``, ``"ashr"``.
    Shift amounts are bit-vector operands of the same width.
    """

    KINDS = {"add", "sub", "mul", "and", "or", "xor", "not", "neg", "shl", "lshr", "ashr"}

    __slots__ = ("kind", "args")

    def __init__(self, kind: str, args: Sequence[BitVecTerm]):
        if kind not in self.KINDS:
            raise SolverError(f"unknown bit-vector operation {kind!r}")
        widths = {arg.width for arg in args}
        if len(widths) != 1:
            raise SolverError(f"width mismatch in {kind}: {sorted(widths)}")
        super().__init__(args[0].width)
        if kind in {"not", "neg"} and len(args) != 1:
            raise SolverError(f"'{kind}' takes exactly one argument")
        self.kind = kind
        self.args = tuple(args)

    def __repr__(self) -> str:
        return f"(bv{self.kind} {' '.join(map(repr, self.args))})"


class BvIte(BitVecTerm):
    """Bit-vector if-then-else."""

    __slots__ = ("condition", "then_branch", "else_branch")

    def __init__(self, condition: BoolTerm, then_branch: BitVecTerm, else_branch: BitVecTerm):
        if then_branch.width != else_branch.width:
            raise SolverError("ite branch width mismatch")
        super().__init__(then_branch.width)
        self.condition = condition
        self.then_branch = then_branch
        self.else_branch = else_branch

    def __repr__(self) -> str:
        return f"(ite {self.condition!r} {self.then_branch!r} {self.else_branch!r})"


class BvExtract(BitVecTerm):
    """Bit extraction ``term[high:low]`` (both indices inclusive, LSB = 0)."""

    __slots__ = ("operand", "high", "low")

    def __init__(self, operand: BitVecTerm, high: int, low: int):
        if not (0 <= low <= high < operand.width):
            raise SolverError(
                f"invalid extract [{high}:{low}] from width {operand.width}"
            )
        super().__init__(high - low + 1)
        self.operand = operand
        self.high = high
        self.low = low

    def __repr__(self) -> str:
        return f"(extract {self.high} {self.low} {self.operand!r})"


class BvConcat(BitVecTerm):
    """Concatenation; the first operand provides the most-significant bits."""

    __slots__ = ("operands",)

    def __init__(self, operands: Sequence[BitVecTerm]):
        if not operands:
            raise SolverError("concat needs at least one operand")
        super().__init__(sum(op.width for op in operands))
        self.operands = tuple(operands)

    def __repr__(self) -> str:
        return f"(concat {' '.join(map(repr, self.operands))})"


class BvZeroExtend(BitVecTerm):
    """Zero extension to a larger width."""

    __slots__ = ("operand",)

    def __init__(self, operand: BitVecTerm, width: int):
        if width < operand.width:
            raise SolverError("zero-extend target narrower than operand")
        super().__init__(width)
        self.operand = operand

    def __repr__(self) -> str:
        return f"(zext {self.width} {self.operand!r})"


class BvSignExtend(BitVecTerm):
    """Sign extension to a larger width."""

    __slots__ = ("operand",)

    def __init__(self, operand: BitVecTerm, width: int):
        if width < operand.width:
            raise SolverError("sign-extend target narrower than operand")
        super().__init__(width)
        self.operand = operand

    def __repr__(self) -> str:
        return f"(sext {self.width} {self.operand!r})"


# ---------------------------------------------------------------------------
# Constructor helpers
# ---------------------------------------------------------------------------

TRUE = BoolConst(True)
FALSE = BoolConst(False)


def bool_const(value: bool) -> BoolConst:
    """Return the Boolean constant for ``value``."""
    return TRUE if value else FALSE


def bool_var(name: str) -> BoolVar:
    """Create a free Boolean variable."""
    return _interned(("boolvar", name), lambda: BoolVar(name))


def bv_comparison(kind: str, left: "BitVecTerm", right: "BitVecTerm") -> BoolTerm:
    """Interned relational atom (``eq``/``ult``/``ule``/``slt``/``sle``)."""
    return _interned(
        ("cmp", kind, left._id, right._id), lambda: BvComparison(kind, left, right)
    )


def _flatten(kind: str, args: Iterable[BoolTerm]) -> list[BoolTerm]:
    flat: list[BoolTerm] = []
    for arg in args:
        if isinstance(arg, BoolOp) and arg.kind == kind and kind in {"and", "or"}:
            flat.extend(arg.args)
        else:
            flat.append(arg)
    return flat


def _bool_op(kind: str, args: list[BoolTerm]) -> BoolTerm:
    key = (kind, tuple(arg._id for arg in args))
    return _interned(key, lambda: BoolOp(kind, args))


def bool_and(*args: BoolTerm) -> BoolTerm:
    """N-ary conjunction (empty conjunction is ``true``)."""
    flat = _flatten("and", args)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return _bool_op("and", flat)


def bool_or(*args: BoolTerm) -> BoolTerm:
    """N-ary disjunction (empty disjunction is ``false``)."""
    flat = _flatten("or", args)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return _bool_op("or", flat)


def bool_xor(*args: BoolTerm) -> BoolTerm:
    """N-ary exclusive or."""
    args_list = list(args)
    if not args_list:
        return FALSE
    if len(args_list) == 1:
        return args_list[0]
    return _bool_op("xor", args_list)


def bool_not(arg: BoolTerm) -> BoolTerm:
    """Negation, with double-negation elimination."""
    if isinstance(arg, BoolOp) and arg.kind == "not":
        return arg.args[0]
    if isinstance(arg, BoolConst):
        return bool_const(not arg.value)
    return _bool_op("not", [arg])


def bool_implies(antecedent: BoolTerm, consequent: BoolTerm) -> BoolTerm:
    """Implication ``antecedent -> consequent``."""
    return bool_or(bool_not(antecedent), consequent)


def bool_iff(left: BoolTerm, right: BoolTerm) -> BoolTerm:
    """Equivalence ``left <-> right``."""
    return bool_not(bool_xor(left, right))


def bool_ite(condition: BoolTerm, then_branch: BoolTerm, else_branch: BoolTerm) -> BoolTerm:
    """Boolean if-then-else."""
    return _interned(
        ("bite", condition._id, then_branch._id, else_branch._id),
        lambda: BoolIte(condition, then_branch, else_branch),
    )


def bv_const(value: int, width: int) -> BvConst:
    """Create a bit-vector constant."""
    return _interned(
        ("bvconst", value & _mask(width), width), lambda: BvConst(value, width)
    )


def bv_var(name: str, width: int) -> BvVar:
    """Create a free bit-vector variable."""
    return _interned(("bvvar", name, width), lambda: BvVar(name, width))


def _coerce(value: Union[BitVecTerm, int], width: int) -> BitVecTerm:
    if isinstance(value, int):
        return bv_const(value, width)
    return value


def _bv_op(kind: str, args: list[BitVecTerm]) -> BitVecTerm:
    key = ("bv" + kind, tuple(arg._id for arg in args))
    return _interned(key, lambda: BvOp(kind, args))


def bv_add(left: BitVecTerm, right: Union[BitVecTerm, int]) -> BitVecTerm:
    """Modular addition."""
    return _bv_op("add", [left, _coerce(right, left.width)])


def bv_sub(left: BitVecTerm, right: Union[BitVecTerm, int]) -> BitVecTerm:
    """Modular subtraction."""
    return _bv_op("sub", [left, _coerce(right, left.width)])


def bv_mul(left: BitVecTerm, right: Union[BitVecTerm, int]) -> BitVecTerm:
    """Modular multiplication."""
    return _bv_op("mul", [left, _coerce(right, left.width)])


def bv_and(left: BitVecTerm, right: Union[BitVecTerm, int]) -> BitVecTerm:
    """Bitwise and."""
    return _bv_op("and", [left, _coerce(right, left.width)])


def bv_or(left: BitVecTerm, right: Union[BitVecTerm, int]) -> BitVecTerm:
    """Bitwise or."""
    return _bv_op("or", [left, _coerce(right, left.width)])


def bv_xor(left: BitVecTerm, right: Union[BitVecTerm, int]) -> BitVecTerm:
    """Bitwise exclusive or."""
    return _bv_op("xor", [left, _coerce(right, left.width)])


def bv_not(operand: BitVecTerm) -> BitVecTerm:
    """Bitwise complement."""
    return _bv_op("not", [operand])


def bv_neg(operand: BitVecTerm) -> BitVecTerm:
    """Two's complement negation."""
    return _bv_op("neg", [operand])


def bv_shl(operand: BitVecTerm, amount: Union[BitVecTerm, int]) -> BitVecTerm:
    """Logical shift left; shifts >= width yield zero."""
    return _bv_op("shl", [operand, _coerce(amount, operand.width)])


def bv_lshr(operand: BitVecTerm, amount: Union[BitVecTerm, int]) -> BitVecTerm:
    """Logical shift right; shifts >= width yield zero."""
    return _bv_op("lshr", [operand, _coerce(amount, operand.width)])


def bv_ashr(operand: BitVecTerm, amount: Union[BitVecTerm, int]) -> BitVecTerm:
    """Arithmetic shift right (sign-preserving)."""
    return _bv_op("ashr", [operand, _coerce(amount, operand.width)])


def bv_ite(condition: BoolTerm, then_branch: BitVecTerm, else_branch: BitVecTerm) -> BitVecTerm:
    """Bit-vector if-then-else."""
    return _interned(
        ("bvite", condition._id, then_branch._id, else_branch._id),
        lambda: BvIte(condition, then_branch, else_branch),
    )


def bv_extract(operand: BitVecTerm, high: int, low: int) -> BitVecTerm:
    """Extract bits ``high..low`` (inclusive)."""
    return _interned(
        ("extract", operand._id, high, low), lambda: BvExtract(operand, high, low)
    )


def bv_concat(*operands: BitVecTerm) -> BitVecTerm:
    """Concatenate bit-vectors (first operand is most significant)."""
    return _interned(
        ("concat", tuple(op._id for op in operands)), lambda: BvConcat(operands)
    )


def bv_zero_extend(operand: BitVecTerm, width: int) -> BitVecTerm:
    """Zero-extend ``operand`` to ``width`` bits."""
    if width == operand.width:
        return operand
    return _interned(
        ("zext", operand._id, width), lambda: BvZeroExtend(operand, width)
    )


def bv_sign_extend(operand: BitVecTerm, width: int) -> BitVecTerm:
    """Sign-extend ``operand`` to ``width`` bits."""
    if width == operand.width:
        return operand
    return _interned(
        ("sext", operand._id, width), lambda: BvSignExtend(operand, width)
    )


def bv_equal_any(term: BitVecTerm, values: Iterable[int]) -> BoolTerm:
    """Return the disjunction ``term == v`` over the given constants."""
    return bool_or(*(term.eq(bv_const(v, term.width)) for v in values))


# ---------------------------------------------------------------------------
# Reference evaluation (big-integer semantics)
# ---------------------------------------------------------------------------


@dataclass
class Assignment:
    """A concrete assignment for free variables, used by the evaluator and
    returned (as part of a :class:`~repro.smt.solver.Model`) by the solver.

    Attributes:
        bool_values: mapping from Boolean variable name to value.
        bv_values: mapping from bit-vector variable name to unsigned value.
    """

    bool_values: dict[str, bool] = field(default_factory=dict)
    bv_values: dict[str, int] = field(default_factory=dict)

    def copy(self) -> "Assignment":
        """Return an independent copy of the assignment."""
        return Assignment(dict(self.bool_values), dict(self.bv_values))


def _to_signed(value: int, width: int) -> int:
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def evaluate(term: Term, assignment: Assignment) -> Union[bool, int]:
    """Evaluate ``term`` under ``assignment`` with exact integer semantics.

    This is the reference semantics the bit-blaster is tested against
    (property-based tests compare SAT models and direct evaluation).

    Raises:
        SolverError: if a free variable is missing from the assignment.
    """
    cache: dict[Term, Union[bool, int]] = {}

    def walk(node: Term) -> Union[bool, int]:
        if node in cache:
            return cache[node]
        result = _evaluate_node(node, assignment, walk)
        cache[node] = result
        return result

    return walk(term)


def _evaluate_node(node: Term, assignment: Assignment, walk) -> Union[bool, int]:
    if isinstance(node, BoolConst):
        return node.value
    if isinstance(node, BoolVar):
        if node.name not in assignment.bool_values:
            raise SolverError(f"no value for Boolean variable {node.name!r}")
        return assignment.bool_values[node.name]
    if isinstance(node, BoolOp):
        values = [walk(arg) for arg in node.args]
        if node.kind == "and":
            return all(values)
        if node.kind == "or":
            return any(values)
        if node.kind == "xor":
            result = False
            for value in values:
                result ^= bool(value)
            return result
        return not values[0]  # not
    if isinstance(node, BoolIte):
        return walk(node.then_branch) if walk(node.condition) else walk(node.else_branch)
    if isinstance(node, BvComparison):
        left = walk(node.left)
        right = walk(node.right)
        width = node.left.width
        if node.kind == "eq":
            return left == right
        if node.kind == "ult":
            return left < right
        if node.kind == "ule":
            return left <= right
        if node.kind == "slt":
            return _to_signed(left, width) < _to_signed(right, width)
        return _to_signed(left, width) <= _to_signed(right, width)  # sle
    if isinstance(node, BvConst):
        return node.value
    if isinstance(node, BvVar):
        if node.name not in assignment.bv_values:
            raise SolverError(f"no value for bit-vector variable {node.name!r}")
        return assignment.bv_values[node.name] & _mask(node.width)
    if isinstance(node, BvOp):
        width = node.width
        mask = _mask(width)
        values = [walk(arg) for arg in node.args]
        if node.kind == "add":
            return (values[0] + values[1]) & mask
        if node.kind == "sub":
            return (values[0] - values[1]) & mask
        if node.kind == "mul":
            return (values[0] * values[1]) & mask
        if node.kind == "and":
            return values[0] & values[1]
        if node.kind == "or":
            return values[0] | values[1]
        if node.kind == "xor":
            return values[0] ^ values[1]
        if node.kind == "not":
            return (~values[0]) & mask
        if node.kind == "neg":
            return (-values[0]) & mask
        if node.kind == "shl":
            shift = values[1]
            return 0 if shift >= width else (values[0] << shift) & mask
        if node.kind == "lshr":
            shift = values[1]
            return 0 if shift >= width else values[0] >> shift
        # ashr
        shift = values[1]
        signed = _to_signed(values[0], width)
        if shift >= width:
            return mask if signed < 0 else 0
        return (signed >> shift) & mask
    if isinstance(node, BvIte):
        return walk(node.then_branch) if walk(node.condition) else walk(node.else_branch)
    if isinstance(node, BvExtract):
        value = walk(node.operand)
        return (value >> node.low) & _mask(node.high - node.low + 1)
    if isinstance(node, BvConcat):
        result = 0
        for operand in node.operands:
            result = (result << operand.width) | walk(operand)
        return result
    if isinstance(node, BvZeroExtend):
        return walk(node.operand)
    if isinstance(node, BvSignExtend):
        value = walk(node.operand)
        return _to_signed(value, node.operand.width) & _mask(node.width)
    raise SolverError(f"cannot evaluate term of type {type(node).__name__}")


def free_variables(term: Term) -> tuple[dict[str, None], dict[str, int]]:
    """Return the free Boolean and bit-vector variables of ``term``.

    Returns:
        A pair ``(bool_names, bv_widths)`` where ``bool_names`` maps each
        Boolean variable name to ``None`` (an ordered set) and ``bv_widths``
        maps each bit-vector variable name to its width.
    """
    bool_names: dict[str, None] = {}
    bv_widths: dict[str, int] = {}
    seen: set[Term] = set()
    stack: list[Term] = [term]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if isinstance(node, BoolVar):
            bool_names[node.name] = None
        elif isinstance(node, BvVar):
            if node.name in bv_widths and bv_widths[node.name] != node.width:
                raise SolverError(
                    f"variable {node.name!r} used with widths "
                    f"{bv_widths[node.name]} and {node.width}"
                )
            bv_widths[node.name] = node.width
        elif isinstance(node, BoolOp):
            stack.extend(node.args)
        elif isinstance(node, (BoolIte, BvIte)):
            stack.extend([node.condition, node.then_branch, node.else_branch])
        elif isinstance(node, BvComparison):
            stack.extend([node.left, node.right])
        elif isinstance(node, BvOp):
            stack.extend(node.args)
        elif isinstance(node, BvExtract):
            stack.append(node.operand)
        elif isinstance(node, BvConcat):
            stack.extend(node.operands)
        elif isinstance(node, (BvZeroExtend, BvSignExtend)):
            stack.append(node.operand)
    return bool_names, bv_widths
