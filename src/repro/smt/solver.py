"""SMT solver facade for quantifier-free bit-vector formulas.

This is the "deductive engine" interface used throughout the reproduction.
It wraps the term language, the bit-blaster, and the CDCL SAT solver in a
small API reminiscent of z3py::

    solver = SmtSolver()
    x = bv_var("x", 8)
    solver.add(x * bv_const(3, 8) == ...)        # via .eq()
    if solver.check() is SmtResult.SAT:
        model = solver.model()
        print(model["x"])

Push/pop scopes are provided by re-blasting on demand (simple and robust:
the assertion stack is the source of truth).  Incremental solving *within*
one check is handled by the underlying CDCL solver's assumption mechanism;
across checks the facade re-encodes, which is fast enough for the query
sizes in this reproduction and keeps the code easy to audit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.deductive import DeductiveAnswer, DeductiveEngine, DeductiveQuery
from repro.core.exceptions import SolverError
from repro.smt.bitblast import BitBlaster
from repro.smt.sat import CdclSolver, SatResult
from repro.smt.terms import (
    Assignment,
    BitVecTerm,
    BoolTerm,
    BvVar,
    BoolVar,
    bool_and,
    evaluate,
    free_variables,
)


class SmtResult(enum.Enum):
    """Verdict of an SMT query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class Model:
    """A satisfying assignment for the asserted formulas.

    Provides dictionary-style access by variable name; bit-vector values
    are unsigned integers, Boolean values are ``bool``.
    """

    assignment: Assignment = field(default_factory=Assignment)

    def __getitem__(self, name: str) -> int | bool:
        if name in self.assignment.bv_values:
            return self.assignment.bv_values[name]
        if name in self.assignment.bool_values:
            return self.assignment.bool_values[name]
        raise KeyError(name)

    def get(self, name: str, default: int | bool | None = None) -> int | bool | None:
        """Dictionary-style ``get``."""
        try:
            return self[name]
        except KeyError:
            return default

    def value_of(self, variable: BvVar | BoolVar) -> int | bool:
        """Value of a term-level variable object."""
        return self[variable.name]

    def evaluate(self, term) -> int | bool:
        """Evaluate an arbitrary term under this model.

        Variables not constrained by the asserted formulas default to 0 /
        False (completion of the partial model).
        """
        bool_names, bv_widths = free_variables(term)
        completed = self.assignment.copy()
        for name in bool_names:
            completed.bool_values.setdefault(name, False)
        for name in bv_widths:
            completed.bv_values.setdefault(name, 0)
        return evaluate(term, completed)

    def as_dict(self) -> dict[str, int | bool]:
        """Return all variable values as one dictionary."""
        merged: dict[str, int | bool] = dict(self.assignment.bv_values)
        merged.update(self.assignment.bool_values)
        return merged


@dataclass
class SmtStatistics:
    """Counters aggregated over the lifetime of an :class:`SmtSolver`."""

    checks: int = 0
    sat_answers: int = 0
    unsat_answers: int = 0
    clauses_generated: int = 0
    variables_generated: int = 0


class SmtSolver:
    """A QF_BV SMT solver built on bit-blasting + CDCL SAT.

    Args:
        max_conflicts: optional conflict budget per ``check`` (returns
            :data:`SmtResult.UNKNOWN` when exhausted).
    """

    def __init__(self, max_conflicts: int | None = None):
        self._assertions: list[BoolTerm] = []
        self._scopes: list[int] = []
        self._max_conflicts = max_conflicts
        self._last_model: Model | None = None
        self.statistics = SmtStatistics()

    # -- assertion stack --------------------------------------------------

    def add(self, *formulas: BoolTerm) -> None:
        """Assert one or more Boolean formulas."""
        for formula in formulas:
            if not isinstance(formula, BoolTerm):
                raise SolverError(
                    f"only Boolean terms can be asserted, got {type(formula).__name__}"
                )
            self._assertions.append(formula)

    def push(self) -> None:
        """Push a backtracking scope."""
        self._scopes.append(len(self._assertions))

    def pop(self) -> None:
        """Pop the most recent scope, discarding its assertions."""
        if not self._scopes:
            raise SolverError("pop without matching push")
        boundary = self._scopes.pop()
        del self._assertions[boundary:]

    @property
    def assertions(self) -> Sequence[BoolTerm]:
        """The currently asserted formulas (read-only view)."""
        return tuple(self._assertions)

    # -- solving -----------------------------------------------------------

    def check(self, *extra: BoolTerm) -> SmtResult:
        """Check satisfiability of the asserted formulas (plus ``extra``).

        Returns:
            :data:`SmtResult.SAT`, :data:`SmtResult.UNSAT`, or
            :data:`SmtResult.UNKNOWN` when the conflict budget is exhausted.
        """
        self.statistics.checks += 1
        sat_solver = CdclSolver(max_conflicts=self._max_conflicts)
        blaster = BitBlaster(sat_solver)
        for formula in list(self._assertions) + list(extra):
            blaster.assert_formula(formula)
        self.statistics.variables_generated += sat_solver.num_variables
        result = sat_solver.solve()
        if result is SatResult.SAT:
            self.statistics.sat_answers += 1
            self._last_model = Model(blaster.extract_assignment(sat_solver.model()))
            return SmtResult.SAT
        self._last_model = None
        if result is SatResult.UNSAT:
            self.statistics.unsat_answers += 1
            return SmtResult.UNSAT
        return SmtResult.UNKNOWN

    def model(self) -> Model:
        """Return the model found by the last satisfiable ``check``.

        Raises:
            SolverError: if the last check was not satisfiable.
        """
        if self._last_model is None:
            raise SolverError("no model available (last check was not SAT)")
        return self._last_model

    # -- convenience entry points ------------------------------------------

    def is_satisfiable(self, formula: BoolTerm) -> bool:
        """One-shot satisfiability check of ``formula`` alone."""
        solver = SmtSolver(max_conflicts=self._max_conflicts)
        solver.add(formula)
        return solver.check() is SmtResult.SAT

    def is_valid(self, formula: BoolTerm) -> bool:
        """One-shot validity check (negation unsatisfiable)."""
        from repro.smt.terms import bool_not

        solver = SmtSolver(max_conflicts=self._max_conflicts)
        solver.add(bool_not(formula))
        return solver.check() is SmtResult.UNSAT


def solve(formulas: Iterable[BoolTerm], max_conflicts: int | None = None) -> tuple[SmtResult, Model | None]:
    """Solve the conjunction of ``formulas`` in one shot.

    Returns the verdict and, when satisfiable, a :class:`Model`.
    """
    solver = SmtSolver(max_conflicts=max_conflicts)
    solver.add(*list(formulas))
    verdict = solver.check()
    model = solver.model() if verdict is SmtResult.SAT else None
    return verdict, model


class SmtDeductiveEngine(DeductiveEngine[BoolTerm, Model]):
    """Adapter exposing :class:`SmtSolver` as a sciduction deductive engine.

    The query payload is a Boolean term; the answer verdict is its
    satisfiability and the witness is the model when satisfiable.  This is
    the ``D`` used by both the GameTime test generator (basis-path
    feasibility queries) and the OGIS synthesizer (candidate-program and
    distinguishing-input queries).
    """

    name = "smt-qfbv"

    def __init__(self, max_conflicts: int | None = None):
        super().__init__()
        self._max_conflicts = max_conflicts

    def _answer(self, query: DeductiveQuery[BoolTerm]) -> DeductiveAnswer[Model]:
        verdict, model = solve([query.payload], max_conflicts=self._max_conflicts)
        if verdict is SmtResult.UNKNOWN:
            return DeductiveAnswer(decided=False)
        return DeductiveAnswer(
            decided=True, verdict=verdict is SmtResult.SAT, witness=model
        )

    def lightweightness(self) -> str:
        return (
            "decides QF_BV satisfiability (NP), a strict special case of the "
            "overall synthesis problems (Sigma_2 for component-based synthesis)"
        )


def conjoin(formulas: Iterable[BoolTerm]) -> BoolTerm:
    """Conjunction helper used by encoding modules."""
    return bool_and(*list(formulas))
