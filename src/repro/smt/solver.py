"""SMT solver facade for quantifier-free bit-vector formulas.

This is the "deductive engine" interface used throughout the reproduction.
It wraps the term language, the bit-blaster, and the CDCL SAT solver in a
small API reminiscent of z3py::

    solver = SmtSolver()
    x = bv_var("x", 8)
    solver.add(x * bv_const(3, 8) == ...)        # via .eq()
    if solver.check() is SmtResult.SAT:
        model = solver.model()
        print(model["x"])

The facade is **incremental across checks**: one persistent
:class:`~repro.smt.sat.CdclSolver` and one persistent
:class:`~repro.smt.bitblast.BitBlaster` live for the lifetime of the
``SmtSolver``, so term caches, learned clauses and VSIDS activities all
survive between ``check()`` calls.  Push/pop scopes are implemented with
MiniSat-style *activation literals*: each scope owns a fresh literal
``a``, assertions inside the scope are encoded as ``(¬a ∨ formula)`` and
``a`` is passed as a solver assumption while the scope is open; popping
the scope permanently asserts ``~a``, which satisfies (and thereby
retires) every clause of the scope without touching the rest of the
database.  ``check(*extra)`` formulas are likewise passed as assumptions,
so they constrain only the one query.

The previous re-blast-on-demand design is still available as an escape
hatch (``SmtSolver(reencode_each_check=True)``): it rebuilds a fresh SAT
solver and blaster for every check, which is useful for benchmarking the
incremental speedup and as a maximally-simple reference semantics.

Every query is shrunk before it reaches the SAT core, in three layers
that can each be disabled independently (the ablation knobs used by
``benchmarks/bench_perf_suite.py``):

* ``simplify_terms`` — word-level rewriting (:mod:`repro.smt.simplify`)
  of every asserted / checked formula: constant folding, neutral and
  absorbing elements, ITE collapsing, trivial comparisons;
* ``polarity_aware`` — Plaisted–Greenbaum CNF: asserted formulas are
  blasted under positive polarity only, so single-polarity gates emit
  half their Tseitin clauses (see :mod:`repro.smt.bitblast`);
* ``gc_dead_clauses`` — scope garbage collection: popping a scope
  permanently falsifies its activation literal, and once the volume of
  such permanently deactivated clauses crosses a threshold the SAT
  solver's level-0 database simplification sweeps them out.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.core.deductive import DeductiveAnswer, DeductiveEngine, DeductiveQuery
from repro.core.exceptions import SolverError
from repro.smt.bitblast import BOTH, POSITIVE, BitBlaster
from repro.smt.cnf import make_literal, negate
from repro.smt.sat import CdclSolver, SatResult, SatStatistics
from repro.smt.simplify import simplify_bool
from repro.smt.terms import (
    Assignment,
    BitVecTerm,
    BoolTerm,
    BvVar,
    BoolVar,
    bool_and,
    evaluate,
    free_variables,
)


class SmtResult(enum.Enum):
    """Verdict of an SMT query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class Model:
    """A satisfying assignment for the asserted formulas.

    Provides dictionary-style access by variable name; bit-vector values
    are unsigned integers, Boolean values are ``bool``.
    """

    assignment: Assignment = field(default_factory=Assignment)

    def __getitem__(self, name: str) -> int | bool:
        if name in self.assignment.bv_values:
            return self.assignment.bv_values[name]
        if name in self.assignment.bool_values:
            return self.assignment.bool_values[name]
        raise KeyError(name)

    def get(self, name: str, default: int | bool | None = None) -> int | bool | None:
        """Dictionary-style ``get``."""
        try:
            return self[name]
        except KeyError:
            return default

    def value_of(self, variable: BvVar | BoolVar) -> int | bool:
        """Value of a term-level variable object."""
        return self[variable.name]

    def evaluate(self, term) -> int | bool:
        """Evaluate an arbitrary term under this model.

        Variables not constrained by the asserted formulas default to 0 /
        False (completion of the partial model).
        """
        bool_names, bv_widths = free_variables(term)
        completed = self.assignment.copy()
        for name in bool_names:
            completed.bool_values.setdefault(name, False)
        for name in bv_widths:
            completed.bv_values.setdefault(name, 0)
        return evaluate(term, completed)

    def as_dict(self) -> dict[str, int | bool]:
        """Return all variable values as one dictionary."""
        merged: dict[str, int | bool] = dict(self.assignment.bv_values)
        merged.update(self.assignment.bool_values)
        return merged


@dataclass
class SmtStatistics:
    """Counters aggregated over the lifetime of an :class:`SmtSolver`."""

    checks: int = 0
    sat_answers: int = 0
    unsat_answers: int = 0
    clauses_generated: int = 0
    variables_generated: int = 0
    #: Assertions whose word-level simplification changed the term.
    terms_simplified: int = 0
    #: Clauses reclaimed by scope garbage collection (see ``gc_dead_clauses``).
    clauses_collected: int = 0
    #: Checks answered from the check memo (local or shared) without
    #: touching the SAT core.
    check_memo_hits: int = 0
    #: The subset of ``check_memo_hits`` answered by the *shared*
    #: cross-worker memo backend (see :meth:`SmtSolver.set_memo_backend`).
    shared_memo_hits: int = 0

    def merged_with(self, other: "SmtStatistics") -> "SmtStatistics":
        """Field-wise sum of two statistics records."""
        return SmtStatistics(
            checks=self.checks + other.checks,
            sat_answers=self.sat_answers + other.sat_answers,
            unsat_answers=self.unsat_answers + other.unsat_answers,
            clauses_generated=self.clauses_generated + other.clauses_generated,
            variables_generated=self.variables_generated + other.variables_generated,
            terms_simplified=self.terms_simplified + other.terms_simplified,
            clauses_collected=self.clauses_collected + other.clauses_collected,
            check_memo_hits=self.check_memo_hits + other.check_memo_hits,
            shared_memo_hits=self.shared_memo_hits + other.shared_memo_hits,
        )

    def snapshot(self) -> "SmtStatistics":
        """An independent copy of the current counters."""
        return replace(self)

    def delta_since(self, baseline: "SmtStatistics") -> "SmtStatistics":
        """Counters accumulated since ``baseline`` was snapshotted.

        This is the per-job view used when a solver is shared across jobs
        (see :mod:`repro.api.pool`): all fields are monotone counters, so
        a plain field-wise difference is exact.
        """
        return SmtStatistics(
            checks=self.checks - baseline.checks,
            sat_answers=self.sat_answers - baseline.sat_answers,
            unsat_answers=self.unsat_answers - baseline.unsat_answers,
            clauses_generated=self.clauses_generated - baseline.clauses_generated,
            variables_generated=self.variables_generated - baseline.variables_generated,
            terms_simplified=self.terms_simplified - baseline.terms_simplified,
            clauses_collected=self.clauses_collected - baseline.clauses_collected,
            check_memo_hits=self.check_memo_hits - baseline.check_memo_hits,
            shared_memo_hits=self.shared_memo_hits - baseline.shared_memo_hits,
        )


def _merge_sat_statistics(left: SatStatistics, right: SatStatistics) -> SatStatistics:
    """Field-wise sum of two CDCL statistics records (max for level depth)."""
    return left.merged_with(right)


class SmtSolver:
    """A QF_BV SMT solver built on bit-blasting + CDCL SAT.

    Args:
        max_conflicts: optional conflict budget per ``check`` (returns
            :data:`SmtResult.UNKNOWN` when exhausted).
        reencode_each_check: when True, every ``check`` rebuilds a fresh
            SAT solver and re-blasts the whole assertion stack (the
            pre-incremental behaviour, kept as an escape hatch and as a
            benchmark baseline).  When False (the default), one persistent
            SAT solver and bit-blaster serve all checks; scopes are
            realised with activation literals and ``extra`` formulas with
            solver assumptions, so learned clauses and branching
            activities carry over between checks.
        simplify_terms: run the word-level simplifier over every formula
            before bit-blasting (default True; ablation knob).
        polarity_aware: blast asserted formulas under positive polarity
            only (Plaisted–Greenbaum; default True; ablation knob).
        gc_dead_clauses: threshold of permanently deactivated clauses
            accumulated by ``pop`` that triggers a level-0 garbage
            collection of the SAT clause database; ``None`` disables the
            collection (ablation knob).
        restart_strategy: CDCL restart policy — ``"luby"`` (default) or
            ``"glucose"`` (adaptive, LBD-moving-average driven; see
            :class:`~repro.smt.sat.CdclSolver`).
        memoize_checks: cache decided ``check`` answers keyed by the
            exact asserted-formula sequence plus the ``extra`` assumptions
            (hash-consed terms make the key cheap and exact).  A repeated
            query — the common case on pooled sessions whose job stream
            repeats problem shapes — returns the recorded verdict and
            model bits without touching the SAT core.  Sound because a
            check's verdict is a pure function of the asserted formulas,
            and the recorded model is exactly the one the deterministic
            search would recompute; UNKNOWN (budget-limited) answers are
            never cached.  Off by default: plain solvers prefer the
            freshest model a re-search would find.
    """

    #: Bound on memoized check answers (the memo is wiped, not LRU-evicted,
    #: beyond it — entries are cheap to recompute and the bound exists only
    #: to keep a pathological stream from pinning unbounded model bits).
    CHECK_MEMO_LIMIT = 512

    def __init__(
        self,
        max_conflicts: int | None = None,
        reencode_each_check: bool = False,
        simplify_terms: bool = True,
        polarity_aware: bool = True,
        gc_dead_clauses: int | None = 2000,
        restart_strategy: str = "luby",
        memoize_checks: bool = False,
    ):
        self._assertions: list[BoolTerm] = []
        self._scopes: list[int] = []
        self._max_conflicts = max_conflicts
        self._reencode_each_check = reencode_each_check
        self._simplify_terms = simplify_terms
        self._assert_polarity = POSITIVE if polarity_aware else BOTH
        self._gc_dead_clauses = gc_dead_clauses
        self._restart_strategy = restart_strategy
        self._memoize_checks = memoize_checks
        # (assertion tuple, extra tuple) → (verdict, model bits | None).
        # Keys hold strong references to the hash-consed terms, so key
        # identity can never be recycled under the memo.
        self._check_memo: dict = {}
        # Optional shared (cross-worker) memo backend consulted after a
        # local miss; see :meth:`set_memo_backend`.
        self._memo_backend = None
        # Term → structural digest, memoized for shared-memo keys
        # (cleared together with the local memo).
        self._digest_cache: dict = {}
        # Job-level limits (see :meth:`set_job_limits`).
        self._job_conflicts_remaining: int | None = None
        self._job_deadline: float | None = None
        self._last_model: Model | None = None
        # (blaster, sat model bits) of the last SAT answer; the Model is
        # built lazily from it on the first model() call, so checks whose
        # model is never read pay nothing for extraction.
        self._model_source: tuple[BitBlaster, list[bool]] | None = None
        self.statistics = SmtStatistics()
        # Persistent incremental core (created lazily on first use).
        self._sat_solver: CdclSolver | None = None
        self._blaster: BitBlaster | None = None
        # One activation literal per open scope, parallel to ``_scopes``.
        self._activations: list[int] = []
        # clauses_added watermark at each push, parallel to ``_activations``
        # (used to estimate how many clauses a popped scope leaves behind).
        self._scope_clause_marks: list[int] = []
        # Clauses belonging to permanently deactivated scopes, pending GC.
        self._dead_clauses = 0
        # Prefix of ``_assertions`` already encoded into the SAT solver.
        self._encoded_count = 0
        # SAT statistics of solvers retired by reencode_each_check mode.
        self._retired_sat_statistics = SatStatistics()

    # -- assertion stack --------------------------------------------------

    def add(self, *formulas: BoolTerm) -> None:
        """Assert one or more Boolean formulas."""
        for formula in formulas:
            if not isinstance(formula, BoolTerm):
                raise SolverError(
                    f"only Boolean terms can be asserted, got {type(formula).__name__}"
                )
            self._assertions.append(formula)

    def push(self) -> None:
        """Push a backtracking scope."""
        self._scopes.append(len(self._assertions))
        if not self._reencode_each_check:
            sat_solver, _ = self._core()
            self._activations.append(make_literal(sat_solver.new_variable()))
            self._scope_clause_marks.append(sat_solver.statistics.clauses_added)
            self.statistics.variables_generated += 1

    def pop(self) -> None:
        """Pop the most recent scope, discarding its assertions.

        In incremental mode the scope's clauses stay in the SAT solver,
        permanently satisfied by the falsified activation literal.  Their
        volume is tracked, and once it crosses the ``gc_dead_clauses``
        threshold the solver's level-0 database simplification reclaims
        them (together with anything else fixed-satisfied by then).
        """
        if not self._scopes:
            raise SolverError("pop without matching push")
        boundary = self._scopes.pop()
        del self._assertions[boundary:]
        if not self._reencode_each_check:
            activation = self._activations.pop()
            mark = self._scope_clause_marks.pop()
            if self._encoded_count > boundary:
                # Clauses of this scope are already in the SAT solver;
                # permanently falsifying the activation literal satisfies
                # (and thereby retires) all of them.
                sat_solver, _ = self._core()
                clauses_before = sat_solver.statistics.clauses_added
                sat_solver.add_clause([negate(activation)])
                self.statistics.clauses_generated += (
                    sat_solver.statistics.clauses_added - clauses_before
                )
                self._encoded_count = boundary
                total = sat_solver.statistics.clauses_added
                dead_span = max(0, total - mark)
                self._dead_clauses += dead_span
                # Advance each enclosing scope's watermark by exactly the
                # span counted here, so this scope's clauses are not
                # counted again when the enclosing scopes pop — while the
                # enclosing scopes' own clauses stay in their accounting.
                self._scope_clause_marks = [
                    outer_mark + dead_span for outer_mark in self._scope_clause_marks
                ]
                if (
                    self._gc_dead_clauses is not None
                    and self._dead_clauses >= self._gc_dead_clauses
                ):
                    self.statistics.clauses_collected += (
                        sat_solver.simplify_database()
                    )
                    self._dead_clauses = 0

    @property
    def assertions(self) -> Sequence[BoolTerm]:
        """The currently asserted formulas (read-only view)."""
        return tuple(self._assertions)

    @property
    def scope_depth(self) -> int:
        """Number of currently open push/pop scopes."""
        return len(self._scopes)

    # -- job limits ---------------------------------------------------------

    def set_job_limits(
        self,
        max_conflicts: int | None = None,
        deadline: float | None = None,
    ) -> None:
        """Install (or clear, when called with no arguments) job limits.

        Args:
            max_conflicts: total CDCL conflict budget shared by all
                subsequent ``check`` calls (unlike the constructor's
                ``max_conflicts``, which is per-check); exhausted checks
                answer :data:`SmtResult.UNKNOWN`.
            deadline: ``time.monotonic()`` timestamp after which checks
                answer :data:`SmtResult.UNKNOWN`.

        This is how the engine layer (:mod:`repro.api`) enforces per-job
        budgets and timeouts on pooled solvers without rebuilding them.
        """
        self._job_conflicts_remaining = max_conflicts
        self._job_deadline = deadline
        if self._sat_solver is not None and max_conflicts is None and deadline is None:
            self._sat_solver.set_limits(None, None)

    def _install_job_limits(self, sat_solver: CdclSolver) -> None:
        ceiling = None
        if self._job_conflicts_remaining is not None:
            ceiling = sat_solver.statistics.conflicts + max(
                0, self._job_conflicts_remaining
            )
        sat_solver.set_limits(ceiling, self._job_deadline)

    def _charge_job_conflicts(
        self, sat_solver: CdclSolver, conflicts_before: int
    ) -> None:
        if self._job_conflicts_remaining is not None:
            spent = sat_solver.statistics.conflicts - conflicts_before
            self._job_conflicts_remaining = max(
                0, self._job_conflicts_remaining - spent
            )

    # -- incremental core ---------------------------------------------------

    def _core(self) -> tuple[CdclSolver, BitBlaster]:
        """The persistent SAT solver + blaster pair (created on first use)."""
        if self._sat_solver is None:
            self._sat_solver = CdclSolver(
                max_conflicts=self._max_conflicts,
                restart_strategy=self._restart_strategy,
            )
            self._blaster = BitBlaster(self._sat_solver)
            # Count the blaster's true-constant variable and unit clause so
            # both solver modes measure the same encoding work.
            self.statistics.variables_generated += self._sat_solver.num_variables
            self.statistics.clauses_generated += (
                self._sat_solver.statistics.clauses_added
            )
        assert self._blaster is not None
        return self._sat_solver, self._blaster

    def _prepare(self, formula: BoolTerm) -> BoolTerm:
        """Word-level simplification applied before any encoding."""
        if not self._simplify_terms:
            return formula
        simplified = simplify_bool(formula)
        if simplified is not formula:
            self.statistics.terms_simplified += 1
        return simplified

    def _encode_pending(self) -> None:
        """Blast assertions added since the previous ``check``.

        Base-level assertions become unit clauses; assertions inside an
        open scope are guarded by that scope's activation literal.  Either
        way the formula is only ever used as a true assertion, so it is
        blasted under positive polarity when ``polarity_aware`` is on.
        """
        sat_solver, blaster = self._core()
        for index in range(self._encoded_count, len(self._assertions)):
            formula = self._prepare(self._assertions[index])
            literal = blaster.blast_bool(formula, self._assert_polarity)
            scope = bisect.bisect_right(self._scopes, index)
            if scope == 0:
                sat_solver.add_clause([literal])
            else:
                sat_solver.add_clause(
                    [negate(self._activations[scope - 1]), literal]
                )
        self._encoded_count = len(self._assertions)

    # -- solving -----------------------------------------------------------

    def check(self, *extra: BoolTerm) -> SmtResult:
        """Check satisfiability of the asserted formulas (plus ``extra``).

        ``extra`` formulas constrain this check only: in incremental mode
        they are encoded once (their definitional clauses stay cached) but
        asserted via solver assumptions, so they leave no trace on later
        checks.

        Returns:
            :data:`SmtResult.SAT`, :data:`SmtResult.UNSAT`, or
            :data:`SmtResult.UNKNOWN` when the conflict budget is exhausted.
        """
        self.statistics.checks += 1
        for formula in extra:
            if not isinstance(formula, BoolTerm):
                raise SolverError(
                    f"only Boolean terms can be checked, got {type(formula).__name__}"
                )
        if self._reencode_each_check:
            return self._check_reencoding(extra)
        sat_solver, blaster = self._core()
        variables_before = sat_solver.num_variables
        clauses_before = sat_solver.statistics.clauses_added
        conflicts_before = sat_solver.statistics.conflicts
        self._encode_pending()
        assumptions = list(self._activations)
        # ``extra`` formulas are assumed true for this check only, which is
        # a positive occurrence — the same polarity rule as assertions.
        assumptions.extend(
            blaster.blast_bool(self._prepare(formula), self._assert_polarity)
            for formula in extra
        )
        self.statistics.variables_generated += (
            sat_solver.num_variables - variables_before
        )
        self.statistics.clauses_generated += (
            sat_solver.statistics.clauses_added - clauses_before
        )
        memo_key = None
        if self._memoize_checks:
            # The memo is consulted *after* the encoding work, so hits
            # and misses leave the solver in the identical state — the
            # variable layout never depends on which checks were cached.
            # Including the post-encoding variable count in the key makes
            # a recorded model's bit indices valid by construction: a
            # hit's layout provably matches the record-time layout for
            # every variable the memoized check constrains (same formula
            # sequence blasted from the same frontier; see the solver
            # pool's base-scope epochs).
            memo_key = (
                tuple(self._assertions),
                tuple(extra),
                sat_solver.num_variables,
            )
            cached = self._check_memo.get(memo_key)
            if cached is not None:
                return self._replay_memoized(cached)
            shared = self._shared_lookup(memo_key)
            if shared is not None:
                # Read-through: keep the answer locally so the shared
                # round trip is paid at most once per solver.
                self._store_memo(memo_key, shared)
                self.statistics.shared_memo_hits += 1
                return self._replay_memoized(shared)
        self._install_job_limits(sat_solver)
        result = sat_solver.solve(assumptions)
        self._charge_job_conflicts(sat_solver, conflicts_before)
        verdict = self._record_result(result, sat_solver, blaster)
        if memo_key is not None and verdict is not SmtResult.UNKNOWN:
            entry = (
                verdict,
                sat_solver.cached_model() if verdict is SmtResult.SAT else None,
            )
            self._store_memo(memo_key, entry)
            self._shared_publish(memo_key, entry)
        return verdict

    def _store_memo(self, memo_key: tuple, entry: tuple) -> None:
        if len(self._check_memo) >= self.CHECK_MEMO_LIMIT:
            self._check_memo.clear()
        self._check_memo[memo_key] = entry

    # -- shared (cross-worker) memo backend ---------------------------------

    def set_memo_backend(self, backend) -> None:
        """Install a shared check-memo backend (or None to detach).

        ``backend`` is duck-typed (see :class:`repro.api.memo.MemoClient`):
        ``lookup(key)`` returns ``(verdict_value, model_bits)`` or None,
        ``publish(key, verdict_value, model_bits)`` records a decided
        answer.  The backend is consulted only when ``memoize_checks`` is
        on and only after the solver-local memo misses; keys are the
        process-independent wire form of ``(assertions, extras,
        frontier)`` built by :func:`repro.smt.wire.check_wire_key`, so a
        verdict decided by one worker process short-circuits the same
        check in another.
        """
        self._memo_backend = backend

    def _shared_key(self, memo_key: tuple) -> str:
        from repro.smt.wire import check_wire_key

        assertions, extras, frontier = memo_key
        # The blaster's declaration-layout signature joins the key: a
        # variable *count* alone can coincide between sessions whose
        # caches were polluted differently (e.g. a re-sealed base over
        # leftover blasted terms), and replayed model bits are only valid
        # when every declared name sits at the recorded positions.
        _, blaster = self._core()
        return (
            f"{blaster.layout_signature()}:"
            f"{check_wire_key(assertions, extras, frontier, self._digest_cache)}"
        )

    def _shared_lookup(self, memo_key: tuple) -> tuple | None:
        if self._memo_backend is None:
            return None
        found = self._memo_backend.lookup(self._shared_key(memo_key))
        if found is None:
            return None
        verdict_value, model_bits = found
        return (
            SmtResult(verdict_value),
            None if model_bits is None else list(model_bits),
        )

    def _shared_publish(self, memo_key: tuple, entry: tuple) -> None:
        if self._memo_backend is None:
            return
        verdict, model_bits = entry
        self._memo_backend.publish(
            self._shared_key(memo_key), verdict.value, model_bits
        )

    def _replay_memoized(self, cached: tuple) -> SmtResult:
        """Answer an already-encoded check from the memo (no search).

        Only the SAT search is skipped — the caller has already encoded
        pending assertions and the check's assumptions, exactly as a miss
        would, so the recorded model bits line up with the live variable
        layout (guaranteed by the variable count in the memo key).  Names
        blasted only after the recorded model resolve to None, which is
        correct: the memoized check did not constrain them.  The pool
        clears the memo whenever a session's base scope is
        re-established (:meth:`clear_check_memo`).
        """
        verdict, model_bits = cached
        self.statistics.check_memo_hits += 1
        self._last_model = None
        _, blaster = self._core()
        if verdict is SmtResult.SAT:
            self.statistics.sat_answers += 1
            self._model_source = (blaster, model_bits)
        else:
            self.statistics.unsat_answers += 1
            self._model_source = None
        return verdict

    def clear_check_memo(self) -> None:
        """Drop every memoized check answer.

        Called by the solver pool whenever a session's base scope is
        re-established: memoized model bits are only valid relative to
        the variable layout of the epoch they were recorded in.  (The
        shared backend is left untouched — its keys embed the variable
        frontier, so entries from other epochs simply never match.)
        """
        self._check_memo.clear()
        self._digest_cache.clear()

    def _check_reencoding(self, extra: Sequence[BoolTerm]) -> SmtResult:
        """One-shot check: fresh SAT solver, full re-blast (escape hatch)."""
        sat_solver = CdclSolver(
            max_conflicts=self._max_conflicts,
            restart_strategy=self._restart_strategy,
        )
        blaster = BitBlaster(sat_solver)
        for formula in list(self._assertions) + list(extra):
            blaster.assert_formula(self._prepare(formula), self._assert_polarity)
        self.statistics.variables_generated += sat_solver.num_variables
        self.statistics.clauses_generated += sat_solver.statistics.clauses_added
        self._install_job_limits(sat_solver)
        result = sat_solver.solve()
        self._charge_job_conflicts(sat_solver, 0)
        self._retired_sat_statistics = _merge_sat_statistics(
            self._retired_sat_statistics, sat_solver.statistics
        )
        return self._record_result(result, sat_solver, blaster)

    def flush(self) -> None:
        """Encode every pending assertion into the SAT core now.

        Normally encoding is lazy (it happens at ``check`` time); flushing
        makes the solver's variable frontier reflect exactly the
        assertions made so far, which is what :meth:`frontier` needs to
        capture a meaningful watermark.  A no-op in re-encode mode.
        """
        if self._reencode_each_check:
            return
        sat_solver, _ = self._core()
        variables_before = sat_solver.num_variables
        clauses_before = sat_solver.statistics.clauses_added
        self._encode_pending()
        self.statistics.variables_generated += (
            sat_solver.num_variables - variables_before
        )
        self.statistics.clauses_generated += (
            sat_solver.statistics.clauses_added - clauses_before
        )

    def frontier(self) -> int | None:
        """The current SAT variable watermark (see :meth:`rollback_to`).

        Call :meth:`flush` first so pending assertions are included.
        Returns None in re-encode mode (there is no persistent frontier).
        """
        if self._reencode_each_check:
            return None
        sat_solver, _ = self._core()
        return sat_solver.num_variables

    def rollback_to(self, frontier: int) -> int:
        """Drop all SAT variables, clauses and blaster caches above
        ``frontier``.

        The pooled-session retention hook
        (:class:`~repro.api.pool.SolverPool`): between jobs a session
        rolls back to the watermark captured when its persistent base
        scope was sealed, shedding the finished job's entire encoding —
        gate definitions included — while keeping the base scope's
        clauses and every learned clause over base variables.  Requires
        that all scopes opened after the watermark have been popped.

        Returns:
            The number of SAT clauses removed.
        """
        if self._reencode_each_check or self._sat_solver is None:
            return 0
        if frontier >= self._sat_solver.num_variables:
            return 0
        assert self._blaster is not None
        removed = self._sat_solver.shrink_variables(frontier)
        self._blaster.rollback_variables(frontier)
        # Dead-scope accounting may reference dropped clauses; reset it
        # rather than triggering a GC over clauses already gone.
        self._dead_clauses = 0
        self._last_model = None
        self._model_source = None
        return removed

    def trim_learned(self, max_lbd: int) -> int:
        """Drop learned clauses with LBD above ``max_lbd`` (between jobs).

        This is the cross-job retention hook used by
        :class:`~repro.api.pool.SolverPool` at lease release: a warm
        session keeps its bit-blast caches and (for ``max_lbd >= 1``) its
        good-glue learned clauses, but sheds the high-LBD clauses a
        finished job left behind, which would otherwise slow down
        propagation for every later tenant; ``max_lbd <= 0`` drops every
        learned clause.  A no-op in re-encode mode (there is no
        persistent SAT solver).

        Returns:
            The number of learned clauses removed.
        """
        if self._sat_solver is None:
            return 0
        return self._sat_solver.reduce_learned(max_lbd)

    def reset_search_state(self, simplify: bool = True) -> None:
        """Reset the SAT core's branching heuristics to a pristine state.

        See :meth:`repro.smt.sat.CdclSolver.reset_search_state`; a no-op
        in re-encode mode (every check builds a fresh solver anyway).
        """
        if self._sat_solver is not None:
            self._sat_solver.reset_search_state(simplify=simplify)

    def level0_facts(self) -> int:
        """Number of assignments fixed on the level-0 trail.

        Used by the solver pool to detect whether any new facts (learned
        units and their consequences) appeared during a lease, which
        decides whether the release-time heuristic reset needs its
        simplification pass.
        """
        if self._sat_solver is None:
            return 0
        return self._sat_solver.num_fixed_assignments

    def sat_statistics(self) -> SatStatistics:
        """Aggregated CDCL counters over the solver's lifetime.

        In incremental mode this is the persistent SAT solver's record; in
        re-encode mode the counters of every discarded per-check solver
        are summed.
        """
        if self._sat_solver is None:
            return self._retired_sat_statistics
        return _merge_sat_statistics(
            self._retired_sat_statistics, self._sat_solver.statistics
        )

    def _record_result(
        self, result: SatResult, sat_solver: CdclSolver, blaster: BitBlaster
    ) -> SmtResult:
        self._last_model = None
        if result is SatResult.SAT:
            self.statistics.sat_answers += 1
            model_bits = sat_solver.cached_model()
            assert model_bits is not None
            self._model_source = (blaster, model_bits)
            return SmtResult.SAT
        self._model_source = None
        if result is SatResult.UNSAT:
            self.statistics.unsat_answers += 1
            return SmtResult.UNSAT
        return SmtResult.UNKNOWN

    def model(self) -> Model:
        """Return the model found by the last satisfiable ``check``.

        Raises:
            SolverError: if the last check was not satisfiable.
        """
        if self._last_model is None and self._model_source is not None:
            blaster, model_bits = self._model_source
            self._last_model = Model(blaster.extract_assignment(model_bits))
        if self._last_model is None:
            raise SolverError("no model available (last check was not SAT)")
        return self._last_model

    def model_value(self, name: str) -> int | bool | None:
        """Value of one named variable in the last satisfiable check's model.

        Cheaper than :meth:`model` when only a few variables are needed —
        the persistent blaster may know thousands of names from earlier
        checks, and full extraction visits all of them.  Returns None for
        variables the solver has never blasted (or blasted only after the
        model was found); they are unconstrained, so any value completes
        the model.

        Raises:
            SolverError: if the last check was not satisfiable.
        """
        if self._model_source is None:
            raise SolverError("no model available (last check was not SAT)")
        blaster, model_bits = self._model_source
        return blaster.extract_value(name, model_bits)

    # -- convenience entry points ------------------------------------------

    def is_satisfiable(self, formula: BoolTerm) -> bool:
        """One-shot satisfiability check of ``formula`` alone."""
        solver = SmtSolver(max_conflicts=self._max_conflicts)
        solver.add(formula)
        return solver.check() is SmtResult.SAT

    def is_valid(self, formula: BoolTerm) -> bool:
        """One-shot validity check (negation unsatisfiable)."""
        from repro.smt.terms import bool_not

        solver = SmtSolver(max_conflicts=self._max_conflicts)
        solver.add(bool_not(formula))
        return solver.check() is SmtResult.UNSAT


def solve(formulas: Iterable[BoolTerm], max_conflicts: int | None = None) -> tuple[SmtResult, Model | None]:
    """Solve the conjunction of ``formulas`` in one shot.

    Returns the verdict and, when satisfiable, a :class:`Model`.
    """
    solver = SmtSolver(max_conflicts=max_conflicts)
    solver.add(*list(formulas))
    verdict = solver.check()
    model = solver.model() if verdict is SmtResult.SAT else None
    return verdict, model


class SmtDeductiveEngine(DeductiveEngine[BoolTerm, Model]):
    """Adapter exposing :class:`SmtSolver` as a sciduction deductive engine.

    The query payload is a Boolean term; the answer verdict is its
    satisfiability and the witness is the model when satisfiable.  This is
    the ``D`` used by both the GameTime test generator (basis-path
    feasibility queries) and the OGIS synthesizer (candidate-program and
    distinguishing-input queries).
    """

    name = "smt-qfbv"

    def __init__(self, max_conflicts: int | None = None):
        super().__init__()
        self._max_conflicts = max_conflicts

    def _answer(self, query: DeductiveQuery[BoolTerm]) -> DeductiveAnswer[Model]:
        verdict, model = solve([query.payload], max_conflicts=self._max_conflicts)
        if verdict is SmtResult.UNKNOWN:
            return DeductiveAnswer(decided=False)
        return DeductiveAnswer(
            decided=True, verdict=verdict is SmtResult.SAT, witness=model
        )

    def lightweightness(self) -> str:
        return (
            "decides QF_BV satisfiability (NP), a strict special case of the "
            "overall synthesis problems (Sigma_2 for component-based synthesis)"
        )


def conjoin(formulas: Iterable[BoolTerm]) -> BoolTerm:
    """Conjunction helper used by encoding modules."""
    return bool_and(*list(formulas))
